"""Setuptools entry point.

Kept alongside pyproject.toml so ``pip install -e .`` works in offline
environments that lack the ``wheel`` package needed for PEP 660 editable
installs.
"""

from setuptools import setup

setup()
