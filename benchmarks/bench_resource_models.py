"""Eq. (1)-(8) reproduction: every per-stage resource figure quoted in the text.

Paper quotes:
  C_EBBI   = 125.2 kops/frame     M_EBBI   = 10.8 kB
  C_NNfilt ≈ 276.4 kops/frame     M_NNfilt = 8X larger than M_EBBI
  C_RPN    = 45.6 kops/frame (*)  M_RPN    ≈ 1.6 kB
  C_OT     ≈ 564 ops/frame        M_OT     < 0.5 kB
  C_KF     = 1200 ops/frame       M_KF     ≈ 1.1 kB
  C_EBMS   = 252 kops/frame       M_EBMS   = 408*CLmax + 56
  (*) the literal Eq. (5) evaluates to 48.0 kops; see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.evaluation.report import format_comparison_table
from repro.resources import (
    EbbiResourceModel,
    EbmsResourceModel,
    KalmanResourceModel,
    NnFilterResourceModel,
    OverlapTrackerResourceModel,
    ResourceParams,
    RpnResourceModel,
)

PAPER_VALUES = {
    "EBBI + median filter": {"computes": 125_200, "memory_kb": 10.8},
    "NN-filter": {"computes": 276_400, "memory_kb": 86.4},
    "histogram RPN": {"computes": 45_600, "memory_kb": 1.6},
    "overlap tracker": {"computes": 564, "memory_kb": 0.5},
    "Kalman filter tracker": {"computes": 1_200, "memory_kb": 1.1},
    "EBMS tracker": {"computes": 252_000, "memory_kb": 0.4},
}


def _stage_summaries():
    params = ResourceParams.paper_defaults()
    models = [
        EbbiResourceModel(params),
        NnFilterResourceModel(params),
        RpnResourceModel(params),
        OverlapTrackerResourceModel(params),
        KalmanResourceModel(params),
        EbmsResourceModel(params),
    ]
    rows = []
    for model in models:
        summary = model.summary()
        paper = PAPER_VALUES[summary["name"]]
        rows.append(
            {
                "stage": summary["name"],
                "computes_per_frame": summary["computes_per_frame"],
                "paper_computes": paper["computes"],
                "memory_kilobytes": summary["memory_kilobytes"],
                "paper_memory_kb": paper["memory_kb"],
            }
        )
    return rows


def test_eq1_to_eq8_stage_resources(benchmark):
    """Regenerate every per-stage compute/memory figure of Section II."""
    rows = benchmark.pedantic(_stage_summaries, rounds=1, iterations=1)
    print()
    print(
        format_comparison_table(
            rows,
            ["stage", "computes_per_frame", "paper_computes", "memory_kilobytes", "paper_memory_kb"],
            title="Eq. (1)-(8) — per-stage resources (model vs paper)",
        )
    )
    for row in rows:
        # Each modelled compute count is within 10 % of the paper's quoted
        # value (the RPN discrepancy is 5 %, documented in EXPERIMENTS.md).
        assert row["computes_per_frame"] == row["paper_computes"] * (
            1.0
        ) or abs(row["computes_per_frame"] - row["paper_computes"]) / row["paper_computes"] < 0.10
