"""Tracker-backend shoot-out: the paper's three-way comparison on one path.

The paper's headline claim (Fig. 4 / Fig. 5) is comparative: EBBIOT against
the EBBI+KF and NN-filt+EBMS baselines on tracking quality and resource
cost.  This benchmark runs that comparison through the *unified* tracker
backend layer — every backend processes the identical synthetic fleet via
``EbbiotConfig(tracker=...)`` and the same ``process_stream`` call — and
records, per backend:

* pooled CLEAR-MOT quality (MOTA / MOTP over all recordings),
* precision / recall at the swept IoU thresholds, pooled across recordings,
* throughput (frames and events per second of pipeline wall time).

The fleet cycles through the four scene types of
:data:`repro.runtime.scenes.DEFAULT_SITE_SPECS` (ENG-like busy, LT4-like
quiet, RAIN high-noise, CROSS scripted occlusion), so the ≥3-scene-type
acceptance bar of the backend refactor is met by default.

Run as a script; emits ``BENCH_tracker_backends.json`` so later PRs can diff
the numbers::

    PYTHONPATH=src python benchmarks/bench_tracker_backends.py
    PYTHONPATH=src python benchmarks/bench_tracker_backends.py \\
        --scenes 4 --duration 4 --output BENCH_tracker_backends.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.core.config import EbbiotConfig
from repro.core.pipeline import EbbiotPipeline
from repro.evaluation.mot_metrics import compute_mot_summary
from repro.evaluation.precision_recall import evaluate_recording
from repro.runtime.aggregate import merge_mot_summaries
from repro.runtime.scenes import build_scene_recordings, jobs_from_recordings
from repro.trackers.registry import available_backends, parse_backend_list

IOU_THRESHOLDS = (0.1, 0.3, 0.5)
MOT_IOU_THRESHOLD = 0.3


def run_backend(recordings, jobs) -> dict:
    """Run one backend over the whole fleet; return its JSON report block."""
    per_recording: List[dict] = []
    mot_summaries = []
    pooled_counts: Dict[float, List[int]] = {t: [0, 0, 0] for t in IOU_THRESHOLDS}
    total_frames = 0
    total_events = 0
    total_wall_s = 0.0

    for recording, job in zip(recordings, jobs):
        pipeline = EbbiotPipeline(job.config)
        started = time.perf_counter()
        result = pipeline.process_stream(job.stream, collect_frames=False)
        wall_s = time.perf_counter() - started
        observations = result.track_history.observations

        mot = compute_mot_summary(
            observations, job.ground_truth, iou_threshold=MOT_IOU_THRESHOLD
        )
        mot_summaries.append(mot)
        evaluation = evaluate_recording(
            observations,
            job.ground_truth,
            iou_thresholds=IOU_THRESHOLDS,
            name=job.name,
        )
        for threshold in IOU_THRESHOLDS:
            metrics = evaluation.by_threshold[threshold]
            pooled_counts[threshold][0] += metrics.true_positives
            pooled_counts[threshold][1] += metrics.total_tracker_boxes
            pooled_counts[threshold][2] += metrics.total_ground_truth_boxes

        total_frames += result.num_frames
        total_events += len(job.stream)
        total_wall_s += wall_s
        per_recording.append(
            {
                "name": job.name,
                "scene_type": recording.spec.name.split("-")[0],
                "num_events": len(job.stream),
                "num_frames": result.num_frames,
                "wall_time_s": wall_s,
                "mota": mot.mota,
                "motp": mot.motp,
                "num_tracks": len(result.track_history.track_ids()),
            }
        )

    pooled_mot = merge_mot_summaries(mot_summaries)
    precision_recall = {}
    for threshold, (tp, tracker_boxes, gt_boxes) in pooled_counts.items():
        precision_recall[f"{threshold:.1f}"] = {
            "precision": tp / tracker_boxes if tracker_boxes else 0.0,
            "recall": tp / gt_boxes if gt_boxes else 0.0,
            "true_positives": tp,
            "total_tracker_boxes": tracker_boxes,
            "total_ground_truth_boxes": gt_boxes,
        }
    return {
        "per_recording": per_recording,
        "pooled_mot": pooled_mot.to_dict() if pooled_mot is not None else None,
        "precision_recall": precision_recall,
        "frames_per_second": total_frames / total_wall_s if total_wall_s else 0.0,
        "events_per_second": total_events / total_wall_s if total_wall_s else 0.0,
        "wall_time_s": total_wall_s,
        "total_frames": total_frames,
        "total_events": total_events,
    }


def format_comparison(report: dict) -> str:
    """Human-readable shoot-out table (one row per backend)."""
    header = (
        f"{'backend':<8} {'MOTA':>7} {'MOTP':>7} {'P@0.3':>7} {'R@0.3':>7} "
        f"{'frames/s':>9} {'kev/s':>8}"
    )
    lines = [header, "-" * len(header)]
    for backend, block in report["backends"].items():
        mot = block["pooled_mot"] or {}
        pr = block["precision_recall"]["0.3"]
        lines.append(
            f"{backend:<8} {mot.get('mota', 0.0):>7.3f} {mot.get('motp', 0.0):>7.3f} "
            f"{pr['precision']:>7.3f} {pr['recall']:>7.3f} "
            f"{block['frames_per_second']:>9.1f} "
            f"{block['events_per_second'] / 1e3:>8.1f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenes", type=int, default=4, help="fleet size (default 4 = all site types)"
    )
    parser.add_argument(
        "--duration", type=float, default=4.0, help="seconds per recording (default 4)"
    )
    parser.add_argument("--seed", type=int, default=0, help="fleet base seed")
    parser.add_argument(
        "--backends",
        default=",".join(available_backends()),
        metavar="NAME[,NAME...]",
        help="backends to compare (default: all registered)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_tracker_backends.json",
        help="where to write the JSON baseline ('-' for stdout only)",
    )
    args = parser.parse_args(argv)
    if args.scenes < 3:
        print("error: --scenes must be >= 3 (three scene types minimum)", file=sys.stderr)
        return 2
    backends = parse_backend_list(args.backends)

    print(
        f"rendering {args.scenes} scene(s) of {args.duration:.1f} s "
        f"for {len(backends)} backend(s) ...",
        flush=True,
    )
    recordings = build_scene_recordings(
        args.scenes, duration_s=args.duration, base_seed=args.seed
    )
    scene_types = sorted({r.spec.name.split("-")[0] for r in recordings})

    report = {
        "benchmark": "tracker_backends",
        "config": {
            "scenes": args.scenes,
            "duration_s": args.duration,
            "seed": args.seed,
            "iou_thresholds": list(IOU_THRESHOLDS),
            "mot_iou_threshold": MOT_IOU_THRESHOLD,
        },
        "scene_types": scene_types,
        "backends": {},
    }
    for backend in backends:
        print(f"  running backend {backend!r} ...", flush=True)
        jobs = jobs_from_recordings(recordings, EbbiotConfig(tracker=backend))
        report["backends"][backend] = run_backend(recordings, jobs)

    print()
    print(f"scene types: {', '.join(scene_types)}")
    print(format_comparison(report))

    payload = json.dumps(report, indent=2)
    if args.output == "-":
        print(payload)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote JSON baseline to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
