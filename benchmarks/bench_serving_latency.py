"""Serving-layer latency/throughput baseline: 1 vs N live sensors.

Drives the in-process :class:`~repro.serving.hub.TrackingHub` (no TCP — the
transport is benchmarked separately by the CI smoke job; this measures the
serving core: online framing + incremental pipeline under sharded workers)
with synthetic traffic-like streams delivered in stream-time batches, and
records:

* **per-frame latency** — wall time from batch enqueue to frame completion
  (p50/p95/p99 from the telemetry registry's latency windows);
* **sustained throughput** — events per wall-clock second over the whole
  run, for one sensor vs N concurrent sensors.

Run as a script; emits a JSON document so later PRs can diff the numbers::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py
    PYTHONPATH=src python benchmarks/bench_serving_latency.py \\
        --events 200000 --sensors 4 --output serving_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

from repro.events.stream import EventStream, frame_boundaries
from repro.events.types import EVENT_DTYPE
from repro.serving.hub import HubConfig, TrackingHub

WIDTH, HEIGHT = 240, 180


def make_stream(num_events: int, duration_s: float, seed: int) -> EventStream:
    """A traffic-like synthetic stream: moving blobs plus uniform noise.

    Same construction as ``bench_runtime_throughput.make_stream`` — direct
    NumPy generation so the benchmark measures the serving layer, not the
    scene renderer.
    """
    rng = np.random.default_rng(seed)
    duration_us = int(duration_s * 1e6)
    num_objects = 6
    object_events = int(num_events * 0.7) // num_objects
    packets = []
    for _ in range(num_objects):
        ts = np.sort(rng.integers(0, duration_us, size=object_events))
        start_x = rng.uniform(0, WIDTH)
        speed = rng.uniform(-60.0, 60.0)  # px/s
        center_x = np.mod(start_x + speed * ts / 1e6, WIDTH)
        center_y = rng.uniform(20, HEIGHT - 20)
        x = np.clip(center_x + rng.normal(0, 4.0, size=object_events), 0, WIDTH - 1)
        y = np.clip(center_y + rng.normal(0, 3.0, size=object_events), 0, HEIGHT - 1)
        packet = np.empty(object_events, dtype=EVENT_DTYPE)
        packet["x"] = x.astype(np.int16)
        packet["y"] = y.astype(np.int16)
        packet["t"] = ts
        packet["p"] = np.where(rng.random(object_events) < 0.5, 1, -1)
        packets.append(packet)
    noise_events = num_events - num_objects * object_events
    noise = np.empty(noise_events, dtype=EVENT_DTYPE)
    noise["x"] = rng.integers(0, WIDTH, size=noise_events)
    noise["y"] = rng.integers(0, HEIGHT, size=noise_events)
    noise["t"] = rng.integers(0, duration_us, size=noise_events)
    noise["p"] = np.where(rng.random(noise_events) < 0.5, 1, -1)
    packets.append(noise)
    events = np.concatenate(packets)
    events.sort(order="t", kind="stable")
    return EventStream(events, WIDTH, HEIGHT)


def batch_offsets(stream: EventStream, batch_duration_us: int):
    """Split a stream into stream-time batches (list of event arrays)."""
    events = stream.events
    if len(events) == 0:
        return []
    edges, splits = frame_boundaries(
        events["t"], batch_duration_us, 0, int(events["t"][-1]) + 1
    )
    return [
        events[splits[i] : splits[i + 1]]
        for i in range(len(edges) - 1)
        if splits[i + 1] > splits[i]
    ]


def run_scenario(
    streams: List[EventStream], batch_duration_us: int, num_workers: int
) -> dict:
    """Stream all sensors through one hub; return latency + throughput."""
    hub = TrackingHub(
        HubConfig(num_workers=num_workers, queue_capacity=256, backpressure="block")
    )
    batches = {
        f"sensor-{i:02d}": batch_offsets(stream, batch_duration_us)
        for i, stream in enumerate(streams)
    }
    total_events = sum(len(s) for s in streams)
    with hub:
        for sensor_id in batches:
            hub.register(sensor_id)
        started = time.perf_counter()
        # Interleave sensors round-robin in stream-time order, like
        # concurrent live feeds multiplexed into the ingestion tier.
        max_batches = max(len(b) for b in batches.values())
        for step in range(max_batches):
            for sensor_id, sensor_batches in batches.items():
                if step < len(sensor_batches):
                    hub.submit(sensor_id, sensor_batches[step])
        results = [hub.close_sensor(sensor_id) for sensor_id in batches]
        wall_s = time.perf_counter() - started
        telemetry = hub.telemetry.to_dict()

    latencies = [
        telemetry["sensors"][sensor_id]["frame_latency"] for sensor_id in batches
    ]
    total_frames = sum(r.num_frames for r in results)
    return {
        "sensors": len(streams),
        "workers": num_workers,
        "total_events": total_events,
        "total_frames": total_frames,
        "wall_time_s": wall_s,
        "events_per_s": total_events / wall_s if wall_s > 0 else 0.0,
        "frame_latency_ms": {
            "p50": float(np.median([l["p50_ms"] for l in latencies])),
            "p95": float(max(l["p95_ms"] for l in latencies)),
            "p99": float(max(l["p99_ms"] for l in latencies)),
            "mean": float(np.mean([l["mean_ms"] for l in latencies])),
        },
    }


def run_benchmark(
    num_events: int,
    duration_s: float,
    num_sensors: int,
    batch_duration_us: int,
    num_workers: int,
    seed: int,
) -> dict:
    """Single-sensor and N-sensor scenarios over the same per-sensor load."""
    streams = [
        make_stream(num_events, duration_s, seed + i) for i in range(num_sensors)
    ]
    single = run_scenario(streams[:1], batch_duration_us, num_workers=1)
    fleet = run_scenario(streams, batch_duration_us, num_workers=num_workers)
    return {
        "benchmark": "serving_latency",
        "config": {
            "events_per_sensor": num_events,
            "duration_s": duration_s,
            "num_sensors": num_sensors,
            "batch_duration_us": batch_duration_us,
            "num_workers": num_workers,
            "seed": seed,
        },
        "single": single,
        "fleet": fleet,
        "scaling": (
            fleet["events_per_s"] / single["events_per_s"]
            if single["events_per_s"]
            else 0.0
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=250_000, help="events per sensor")
    parser.add_argument("--duration", type=float, default=10.0, help="sensor seconds")
    parser.add_argument("--sensors", type=int, default=8)
    parser.add_argument("--batch-us", type=int, default=16_500)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", default=None, help="write JSON here instead of stdout"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(
        args.events, args.duration, args.sensors, args.batch_us, args.workers, args.seed
    )
    payload = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(payload)
    single, fleet = report["single"], report["fleet"]
    print(
        f"1 sensor: p50={single['frame_latency_ms']['p50']:.2f} ms "
        f"p95={single['frame_latency_ms']['p95']:.2f} ms, "
        f"{single['events_per_s']:.0f} ev/s; "
        f"{fleet['sensors']} sensors: p50={fleet['frame_latency_ms']['p50']:.2f} ms "
        f"p95={fleet['frame_latency_ms']['p95']:.2f} ms, "
        f"{fleet['events_per_s']:.0f} ev/s "
        f"({report['scaling']:.2f}x aggregate)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
