"""Fig. 3 reproduction: a sample EBBI with X/Y histogram region proposals.

The figure shows one binary frame, its downsampled X and Y histograms, and
the proposed regions (including how a fragmented car is merged into a single
coarse region).  This benchmark renders one frame of a two-object scene,
runs the histogram RPN, and prints an ASCII rendering of the frame with the
proposal boxes plus the histogram values.
"""

from __future__ import annotations

import numpy as np

from repro.core import EbbiBuilder, EbbiotConfig, HistogramRegionProposer
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.scene import Scene, SceneConfig
from repro.simulation.trajectories import crossing_trajectory
from repro.events.noise import BackgroundActivityNoise


def _build_sample_frame():
    """Render one EBBI of a scene with a car and a bike (as in Fig. 3)."""
    config = SceneConfig(noise=BackgroundActivityNoise(rate_hz_per_pixel=0.4), seed=33)
    scene = Scene(config)
    car = OBJECT_TEMPLATES[ObjectClass.CAR]
    bike = OBJECT_TEMPLATES[ObjectClass.BIKE]
    scene.add_object(
        SceneObject(0, car, crossing_trajectory(240, 60, 70.0, 0, car.width_px, 1))
    )
    scene.add_object(
        SceneObject(1, bike, crossing_trajectory(240, 110, 50.0, 0, bike.width_px, -1))
    )
    rendered = scene.render(duration_us=2_000_000)
    pipeline_config = EbbiotConfig()
    builder = EbbiBuilder(pipeline_config.width, pipeline_config.height)
    # Pick a mid-recording frame where both objects are well inside the view.
    target_frame = 20
    for index, (t_start, t_end, events) in enumerate(
        rendered.stream.iter_frames(pipeline_config.frame_duration_us, align_to_zero=True)
    ):
        if index == target_frame:
            return builder.build(events, t_start, t_end)
    raise RuntimeError("recording too short for the requested frame")


def _ascii_frame(frame: np.ndarray, boxes, downscale: int = 4) -> str:
    """Coarse ASCII rendering of the EBBI with proposal outlines."""
    height, width = frame.shape
    rows = []
    for y in range(height - downscale, -1, -downscale * 3):
        row = []
        for x in range(0, width, downscale):
            block = frame[y : y + downscale * 3, x : x + downscale]
            in_box = any(b.contains_point(x, y) for b in boxes)
            if block.sum() > 0:
                row.append("#" if not in_box else "@")
            else:
                row.append("." if not in_box else "+")
        rows.append("".join(row))
    return "\n".join(rows)


def _run_rpn(frame):
    proposer = HistogramRegionProposer()
    proposals = proposer.propose(frame)
    downsampled, histogram_x, histogram_y = proposer.debug_histograms(frame)
    return proposals, histogram_x, histogram_y


def test_fig3_sample_ebbi_and_histograms(benchmark):
    """Regenerate the Fig. 3 content: EBBI, histograms and proposals."""
    ebbi = _build_sample_frame()
    proposals, histogram_x, histogram_y = benchmark.pedantic(
        _run_rpn, args=(ebbi.filtered,), rounds=1, iterations=1
    )

    print()
    print("Fig. 3 — EBBI with histogram region proposals")
    print(f"frame window: [{ebbi.t_start_us / 1e3:.0f}, {ebbi.t_end_us / 1e3:.0f}] ms, "
          f"{ebbi.num_events} events, {ebbi.active_pixel_count} active pixels")
    print(_ascii_frame(ebbi.filtered, [p.box for p in proposals]))
    print(f"\nH_X (s1=6): {list(histogram_x)}")
    print(f"H_Y (s2=3): {list(histogram_y)}")
    for index, proposal in enumerate(proposals):
        box = proposal.box
        print(
            f"proposal {index}: x={box.x:.0f} y={box.y:.0f} "
            f"w={box.width:.0f} h={box.height:.0f} events={proposal.event_count}"
        )

    # Two objects in the scene -> at least one and at most a handful of
    # proposals (fragments merge through the coarse histogram bins).
    assert 1 <= len(proposals) <= 4
    assert histogram_x.shape == (40,)
    assert histogram_y.shape == (60,)
