"""Runtime throughput baseline: vectorized hot paths and 1-vs-N scaling.

Measures, on a synthetic 1M-event stream (traffic-like moving blobs plus
background noise):

1. **Windowing + EBBI accumulation** — the seed's per-window loop (two
   ``searchsorted`` calls and one ``events_to_binary_frame`` per window)
   against the vectorized path (one ``searchsorted`` over all boundaries,
   chunked batch accumulation).
2. **Histogram computation** — per-frame block-downsample + axis sums
   against the direct fold of :func:`repro.core.histogram_rpn.frame_histograms`.
3. **Fleet scaling** — full-pipeline events/sec for the same event volume
   processed as 1 recording (serial) vs N concurrent recordings
   (:class:`repro.runtime.StreamRunner`, thread executor).

Run as a script; emits a JSON document so later PRs can diff the numbers::

    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py
    PYTHONPATH=src python benchmarks/bench_runtime_throughput.py \\
        --events 200000 --scenes 2 --output baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

import numpy as np

from repro.core.ebbi import events_to_binary_frame, events_to_binary_frame_batch
from repro.core.histogram_rpn import (
    compute_histograms,
    downsample_binary_frame,
    frame_histograms,
)
from repro.events.stream import EventStream
from repro.events.types import EVENT_DTYPE
from repro.runtime import RecordingJob, RunnerConfig, StreamRunner

WIDTH, HEIGHT = 240, 180
FRAME_DURATION_US = 66_000


def make_stream(num_events: int, duration_s: float, seed: int) -> EventStream:
    """A traffic-like synthetic stream: moving blobs plus uniform noise.

    Generated directly with NumPy (no scene renderer) so building the 1M
    events takes milliseconds and the benchmark measures the pipeline, not
    the simulator.
    """
    rng = np.random.default_rng(seed)
    duration_us = int(duration_s * 1e6)
    num_objects = 6
    object_events = int(num_events * 0.7) // num_objects
    packets = []
    for _ in range(num_objects):
        ts = np.sort(rng.integers(0, duration_us, size=object_events))
        start_x = rng.uniform(0, WIDTH)
        speed = rng.uniform(-60.0, 60.0)  # px/s
        center_x = np.mod(start_x + speed * ts / 1e6, WIDTH)
        center_y = rng.uniform(20, HEIGHT - 20)
        x = np.clip(center_x + rng.normal(0, 4.0, size=object_events), 0, WIDTH - 1)
        y = np.clip(center_y + rng.normal(0, 3.0, size=object_events), 0, HEIGHT - 1)
        packet = np.empty(object_events, dtype=EVENT_DTYPE)
        packet["x"] = x.astype(np.int16)
        packet["y"] = y.astype(np.int16)
        packet["t"] = ts
        packet["p"] = np.where(rng.random(object_events) < 0.5, 1, -1)
        packets.append(packet)
    noise_events = num_events - num_objects * object_events
    noise = np.empty(noise_events, dtype=EVENT_DTYPE)
    noise["x"] = rng.integers(0, WIDTH, size=noise_events)
    noise["y"] = rng.integers(0, HEIGHT, size=noise_events)
    noise["t"] = rng.integers(0, duration_us, size=noise_events)
    noise["p"] = np.where(rng.random(noise_events) < 0.5, 1, -1)
    packets.append(noise)
    events = np.concatenate(packets)
    events.sort(order="t", kind="stable")
    return EventStream(events, WIDTH, HEIGHT)


# -- stage 1: windowing + EBBI accumulation ---------------------------------------------


def seed_windowing_ebbi(stream: EventStream) -> int:
    """The seed implementation: a Python loop with two searches per window."""
    timestamps = stream.events["t"]
    t_start, t_end = 0, int(timestamps[-1]) + 1
    active_total = 0
    window_start = t_start
    while window_start < t_end:
        window_end = window_start + FRAME_DURATION_US
        lo = np.searchsorted(timestamps, window_start, side="left")
        hi = np.searchsorted(timestamps, window_end, side="left")
        frame = events_to_binary_frame(stream.events[lo:hi], WIDTH, HEIGHT)
        active_total += int(frame.sum())
        window_start = window_end
    return active_total


def vectorized_windowing_ebbi(stream: EventStream, chunk_frames: int = 256) -> int:
    """The new path: one boundary search, chunked batch accumulation."""
    index = stream.frame_index(FRAME_DURATION_US, align_to_zero=True)
    active_total = 0
    for chunk_start in range(0, index.num_frames, chunk_frames):
        chunk_stop = min(chunk_start + chunk_frames, index.num_frames)
        stack = events_to_binary_frame_batch(
            index.events,
            index.splits[chunk_start : chunk_stop + 1],
            WIDTH,
            HEIGHT,
        )
        active_total += int(stack.sum(dtype=np.int64))
    return active_total


# -- stage 2: histogram computation ----------------------------------------------------


def seed_histograms(frames: np.ndarray) -> int:
    """Per-frame block-downsample followed by axis sums (seed path)."""
    checksum = 0
    for frame in frames:
        hx, hy = compute_histograms(downsample_binary_frame(frame, 6, 3))
        checksum += int(hx.sum()) + int(hy.sum())
    return checksum


def vectorized_histograms(frames: np.ndarray) -> int:
    """Direct fold of the full-resolution frame into both histograms."""
    checksum = 0
    for frame in frames:
        hx, hy = frame_histograms(frame, 6, 3)
        checksum += int(hx.sum()) + int(hy.sum())
    return checksum


# -- timing helpers --------------------------------------------------------------------


def _time(fn, *args, repeats: int = 1):
    """Best-of-``repeats`` wall time and the function's checksum."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, value


def run_benchmark(
    num_events: int, duration_s: float, num_scenes: int, repeats: int, seed: int
) -> dict:
    """Run all three stages and return the JSON-serialisable report."""
    stream = make_stream(num_events, duration_s, seed)

    seed_time, seed_checksum = _time(seed_windowing_ebbi, stream, repeats=repeats)
    vec_time, vec_checksum = _time(vectorized_windowing_ebbi, stream, repeats=repeats)
    if seed_checksum != vec_checksum:
        raise AssertionError(
            f"windowing paths disagree: {seed_checksum} != {vec_checksum}"
        )
    windowing = {
        "num_events": len(stream),
        "seed_loop_s": seed_time,
        "vectorized_s": vec_time,
        "seed_events_per_s": len(stream) / seed_time,
        "vectorized_events_per_s": len(stream) / vec_time,
        "speedup": seed_time / vec_time,
    }

    # Reuse the stream's first frames for the histogram stage.
    index = stream.frame_index(FRAME_DURATION_US, align_to_zero=True)
    num_hist_frames = min(index.num_frames, 256)
    frames = events_to_binary_frame_batch(
        index.events, index.splits[: num_hist_frames + 1], WIDTH, HEIGHT
    )
    hist_seed_time, hist_seed_sum = _time(seed_histograms, frames, repeats=repeats)
    hist_vec_time, hist_vec_sum = _time(vectorized_histograms, frames, repeats=repeats)
    if hist_seed_sum != hist_vec_sum:
        raise AssertionError(
            f"histogram paths disagree: {hist_seed_sum} != {hist_vec_sum}"
        )
    histograms = {
        "num_frames": int(num_hist_frames),
        "seed_loop_s": hist_seed_time,
        "vectorized_s": hist_vec_time,
        "seed_frames_per_s": num_hist_frames / hist_seed_time,
        "vectorized_frames_per_s": num_hist_frames / hist_vec_time,
        "speedup": hist_seed_time / hist_vec_time,
    }

    # Fleet scaling: the same total volume as one recording vs N concurrent.
    single_job = [RecordingJob(name="single", stream=stream)]
    events_per_scene = num_events // num_scenes
    fleet_jobs = [
        RecordingJob(
            name=f"scene-{i:02d}",
            stream=make_stream(events_per_scene, duration_s / num_scenes, seed + 1 + i),
        )
        for i in range(num_scenes)
    ]
    single_batch = StreamRunner(RunnerConfig(executor="serial")).run(single_job)
    fleet_batch = StreamRunner(RunnerConfig(executor="thread")).run(fleet_jobs)
    runner = {
        "single": {
            "recordings": 1,
            "total_events": single_batch.total_events,
            "wall_time_s": single_batch.wall_time_s,
            "events_per_s": single_batch.events_per_second,
        },
        "fleet": {
            "recordings": num_scenes,
            "total_events": fleet_batch.total_events,
            "wall_time_s": fleet_batch.wall_time_s,
            "events_per_s": fleet_batch.events_per_second,
        },
        "scaling": (
            fleet_batch.events_per_second / single_batch.events_per_second
            if single_batch.events_per_second
            else 0.0
        ),
    }

    return {
        "benchmark": "runtime_throughput",
        "config": {
            "num_events": num_events,
            "duration_s": duration_s,
            "num_scenes": num_scenes,
            "repeats": repeats,
            "seed": seed,
        },
        "windowing_ebbi": windowing,
        "histograms": histograms,
        "runner": runner,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=1_000_000)
    parser.add_argument("--duration", type=float, default=40.0)
    parser.add_argument("--scenes", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", default=None, help="write JSON here instead of stdout"
    )
    args = parser.parse_args(argv)

    report = run_benchmark(
        args.events, args.duration, args.scenes, args.repeats, args.seed
    )
    payload = json.dumps(report, indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(payload)
    win = report["windowing_ebbi"]
    hist = report["histograms"]
    run = report["runner"]
    print(
        f"windowing+EBBI: {win['speedup']:.1f}x faster "
        f"({win['seed_events_per_s']:.0f} -> {win['vectorized_events_per_s']:.0f} ev/s); "
        f"histograms: {hist['speedup']:.1f}x; "
        f"1 -> {run['fleet']['recordings']} recordings: "
        f"{run['scaling']:.2f}x aggregate throughput",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
