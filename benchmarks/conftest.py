"""Shared benchmark fixtures.

The benchmarks regenerate the paper's tables and figures on scaled-down
synthetic recordings (see DESIGN.md for the substitution rationale).  The
recordings are built once per session and shared; each benchmark prints the
rows/series it reproduces so ``pytest benchmarks/ --benchmark-only -s``
doubles as the experiment log for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.datasets import ENG_LIKE_SPEC, LT4_LIKE_SPEC, build_recording

#: Durations used for the benchmark recordings (seconds).  Long enough for a
#: few dozen vehicles at the configured arrival rates, short enough to keep
#: the whole benchmark suite in the minutes range on a laptop.
ENG_BENCH_DURATION_S = 25.0
LT4_BENCH_DURATION_S = 20.0


@pytest.fixture(scope="session")
def eng_recording():
    """ENG-like (12 mm, busy) synthetic recording."""
    return build_recording(ENG_LIKE_SPEC, duration_override_s=ENG_BENCH_DURATION_S)


@pytest.fixture(scope="session")
def lt4_recording():
    """LT4-like (6 mm, quiet) synthetic recording."""
    return build_recording(LT4_LIKE_SPEC, duration_override_s=LT4_BENCH_DURATION_S)


@pytest.fixture(scope="session")
def both_recordings(eng_recording, lt4_recording):
    """Both Table I recordings, ENG first."""
    return [eng_recording, lt4_recording]
