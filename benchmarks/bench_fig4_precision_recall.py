"""Fig. 4 reproduction: precision and recall vs IoU threshold for EBMS, KF
and EBBIOT, weighted across the two recordings by ground-truth track count.

Paper claim: "EBBIOT outperforms others and shows more stable precision and
recall values for varying thresholds."  We check the qualitative shape: at
the mid thresholds EBBIOT's precision and recall are at least as good as the
EBMS baseline's, and EBBIOT degrades smoothly with the threshold.
"""

from __future__ import annotations

from repro.core import EbbiBuilder, EbbiotConfig, EbbiotPipeline, HistogramRegionProposer
from repro.core.roe import RegionOfExclusion
from repro.evaluation import evaluate_recording, sweep_iou_thresholds
from repro.evaluation.report import format_precision_recall_table
from repro.events.filters import NearestNeighbourFilter
from repro.trackers import EbmsTracker, KalmanFilterTracker

IOU_THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


def _run_ebbiot(recording, config):
    # The ROE (operator-drawn exclusion of trees/posts) is part of EBBIOT.
    config_with_roe = EbbiotConfig(roe_boxes=recording.roe_boxes())
    pipeline = EbbiotPipeline(config_with_roe)
    result = pipeline.process_stream(recording.stream)
    return result.track_history.observations


def _run_ebbi_kf(recording, config):
    builder = EbbiBuilder(config.width, config.height, config.median_patch_size)
    proposer = HistogramRegionProposer(
        downsample_x=config.downsample_x,
        downsample_y=config.downsample_y,
        threshold=config.histogram_threshold,
    )
    # The KF baseline shares the EBBI + RPN front end, including the ROE.
    roe = RegionOfExclusion(boxes=recording.roe_boxes())
    tracker = KalmanFilterTracker()
    observations = []
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        ebbi = builder.build(events, t_start, t_end)
        proposals = roe.filter_proposals(proposer.propose(ebbi.filtered))
        observations.extend(tracker.process_frame(proposals, ebbi.t_mid_us))
    return observations


def _run_nnfilt_ebms(recording, config):
    nn_filter = NearestNeighbourFilter(config.width, config.height)
    tracker = EbmsTracker()
    observations = []
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        filtered = nn_filter.filter(events)
        observations.extend(tracker.process_frame(filtered, (t_start + t_end) // 2))
    return observations


def _evaluate_all(recordings):
    config = EbbiotConfig()
    runners = {
        "EBBIOT": _run_ebbiot,
        "EBBI+KF": _run_ebbi_kf,
        "NNfilt+EBMS": _run_nnfilt_ebms,
    }
    combined = {}
    for name, runner in runners.items():
        evaluations = []
        for recording in recordings:
            observations = runner(recording, config)
            evaluations.append(
                evaluate_recording(
                    observations,
                    recording.annotations.frames,
                    iou_thresholds=IOU_THRESHOLDS,
                    name=recording.name,
                )
            )
        combined[name] = sweep_iou_thresholds(evaluations)
    return combined


def test_fig4_precision_recall_vs_iou(both_recordings, benchmark):
    """Regenerate the Fig. 4 series (weighted precision/recall per tracker)."""
    results = benchmark.pedantic(
        _evaluate_all, args=(both_recordings,), rounds=1, iterations=1
    )
    print()
    print("Fig. 4 — weighted precision / recall vs IoU threshold")
    print(format_precision_recall_table(results))

    ebbiot = results["EBBIOT"]
    ebms = results["NNfilt+EBMS"]
    kalman = results["EBBI+KF"]

    # Qualitative shape of Fig. 4: at moderate thresholds EBBIOT clearly
    # beats the fully event-driven EBMS pipeline on precision and is at
    # least comparable on recall.
    for threshold in (0.2, 0.3, 0.4):
        assert ebbiot[threshold].precision > ebms[threshold].precision
        assert ebbiot[threshold].recall >= ebms[threshold].recall - 0.05

    # EBBIOT is no worse than the Kalman baseline at the paper's headline
    # IoU = 0.3 operating point.
    assert ebbiot[0.3].precision >= kalman[0.3].precision - 0.05
    assert ebbiot[0.3].recall >= kalman[0.3].recall - 0.10

    # Precision and recall decrease monotonically with the IoU threshold
    # (stability claim: no catastrophic cliff before 0.5).
    precisions = [ebbiot[t].precision for t in IOU_THRESHOLDS]
    assert all(a >= b - 1e-9 for a, b in zip(precisions, precisions[1:]))
    assert ebbiot[0.5].precision > 0.5
