"""Fig. 4 reproduction: precision and recall vs IoU threshold for EBMS, KF
and EBBIOT, weighted across the two recordings by ground-truth track count.

Paper claim: "EBBIOT outperforms others and shows more stable precision and
recall values for varying thresholds."  We check the qualitative shape: at
the mid thresholds EBBIOT's precision and recall are at least as good as the
EBMS baseline's, and EBBIOT degrades smoothly with the threshold.

All three trackers now run through the *same* unified pipeline path —
``EbbiotPipeline`` with a tracker backend selected by
``EbbiotConfig(tracker=...)`` — instead of one bespoke loop per tracker.
The per-tracker configs reproduce the original evaluation setups exactly:

* ``"overlap"`` (EBBIOT) — paper defaults plus the operator-drawn ROE.
* ``"kalman"`` (EBBI+KF) — same EBBI + RPN front end and ROE; the historical
  KF loop applied no minimum-proposal-area filter, so that filter is
  disabled to keep its Fig. 4 numbers unchanged.
* ``"ebms"`` (NNfilt+EBMS) — fully event-driven: the backend declares
  ``requires_proposals = False`` so the pipeline skips the RPN and hands
  each window's raw events to the backend's NN filter + mean-shift tracker.
"""

from __future__ import annotations

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.evaluation import evaluate_recording, sweep_iou_thresholds
from repro.evaluation.report import format_precision_recall_table

IOU_THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)

#: Tracker label of Fig. 4 → the backend's pipeline configuration.
TRACKER_CONFIGS = {
    "EBBIOT": lambda recording: EbbiotConfig(
        tracker="overlap", roe_boxes=recording.roe_boxes()
    ),
    "EBBI+KF": lambda recording: EbbiotConfig(
        tracker="kalman",
        roe_boxes=recording.roe_boxes(),
        # The historical KF evaluation fed every RPN proposal to the
        # tracker; keep that behaviour for number-for-number parity.
        min_proposal_area=0.0,
    ),
    "NNfilt+EBMS": lambda recording: EbbiotConfig(tracker="ebms"),
}


def _run_tracker(recording, make_config) -> list:
    """One recording through the unified pipeline; returns the observations."""
    pipeline = EbbiotPipeline(make_config(recording))
    result = pipeline.process_stream(recording.stream)
    return result.track_history.observations


def _evaluate_all(recordings):
    combined = {}
    for name, make_config in TRACKER_CONFIGS.items():
        evaluations = []
        for recording in recordings:
            observations = _run_tracker(recording, make_config)
            evaluations.append(
                evaluate_recording(
                    observations,
                    recording.annotations.frames,
                    iou_thresholds=IOU_THRESHOLDS,
                    name=recording.name,
                )
            )
        combined[name] = sweep_iou_thresholds(evaluations)
    return combined


def test_fig4_precision_recall_vs_iou(both_recordings, benchmark):
    """Regenerate the Fig. 4 series (weighted precision/recall per tracker)."""
    results = benchmark.pedantic(
        _evaluate_all, args=(both_recordings,), rounds=1, iterations=1
    )
    print()
    print("Fig. 4 — weighted precision / recall vs IoU threshold")
    print(format_precision_recall_table(results))

    ebbiot = results["EBBIOT"]
    ebms = results["NNfilt+EBMS"]
    kalman = results["EBBI+KF"]

    # Qualitative shape of Fig. 4: at moderate thresholds EBBIOT clearly
    # beats the fully event-driven EBMS pipeline on precision and is at
    # least comparable on recall.
    for threshold in (0.2, 0.3, 0.4):
        assert ebbiot[threshold].precision > ebms[threshold].precision
        assert ebbiot[threshold].recall >= ebms[threshold].recall - 0.05

    # EBBIOT is no worse than the Kalman baseline at the paper's headline
    # IoU = 0.3 operating point.
    assert ebbiot[0.3].precision >= kalman[0.3].precision - 0.05
    assert ebbiot[0.3].recall >= kalman[0.3].recall - 0.10

    # Precision and recall decrease monotonically with the IoU threshold
    # (stability claim: no catastrophic cliff before 0.5).
    precisions = [ebbiot[t].precision for t in IOU_THRESHOLDS]
    assert all(a >= b - 1e-9 for a, b in zip(precisions, precisions[1:]))
    assert ebbiot[0.5].precision > 0.5
