"""Table I reproduction: dataset details for the two recording sites.

Paper (Table I):

    Location  Lens(mm)  Duration(s)  Num Events
    ENG       12        2998.4       107.5M
    LT4       6         999.5        12.5M

We report the simulated (scaled) recordings plus the event counts
extrapolated to the paper's full durations.
"""

from __future__ import annotations

from repro.evaluation.report import format_comparison_table


def _table1_rows(recordings):
    return [recording.table1_row() for recording in recordings]


def test_table1_dataset_details(both_recordings, benchmark):
    """Regenerate the Table I rows from the synthetic recordings."""
    rows = benchmark.pedantic(
        _table1_rows, args=(both_recordings,), rounds=1, iterations=1
    )
    columns = [
        "location",
        "lens_mm",
        "simulated_duration_s",
        "simulated_num_events",
        "event_rate_per_s",
        "extrapolated_num_events",
        "paper_duration_s",
        "paper_num_events",
        "num_ground_truth_tracks",
    ]
    print()
    print(format_comparison_table(rows, columns, title="Table I — dataset details"))

    # Structural checks mirroring the paper: two sites, ENG uses the longer
    # lens and has the (much) higher event rate.
    assert [row["location"] for row in rows] == ["ENG", "LT4"]
    eng, lt4 = rows
    assert eng["lens_mm"] == 12.0 and lt4["lens_mm"] == 6.0
    assert eng["event_rate_per_s"] > lt4["event_rate_per_s"]
    assert eng["simulated_num_events"] > 0 and lt4["simulated_num_events"] > 0
