"""Fig. 5 reproduction: total computes per frame and total memory of the
EBMS and EBBI+KF pipelines relative to EBBIOT.

Abstract claims checked: EBBIOT needs ≈ 7X less memory and ≈ 3X fewer
computations than conventional noise filtering + EBMS tracking, while the
EBBI+KF pipeline sits within a few percent of EBBIOT.

The models are evaluated twice: once with the paper's constants and once
with the data-dependent constants (alpha, NF, NT, CL) measured from the
synthetic LT4-like recording, to show the conclusion is insensitive to the
exact workload statistics.
"""

from __future__ import annotations

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.evaluation.report import format_comparison_table
from repro.events.filters import NearestNeighbourFilter
from repro.resources import ResourceParams, relative_comparison
from repro.trackers import EbmsTracker

COLUMNS = [
    "pipeline",
    "computes_per_frame",
    "memory_kilobytes",
    "computes_relative",
    "memory_relative",
]


def _measured_params(recording) -> ResourceParams:
    """Measure alpha, NF, NT and CL on a recording and plug them into the models."""
    config = EbbiotConfig()
    pipeline = EbbiotPipeline(config)
    result = pipeline.process_stream(recording.stream)

    nn_filter = NearestNeighbourFilter(config.width, config.height)
    ebms = EbmsTracker()
    filtered_events = 0
    frames = 0
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        kept = nn_filter.filter(events)
        filtered_events += len(kept)
        ebms.process_frame(kept, (t_start + t_end) // 2)
        frames += 1

    return ResourceParams().with_measured(
        active_pixel_fraction=max(result.mean_active_pixel_fraction, 1e-4),
        events_per_frame_filtered=filtered_events / max(frames, 1),
        num_trackers=max(result.mean_active_trackers, 0.5),
        active_clusters=max(ebms.mean_visible_clusters, 0.5),
    )


def test_fig5_relative_resources_paper_constants(benchmark):
    """Fig. 5 with the paper's constants (alpha=0.1, NF=650, NT=CL=2)."""
    rows = benchmark.pedantic(relative_comparison, rounds=1, iterations=1)
    print()
    print(
        format_comparison_table(
            rows, COLUMNS, title="Fig. 5 — resources relative to EBBIOT (paper constants)"
        )
    )
    ebms = next(row for row in rows if row["pipeline"] == "EBMS")
    kalman = next(row for row in rows if row["pipeline"] == "EBBI+KF")
    assert 2.5 < ebms["computes_relative"] < 3.5
    assert 6.0 < ebms["memory_relative"] < 8.0
    assert 1.0 <= kalman["computes_relative"] < 1.1


def test_fig5_relative_resources_measured_constants(lt4_recording, benchmark):
    """Fig. 5 with constants measured on the synthetic LT4-like recording."""
    params = _measured_params(lt4_recording)
    rows = benchmark.pedantic(relative_comparison, args=(params,), rounds=1, iterations=1)
    print()
    print(
        format_comparison_table(
            rows,
            COLUMNS,
            title=(
                "Fig. 5 — resources relative to EBBIOT "
                f"(measured: alpha={params.active_pixel_fraction:.4f}, "
                f"NF={params.events_per_frame_filtered:.0f}, "
                f"NT={params.num_trackers:.2f}, CL={params.active_clusters:.2f})"
            ),
        )
    )
    ebms = next(row for row in rows if row["pipeline"] == "EBMS")
    # The memory ratio is workload independent; the compute ratio moves with
    # the measured event statistics but EBMS stays clearly more expensive.
    assert 6.0 < ebms["memory_relative"] < 8.0
    assert ebms["computes_relative"] > 1.5
