"""Ablation: histogram RPN vs connected-component RPN, and downsampling factors.

The paper motivates the histogram RPN by the side-view geometry and names
2-D CCA as the general (future-work) alternative; the downsampling factors
(s1, s2) = (6, 3) are stated to "work well".  These benchmarks quantify both
choices on the LT4-like recording: tracking quality at IoU 0.3 plus the
analytic compute cost of the RPN configuration.
"""

from __future__ import annotations

from repro.core import EbbiBuilder, EbbiotConfig, HistogramRegionProposer
from repro.core.cca_rpn import ConnectedComponentRPN
from repro.core.overlap_tracker import OverlapTracker, OverlapTrackerConfig
from repro.evaluation import evaluate_recording
from repro.evaluation.report import format_comparison_table
from repro.resources import ResourceParams, RpnResourceModel


def _run_with_proposer(recording, proposer, config):
    """Run EBBI + the given proposer + a fresh overlap tracker."""
    builder = EbbiBuilder(config.width, config.height, config.median_patch_size)
    tracker = OverlapTracker(OverlapTrackerConfig(max_trackers=config.max_trackers))
    observations = []
    for t_start, t_end, events in recording.stream.iter_frames(
        config.frame_duration_us, align_to_zero=True
    ):
        ebbi = builder.build(events, t_start, t_end)
        proposals = [
            p for p in proposer.propose(ebbi.filtered) if p.box.area >= config.min_proposal_area
        ]
        observations.extend(tracker.process_frame(proposals, ebbi.t_mid_us))
    evaluation = evaluate_recording(
        observations, recording.annotations.frames, iou_thresholds=(0.3,)
    )
    return evaluation.by_threshold[0.3]


def _rpn_variant_rows(recording):
    config = EbbiotConfig()
    rows = []
    variants = {
        "histogram (s1=6, s2=3)": HistogramRegionProposer(6, 3),
        "histogram (s1=3, s2=3)": HistogramRegionProposer(3, 3),
        "histogram (s1=12, s2=6)": HistogramRegionProposer(12, 6),
        "2-D CCA (8-conn)": ConnectedComponentRPN(),
    }
    for name, proposer in variants.items():
        result = _run_with_proposer(recording, proposer, config)
        if isinstance(proposer, HistogramRegionProposer):
            params = ResourceParams(
                downsample_x=proposer.downsample_x, downsample_y=proposer.downsample_y
            )
            computes = RpnResourceModel(params).computes_per_frame()
        else:
            # CCA touches every pixel at least once and every active pixel a
            # few more times; charge two full-frame passes as a lower bound.
            computes = 2.0 * config.width * config.height
        rows.append(
            {
                "rpn": name,
                "precision@0.3": result.precision,
                "recall@0.3": result.recall,
                "rpn_computes_per_frame": computes,
            }
        )
    return rows


def test_ablation_rpn_variants(lt4_recording, benchmark):
    """Histogram vs CCA proposals and downsample-factor sensitivity."""
    rows = benchmark.pedantic(_rpn_variant_rows, args=(lt4_recording,), rounds=1, iterations=1)
    print()
    print(
        format_comparison_table(
            rows,
            ["rpn", "precision@0.3", "recall@0.3", "rpn_computes_per_frame"],
            title="Ablation — region-proposal variants (LT4-like recording)",
        )
    )
    by_name = {row["rpn"]: row for row in rows}
    paper_choice = by_name["histogram (s1=6, s2=3)"]
    # The paper's configuration is a good operating point: it keeps most of
    # the quality of the finer histogram while being much cheaper than CCA.
    assert paper_choice["precision@0.3"] > 0.6
    assert paper_choice["recall@0.3"] > 0.6
    # The very coarse (12, 6) variant costs less but must not be the best in
    # both precision and recall simultaneously by a large margin (sanity).
    assert paper_choice["rpn_computes_per_frame"] < 2.0 * 240 * 180
