"""Fig. 2 reproduction: interrupt-driven duty-cycled operation.

The figure is a timing diagram; the quantitative content is the duty cycle
of the processor at tF = 66 ms and how the power advantage shrinks as tF
gets smaller (the paper: "this scheme loses appeal as tF becomes smaller").
"""

from __future__ import annotations

from repro.evaluation.report import format_comparison_table
from repro.sensor.duty_cycle import DutyCycleModel


def _duty_cycle_sweep():
    model = DutyCycleModel(frame_duration_us=66_000)
    rows = model.compare_frame_durations([8_000, 16_000, 33_000, 66_000, 132_000])
    trace = model.simulate(num_frames=3)
    return rows, trace


def test_fig2_duty_cycle_timing(benchmark):
    """Regenerate the duty-cycle timing/power numbers behind Fig. 2."""
    rows, trace = benchmark.pedantic(_duty_cycle_sweep, rounds=1, iterations=1)
    print()
    print(
        format_comparison_table(
            rows,
            [
                "frame_duration_us",
                "frame_rate_hz",
                "duty_cycle",
                "average_power_mw",
                "power_saving_factor",
            ],
            title="Fig. 2 — duty-cycled operation vs frame duration",
        )
    )
    print(
        f"\ntF = 66 ms trace: active fraction = {trace.active_fraction():.3f}, "
        f"{len(trace.intervals)} intervals over {trace.total_time_us() / 1e3:.1f} ms"
    )

    paper_row = next(row for row in rows if row["frame_duration_us"] == 66_000)
    # ~15 Hz frame rate and a deeply duty-cycled processor.
    assert 14.0 < paper_row["frame_rate_hz"] < 16.0
    assert paper_row["duty_cycle"] < 0.2
    # The power saving factor shrinks monotonically as tF shrinks.
    savings = [row["power_saving_factor"] for row in rows]
    assert all(a <= b for a, b in zip(savings, savings[1:]))
