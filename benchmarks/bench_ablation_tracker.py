"""Ablations of the EBBIOT design choices called out in DESIGN.md:

* frame duration tF (the paper: 66 ms is enough for vehicles; shorter frames
  raise the duty cycle for little tracking benefit),
* overlap threshold of the OT,
* occlusion look-ahead n (0 disables prediction-based occlusion handling),
* median filtering on/off (noise robustness of the EBBI front end).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.evaluation import evaluate_recording
from repro.evaluation.report import format_comparison_table
from repro.sensor.duty_cycle import DutyCycleModel


def _evaluate(recording, config):
    pipeline = EbbiotPipeline(config)
    result = pipeline.process_stream(recording.stream)
    evaluation = evaluate_recording(
        result.track_history.observations,
        recording.annotations.frames,
        iou_thresholds=(0.3,),
        alignment_tolerance_us=max(40_000, config.frame_duration_us // 2 + 7_000),
    )
    return evaluation.by_threshold[0.3]


def _frame_duration_rows(recording):
    rows = []
    for frame_duration_us in (33_000, 66_000, 132_000):
        config = EbbiotConfig(frame_duration_us=frame_duration_us)
        result = _evaluate(recording, config)
        duty = DutyCycleModel(frame_duration_us=frame_duration_us)
        rows.append(
            {
                "tF_ms": frame_duration_us / 1000,
                "precision@0.3": result.precision,
                "recall@0.3": result.recall,
                "duty_cycle": duty.duty_cycle,
                "avg_power_mw": duty.average_power_mw(),
            }
        )
    return rows


def test_ablation_frame_duration(lt4_recording, benchmark):
    """tF sweep: tracking quality vs processor duty cycle."""
    rows = benchmark.pedantic(
        _frame_duration_rows, args=(lt4_recording,), rounds=1, iterations=1
    )
    print()
    print(
        format_comparison_table(
            rows,
            ["tF_ms", "precision@0.3", "recall@0.3", "duty_cycle", "avg_power_mw"],
            title="Ablation — frame duration tF",
        )
    )
    paper = next(row for row in rows if row["tF_ms"] == 66.0)
    assert paper["recall@0.3"] > 0.6
    # Longer frames always lower the duty cycle (power); the paper's 66 ms
    # keeps tracking quality close to the 33 ms setting.
    duties = [row["duty_cycle"] for row in rows]
    assert duties[0] > duties[1] > duties[2]


def _tracker_parameter_rows(recording):
    base = EbbiotConfig()
    variants = {
        "paper (thr=0.25, n=2, median on)": base,
        "overlap threshold 0.1": replace(base, overlap_threshold=0.1),
        "overlap threshold 0.5": replace(base, overlap_threshold=0.5),
        "no occlusion look-ahead (n=0)": replace(base, occlusion_lookahead_frames=0),
        "median filter off": replace(base, median_patch_size=1),
    }
    rows = []
    for name, config in variants.items():
        result = _evaluate(recording, config)
        rows.append(
            {
                "variant": name,
                "precision@0.3": result.precision,
                "recall@0.3": result.recall,
                "true_positives": result.true_positives,
            }
        )
    return rows


def test_ablation_tracker_parameters(lt4_recording, benchmark):
    """Overlap threshold, occlusion look-ahead and median-filter ablations."""
    rows = benchmark.pedantic(
        _tracker_parameter_rows, args=(lt4_recording,), rounds=1, iterations=1
    )
    print()
    print(
        format_comparison_table(
            rows,
            ["variant", "precision@0.3", "recall@0.3", "true_positives"],
            title="Ablation — overlap tracker parameters",
        )
    )
    by_name = {row["variant"]: row for row in rows}
    paper = by_name["paper (thr=0.25, n=2, median on)"]
    assert paper["precision@0.3"] > 0.6
    assert paper["recall@0.3"] > 0.6
    # Disabling the median filter must not *improve* precision on a noisy
    # recording (it may tie when the RPN's density check already rejects the
    # remaining speckle).
    assert by_name["median filter off"]["precision@0.3"] <= paper["precision@0.3"] + 0.05
