"""Shared utilities: geometry primitives, validation, hot-path selection."""

from repro.utils.fastpath import SCALAR_ENV, force_scalar, scalar_forced
from repro.utils.geometry import (
    BoundingBox,
    boxes_intersection_area,
    boxes_iou,
    boxes_union_area,
    clip_box,
    merge_boxes,
)
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
)

__all__ = [
    "SCALAR_ENV",
    "force_scalar",
    "scalar_forced",
    "BoundingBox",
    "boxes_intersection_area",
    "boxes_iou",
    "boxes_union_area",
    "clip_box",
    "merge_boxes",
    "ensure_in_range",
    "ensure_positive",
    "ensure_positive_int",
]
