"""Shared utilities: geometry primitives and validation helpers."""

from repro.utils.geometry import (
    BoundingBox,
    boxes_intersection_area,
    boxes_iou,
    boxes_union_area,
    clip_box,
    merge_boxes,
)
from repro.utils.validation import (
    ensure_in_range,
    ensure_positive,
    ensure_positive_int,
)

__all__ = [
    "BoundingBox",
    "boxes_intersection_area",
    "boxes_iou",
    "boxes_union_area",
    "clip_box",
    "merge_boxes",
    "ensure_in_range",
    "ensure_positive",
    "ensure_positive_int",
]
