"""Scalar-vs-vectorized hot-path selection.

The event-path hot loops (NN-filt, refractory filter, EBMS cluster
assignment) each keep two implementations: a *scalar* per-event reference
that mirrors how the algorithm would run on an embedded event processor,
and a chunked/vectorized fast path that is bit-identical to it (asserted by
``tests/test_event_path_parity.py``).  The fast path is the default
everywhere; this module is the one switch that forces the reference path:

* ``REPRO_FORCE_SCALAR=1`` in the environment forces every hot loop back to
  the scalar reference (reference runs, debugging, perf A/B).
* :func:`force_scalar` is the programmatic equivalent, used by
  ``python -m repro.bench`` to time both paths in one process.

The environment variable is read on every call, so toggling it at runtime
(as the benchmark harness does) takes effect immediately; the lookup is a
dictionary access and is invisible next to even a single event's work.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment variable that forces the scalar reference implementations.
SCALAR_ENV = "REPRO_FORCE_SCALAR"

_FALSE_VALUES = ("", "0", "false", "no", "off")


def scalar_forced() -> bool:
    """``True`` when the environment forces the scalar reference paths."""
    return os.environ.get(SCALAR_ENV, "").strip().lower() not in _FALSE_VALUES


@contextmanager
def force_scalar(enabled: bool = True) -> Iterator[None]:
    """Context manager that (un)forces the scalar paths for its body.

    ``force_scalar(False)`` pins the vectorized paths even when the
    surrounding environment sets :data:`SCALAR_ENV` — the benchmark harness
    uses both directions to time the two implementations back to back.
    """
    previous = os.environ.get(SCALAR_ENV)
    os.environ[SCALAR_ENV] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[SCALAR_ENV]
        else:
            os.environ[SCALAR_ENV] = previous
