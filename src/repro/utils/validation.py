"""Small argument-validation helpers shared across configuration objects."""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def ensure_positive(name: str, value: Number) -> Number:
    """Raise :class:`ValueError` unless ``value > 0``; return the value."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def ensure_positive_int(name: str, value: int) -> int:
    """Raise unless ``value`` is a positive integer; return the value."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def ensure_in_range(
    name: str, value: Number, low: Number, high: Number, inclusive: bool = True
) -> Number:
    """Raise unless ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value
