"""Axis-aligned bounding-box geometry used throughout the pipeline.

The paper represents both region proposals and tracker state with a
"position vector" consisting of the bottom-left corner ``(x, y)``, width
``w`` and height ``h`` of a box (Section II-C).  :class:`BoundingBox`
mirrors that representation.  All coordinates are in pixels with the origin
at the bottom-left of the sensor array; boxes are half-open in neither
direction — a box of width ``w`` spans ``[x, x + w]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned box given by bottom-left corner, width and height.

    Parameters
    ----------
    x, y:
        Bottom-left corner coordinates in pixels.  Fractional values are
        allowed (tracker predictions use sub-pixel positions).
    width, height:
        Box extents in pixels.  Must be non-negative.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError(
                f"box extents must be non-negative, got width={self.width} "
                f"height={self.height}"
            )

    # -- basic derived quantities -------------------------------------------------

    @property
    def x2(self) -> float:
        """Right edge (``x + width``)."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge (``y + height``)."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Box area in square pixels."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """Centroid ``(cx, cy)`` of the box."""
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @property
    def corners(self) -> Tuple[float, float, float, float]:
        """Box as ``(x1, y1, x2, y2)``."""
        return (self.x, self.y, self.x2, self.y2)

    def is_empty(self, tolerance: float = 0.0) -> bool:
        """Return ``True`` if the box has (near-)zero area."""
        return self.area <= tolerance

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_corners(cls, x1: float, y1: float, x2: float, y2: float) -> "BoundingBox":
        """Build a box from two opposite corners (any order)."""
        left, right = min(x1, x2), max(x1, x2)
        bottom, top = min(y1, y2), max(y1, y2)
        return cls(left, bottom, right - left, top - bottom)

    @classmethod
    def from_center(
        cls, cx: float, cy: float, width: float, height: float
    ) -> "BoundingBox":
        """Build a box from its centroid and extents."""
        return cls(cx - width / 2.0, cy - height / 2.0, width, height)

    @classmethod
    def from_points(
        cls, xs: Sequence[float], ys: Sequence[float]
    ) -> "BoundingBox":
        """Tight box around a non-empty set of points."""
        if len(xs) == 0 or len(ys) == 0:
            raise ValueError("cannot build a bounding box from zero points")
        return cls.from_corners(min(xs), min(ys), max(xs), max(ys))

    # -- relations with other boxes -----------------------------------------------

    def intersection(self, other: "BoundingBox") -> Optional["BoundingBox"]:
        """Intersection box with ``other`` or ``None`` when disjoint."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x2 <= x1 or y2 <= y1:
            return None
        return BoundingBox(x1, y1, x2 - x1, y2 - y1)

    def intersection_area(self, other: "BoundingBox") -> float:
        """Area of overlap with ``other`` (0.0 when disjoint)."""
        return boxes_intersection_area(self, other)

    def union_area(self, other: "BoundingBox") -> float:
        """Area of the union of the two boxes."""
        return boxes_union_area(self, other)

    def iou(self, other: "BoundingBox") -> float:
        """Intersection over union with ``other`` (Eq. (9) in the paper)."""
        return boxes_iou(self, other)

    def overlap_fraction(self, other: "BoundingBox") -> float:
        """Overlap area as a fraction of *this* box's area.

        This is the quantity the overlap tracker thresholds: a match is
        declared when the overlap exceeds a fraction of the tracker box or
        of the proposal box.
        """
        if self.area == 0:
            return 0.0
        return self.intersection_area(other) / self.area

    def contains_point(self, px: float, py: float) -> bool:
        """Return ``True`` when ``(px, py)`` falls inside the box."""
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def contains_box(self, other: "BoundingBox") -> bool:
        """Return ``True`` when ``other`` lies entirely within this box."""
        return (
            self.x <= other.x
            and self.y <= other.y
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def center_distance(self, other: "BoundingBox") -> float:
        """Euclidean distance between the two box centroids."""
        cx1, cy1 = self.center
        cx2, cy2 = other.center
        return math.hypot(cx1 - cx2, cy1 - cy2)

    # -- transformations -----------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "BoundingBox":
        """Box shifted by ``(dx, dy)``."""
        return BoundingBox(self.x + dx, self.y + dy, self.width, self.height)

    def scaled(self, sx: float, sy: Optional[float] = None) -> "BoundingBox":
        """Box with coordinates and extents scaled by ``(sx, sy)``."""
        if sy is None:
            sy = sx
        return BoundingBox(self.x * sx, self.y * sy, self.width * sx, self.height * sy)

    def expanded(self, margin_x: float, margin_y: Optional[float] = None) -> "BoundingBox":
        """Box grown by a margin on every side (shrunk if negative)."""
        if margin_y is None:
            margin_y = margin_x
        new_w = max(0.0, self.width + 2 * margin_x)
        new_h = max(0.0, self.height + 2 * margin_y)
        return BoundingBox.from_center(*self.center, new_w, new_h)

    def rounded(self) -> "BoundingBox":
        """Box with all fields rounded to the nearest integer."""
        return BoundingBox(
            round(self.x), round(self.y), round(self.width), round(self.height)
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """Return ``(x, y, width, height)``."""
        return (self.x, self.y, self.width, self.height)


def boxes_intersection_area(a: BoundingBox, b: BoundingBox) -> float:
    """Area of the intersection of two boxes (0.0 when disjoint)."""
    overlap_w = min(a.x2, b.x2) - max(a.x, b.x)
    overlap_h = min(a.y2, b.y2) - max(a.y, b.y)
    if overlap_w <= 0 or overlap_h <= 0:
        return 0.0
    return overlap_w * overlap_h


def boxes_union_area(a: BoundingBox, b: BoundingBox) -> float:
    """Area of the union of two boxes.

    The per-box areas are computed from the same ``x2 - x`` edge
    differences the intersection uses (not ``width * height``): ``x + width``
    can round away from ``x`` by an ulp when the magnitudes differ, and
    mixing the two arithmetic forms lets rounding break the IoU invariants
    (a box's IoU with itself must be exactly 1, and IoU can never exceed 1
    — edge-consistent areas give both because the intersection of a box
    with itself *is* its edge area, and monotone rounding keeps any
    intersection at or below either edge area).
    """
    area_a = (a.x2 - a.x) * (a.y2 - a.y)
    area_b = (b.x2 - b.x) * (b.y2 - b.y)
    return area_a + area_b - boxes_intersection_area(a, b)


def boxes_iou(a: BoundingBox, b: BoundingBox) -> float:
    """Intersection over union of two boxes (Eq. (9) of the paper)."""
    union = boxes_union_area(a, b)
    if union <= 0:
        return 0.0
    return boxes_intersection_area(a, b) / union


def clip_box(box: BoundingBox, width: int, height: int) -> Optional[BoundingBox]:
    """Clip ``box`` to a ``width x height`` sensor array.

    Returns ``None`` when the box falls completely outside the array.
    """
    x1 = max(0.0, box.x)
    y1 = max(0.0, box.y)
    x2 = min(float(width), box.x2)
    y2 = min(float(height), box.y2)
    if x2 <= x1 or y2 <= y1:
        return None
    return BoundingBox(x1, y1, x2 - x1, y2 - y1)


def merge_boxes(boxes: Iterable[BoundingBox]) -> BoundingBox:
    """Smallest box enclosing all input boxes.

    Used by the overlap tracker when multiple (fragmented) region proposals
    are assigned to a single tracker.
    """
    boxes = list(boxes)
    if not boxes:
        raise ValueError("cannot merge an empty collection of boxes")
    x1 = min(b.x for b in boxes)
    y1 = min(b.y for b in boxes)
    x2 = max(b.x2 for b in boxes)
    y2 = max(b.y2 for b in boxes)
    return BoundingBox.from_corners(x1, y1, x2, y2)
