"""The :class:`ProcessTrackingHub`: shard workers as processes.

Same contract as the thread :class:`~repro.serving.hub.TrackingHub` —
per-sensor ordering, bounded in-flight data, ``block``/``drop``
backpressure, live migration — but each shard is a forked worker *process*
owning its sessions, fed through a shared-memory ring
(:class:`~repro.serving.transport.ShmRing`).  Two things change under the
hood:

* **transport**: event batches cross the process boundary as raw
  ``EVENT_DTYPE`` bytes in the ring; anything that must stay ordered with
  them (register, close, migrate in/out) rides the same ring in-band.
  Out-of-band control — metric scrapes, trace dumps, migration envelopes —
  uses one command pipe per shard, and results (frames, close summaries)
  come back on one result pipe per shard, drained by a parent pump thread.
* **ingest shape**: the worker drains the whole ring backlog per scan and
  coalesces each sensor's run of batches into a single
  :meth:`~repro.serving.session.SensorSession.ingest_many` call.  Under
  load that amortises per-batch framing overhead instead of paying it per
  item — the measured source of the process hub's throughput edge at
  realistic (millisecond) batch granularity; see
  ``BENCH_serving_scale.json``.

Telemetry is split by ownership: the parent counts the ingest side
(batches/events received, drops, queue depth), each worker counts the
processing side (frames, tracks, latency, late events) in its own
registry, and :meth:`ProcessTrackingHub.metrics_text` merges all of them
through :meth:`~repro.obs.MetricsRegistry.merge_state` into one exposition
that is shape-compatible with the thread hub's.

Migration uses the exact protocol of the thread hub, expressed in
transport terms: flip the shard map, enqueue ``MIGRATE_OUT`` on the source
ring and ``MIGRATE_IN`` on the target ring; the source worker drains up to
the marker, exports the :class:`~repro.serving.session.MigrationEnvelope`,
and ships it to the parent, whose pump thread forwards it to the target's
command pipe; the target worker parks at its ``MIGRATE_IN`` barrier until
the envelope arrives, restores, and only then processes the batches queued
behind it.  Output is byte-identical to an unmigrated run.

Requires the ``fork`` start method (the workers inherit the ring mappings
and the parent's imports); construction fails cleanly where only ``spawn``
exists.
"""

from __future__ import annotations

import itertools
import threading
import time
import pickle
import zlib
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import EbbiotConfig
from repro.events.types import normalize_packet
from repro.obs.metrics import MetricsRegistry
from repro.runtime.aggregate import BatchResult, RecordingResult
from repro.serving.hub import FramesCallback, HubConfig
from repro.serving.rebalance import Move, ShardStats, plan_rebalance
from repro.serving.shard import shard_worker_main
from repro.serving.telemetry import TelemetryRegistry
from repro.serving.transport import (
    KIND_CLOSE,
    KIND_EVENTS,
    KIND_MIGRATE_IN,
    KIND_MIGRATE_OUT,
    KIND_REGISTER,
    KIND_STOP,
    RingFull,
    make_ring,
)


#: Accepted batches between refreshes of a sensor's queue-depth gauge.
#: The gauge is a scrape-time approximation; reading the ring counters and
#: taking the gauge lock on *every* submit measurably taxes the hot path.
_DEPTH_GAUGE_STRIDE = 32


class _Waiter:
    """One in-flight request/response round trip with a worker."""

    __slots__ = ("done", "payload")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.payload = None


class ProcessTrackingHub:
    """Shards live sensors across worker *processes* over shared memory.

    Drop-in for :class:`~repro.serving.hub.TrackingHub`: same constructor
    shape, same public methods, same telemetry export shape.  ``on_frames``
    callbacks run on the parent's per-shard pump thread (the thread hub
    runs them on the worker thread — same threading contract for callers:
    one thread per shard, per-sensor order preserved).
    """

    def __init__(self, config: Optional[HubConfig] = None) -> None:
        self.config = config or HubConfig()
        self.telemetry = TelemetryRegistry()
        import multiprocessing

        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - platform dependent
            raise RuntimeError(
                "ProcessTrackingHub requires the 'fork' start method"
            ) from error
        self._rings = []
        self._cmd_tx = []  # parent -> worker command pipes
        self._res_rx = []  # worker -> parent result pipes
        self._procs = []
        self._pumps: List[threading.Thread] = []
        self._ring_locks = [
            threading.Lock() for _ in range(self.config.num_workers)
        ]
        self._map_lock = threading.Lock()
        self._shard_map: Dict[str, int] = {}
        self._sensor_idx: Dict[str, int] = {}
        # Submit-path fast route: sensor_id -> (shard, idx, telemetry
        # record, ring lock, ring, depth-gauge countdown).  Replaced (never
        # mutated) whenever the sensor's placement changes, and always
        # while both affected ring locks are held, so a submitter that
        # re-checks identity after acquiring the ring lock can trust it.
        self._routes: Dict[str, tuple] = {}
        self._trackers: Dict[str, str] = {}
        self._callbacks: Dict[str, Optional[FramesCallback]] = {}
        self._next_idx = itertools.count()
        self._next_req = itertools.count(1)
        self._waiters: Dict[int, _Waiter] = {}
        self._waiters_lock = threading.Lock()
        self._pending_migrations: Dict[int, int] = {}  # mig_id -> target shard
        self._closed_results: List[RecordingResult] = []
        self._closed_lock = threading.Lock()
        self._started = False
        self._started_at = 0.0
        self._migrations = 0
        self._submits_until_rebalance = self.config.rebalance_check_every
        self._rebalance_lock = threading.Lock()
        self._rebalance_wake = threading.Event()
        self._rebalance_stopping = False
        self._rebalance_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> "ProcessTrackingHub":
        """Fork the shard workers and start their pump threads (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._started_at = time.perf_counter()
        for shard in range(self.config.num_workers):
            ring = make_ring(
                self.config.transport, self.config.ring_capacity_bytes
            )
            cmd_rx, cmd_tx = self._ctx.Pipe(duplex=False)
            res_rx, res_tx = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=shard_worker_main,
                args=(shard, ring, cmd_rx, res_tx, self.config),
                name=f"tracking-shard-{shard}",
                daemon=True,
            )
            proc.start()
            # The worker inherited its ends over fork; close them here so a
            # worker exit is observable as EOF on the result pipe.
            cmd_rx.close()
            res_tx.close()
            pump = threading.Thread(
                target=self._pump_loop,
                args=(shard, res_rx),
                name=f"tracking-pump-{shard}",
                daemon=True,
            )
            pump.start()
            self._rings.append(ring)
            self._cmd_tx.append(cmd_tx)
            self._res_rx.append(res_rx)
            self._procs.append(proc)
            self._pumps.append(pump)
        if self.config.rebalance is not None:
            self._rebalance_stopping = False
            self._rebalance_wake.clear()
            self._rebalance_thread = threading.Thread(
                target=self._rebalance_loop,
                name="tracking-hub-rebalancer",
                daemon=True,
            )
            self._rebalance_thread.start()
        return self

    def stop(self) -> None:
        """Stop the workers after their rings drain (idempotent)."""
        if not self._started:
            return
        # Retire the rebalancer first so no migration markers are enqueued
        # behind a stop record (the workers would never reach them).
        if self._rebalance_thread is not None:
            self._rebalance_stopping = True
            self._rebalance_wake.set()
            self._rebalance_thread.join(timeout=90.0)
            self._rebalance_thread = None
        for shard in range(self.config.num_workers):
            try:
                with self._ring_locks[shard]:
                    self._rings[shard].put(KIND_STOP, 0, b"", timeout=10.0)
            except (RingFull, OSError):
                try:
                    self._cmd_tx[shard].send(("stop",))
                except OSError:
                    pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        for pump in self._pumps:
            pump.join(timeout=5.0)
        for tx in self._cmd_tx:
            try:
                tx.close()
            except OSError:
                pass
        for ring in self._rings:
            ring.close(unlink=True)
        # Routes hold refs to the (now closed) rings; a restarted hub
        # requires re-registration anyway, so drop them with the rings.
        self._routes.clear()
        self._rings.clear()
        self._cmd_tx.clear()
        self._res_rx.clear()
        self._procs.clear()
        self._pumps.clear()
        self._started = False

    def __enter__(self) -> "ProcessTrackingHub":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- result pump ---------------------------------------------------------------------

    def _pump_loop(self, shard: int, res_rx) -> None:
        """Drain one shard's result pipe: frames → callbacks, replies → waiters."""
        while True:
            try:
                message = res_rx.recv()
            except (EOFError, OSError):
                return
            kind = message[0]
            if kind == "frames":
                _, sensor_id, frames = message
                callback = self._callbacks.get(sensor_id)
                if callback is not None:
                    callback(sensor_id, frames)
            elif kind in ("closed", "metrics", "trace", "migrate_done"):
                self._resolve(message[1], message)
            elif kind == "migrated":
                _, mig_id, envelope, error = message
                with self._map_lock:
                    target = self._pending_migrations.get(mig_id)
                if error is None and target is not None:
                    try:
                        self._cmd_tx[target].send(("envelope", mig_id, envelope))
                    except OSError:
                        error = f"target shard {target} pipe closed"
                if error is not None:
                    # Release the target worker's MIGRATE_IN barrier right
                    # away (it would otherwise sit out its full timeout,
                    # stalling that shard), then resolve the migrate waiter
                    # directly with the failure.
                    if target is not None:
                        try:
                            self._cmd_tx[target].send(("abort", mig_id))
                        except OSError:  # pragma: no cover - defensive
                            pass
                    self._resolve(mig_id, ("migrate_done", mig_id, error))
            elif kind == "stopped":
                return
            elif kind == "fatal":  # pragma: no cover - defensive
                import logging

                logging.getLogger(__name__).error(
                    "shard worker %d died: %s", message[1], message[2]
                )
                return

    def _resolve(self, req_id: int, payload) -> None:
        with self._waiters_lock:
            waiter = self._waiters.pop(req_id, None)
        if waiter is not None:
            waiter.payload = payload
            waiter.done.set()

    def _new_waiter(self) -> "tuple[int, _Waiter]":
        req_id = next(self._next_req)
        waiter = _Waiter()
        with self._waiters_lock:
            self._waiters[req_id] = waiter
        return req_id, waiter

    def _await(self, req_id: int, waiter: _Waiter, timeout: Optional[float], what: str):
        if not waiter.done.wait(timeout):
            with self._waiters_lock:
                self._waiters.pop(req_id, None)
            raise TimeoutError(f"timed out waiting for {what}")
        return waiter.payload

    # -- sensor management ---------------------------------------------------------------

    def register(
        self,
        sensor_id: str,
        config: Optional[EbbiotConfig] = None,
        on_frames: Optional[FramesCallback] = None,
        shard: Optional[int] = None,
    ) -> None:
        """Create the worker-side session for a new sensor.

        Unlike the thread hub this returns ``None`` — the session object
        lives in the worker process and is not reachable from the parent.
        """
        if not self._started:
            raise RuntimeError("hub is not started")
        if shard is not None and not 0 <= shard < self.config.num_workers:
            raise ValueError(
                f"shard must be in [0, {self.config.num_workers}), got {shard}"
            )
        want_frames = on_frames is not None or self.config.collect_frames
        with self._map_lock:
            if sensor_id in self._shard_map:
                raise ValueError(f"sensor {sensor_id!r} is already registered")
            idx = next(self._next_idx)
            assigned = shard if shard is not None else self._hash_shard(sensor_id)
            self._shard_map[sensor_id] = assigned
            self._sensor_idx[sensor_id] = idx
            self._callbacks[sensor_id] = on_frames
            self._routes[sensor_id] = self._make_route(sensor_id, assigned, idx)
        payload = pickle.dumps(
            {
                "sensor_idx": idx,
                "sensor_id": sensor_id,
                "pipeline_config": config,
                "want_frames": want_frames,
            }
        )
        with self._ring_locks[assigned]:
            self._rings[assigned].put(KIND_REGISTER, idx, payload, timeout=30.0)
        tracker = (config or self.config.pipeline_config).tracker
        # merged_telemetry reads _trackers under _map_lock from other
        # threads; publish the entry under the same lock.
        with self._map_lock:
            self._trackers[sensor_id] = tracker
        self.telemetry.sensor(sensor_id).set_tracker(tracker)

    def _make_route(self, sensor_id: str, shard: int, idx: int) -> tuple:
        """Build the submit fast-path tuple for one sensor placement.

        The countdown slot is a one-item list so concurrent submitters may
        decrement it without a lock — the races only jitter *when* the
        approximate queue-depth gauge refreshes.  The first accepted batch
        always publishes a depth.
        """
        return (
            shard,
            idx,
            self.telemetry.sensor(sensor_id),
            self._ring_locks[shard],
            self._rings[shard],
            [1],
        )

    def remove_sensor(self, sensor_id: str) -> None:
        """Forget a sensor so its id can be reused (call after close)."""
        with self._map_lock:
            self._shard_map.pop(sensor_id, None)
            self._sensor_idx.pop(sensor_id, None)
            self._callbacks.pop(sensor_id, None)
            self._routes.pop(sensor_id, None)

    def _hash_shard(self, sensor_id: str) -> int:
        return zlib.crc32(sensor_id.encode("utf-8")) % self.config.num_workers

    def shard_of(self, sensor_id: str) -> int:
        """Current shard of a sensor (hash placement for unknown ids)."""
        with self._map_lock:
            assigned = self._shard_map.get(sensor_id)
        if assigned is not None:
            return assigned
        return self._hash_shard(sensor_id)

    @property
    def num_sensors(self) -> int:
        with self._map_lock:
            return len(self._shard_map)

    # -- ingestion -----------------------------------------------------------------------

    def submit(self, sensor_id: str, events: np.ndarray) -> bool:
        """Enqueue one event batch (``False`` = shed by the drop policy)."""
        return self._submit(
            sensor_id, events, blocking=self.config.backpressure == "block"
        )

    def try_submit(self, sensor_id: str, events: np.ndarray) -> bool:
        """Non-blocking submit; a refusal is not counted as a drop."""
        return self._submit(sensor_id, events, blocking=False, count_refusals=False)

    def _acquire_ring(self, sensor_id: str):
        """Lock the sensor's current shard ring, racing map flips safely.

        A migration flips the shard map while holding both ring locks, so
        re-checking the map after acquiring the ring lock guarantees no
        batch is enqueued on the source ring behind its ``MIGRATE_OUT``
        marker.
        """
        while True:
            with self._map_lock:
                shard = self._shard_map.get(sensor_id)
            if shard is None:
                raise KeyError(f"sensor {sensor_id!r} is not registered")
            lock = self._ring_locks[shard]
            lock.acquire()
            with self._map_lock:
                current = self._shard_map.get(sensor_id)
            if current == shard:
                return shard, lock
            lock.release()
            if current is None:
                raise KeyError(f"sensor {sensor_id!r} is not registered")

    def _submit(
        self,
        sensor_id: str,
        events: np.ndarray,
        blocking: bool,
        count_refusals: bool = True,
    ) -> bool:
        if not self._started:
            raise RuntimeError("hub is not started")
        events = normalize_packet(events)
        payload = events.tobytes()
        # Route fast path: one dict read instead of two map-lock cycles
        # plus a telemetry lookup.  A migration replaces the route tuple
        # while holding both ring locks, so re-checking identity after
        # acquiring the ring lock gives the same no-enqueue-behind-
        # MIGRATE_OUT guarantee the map double-check did.
        route = self._routes.get(sensor_id)
        while True:
            if route is None:
                raise KeyError(f"sensor {sensor_id!r} is not registered")
            _, idx, record, lock, ring, countdown = route
            lock.acquire()
            current = self._routes.get(sensor_id)
            if current is route:
                break
            lock.release()
            route = current
        try:
            if blocking:
                ring.put(KIND_EVENTS, idx, payload, timeout=None)
            elif not ring.try_put(KIND_EVENTS, idx, payload):
                if count_refusals:
                    record.record_drop(len(events))
                return False
        finally:
            lock.release()
        record.record_batch(len(events))
        countdown[0] -= 1
        if countdown[0] <= 0:
            countdown[0] = _DEPTH_GAUGE_STRIDE
            record.set_queue_depth(ring.depth())
        if self.config.rebalance is not None:
            self._submits_until_rebalance -= 1
            if self._submits_until_rebalance <= 0:
                self._submits_until_rebalance = self.config.rebalance_check_every
                # Signal the rebalancer thread rather than evaluating here:
                # a migration blocks on the worker hand-off, and submit may
                # run on threads that must not stall (the asyncio front
                # door's event loop).
                self._rebalance_wake.set()
        return True

    def close_sensor(
        self, sensor_id: str, timeout: Optional[float] = None
    ) -> RecordingResult:
        """Flush a sensor in ring order and return its summary.

        The close marker queues *behind* every batch submitted before this
        call; the worker flushes them, finishes the session, ships any
        remaining frames, and replies with the
        :class:`~repro.runtime.aggregate.RecordingResult`.
        """
        if not self._started:
            raise RuntimeError("hub is not started")
        req_id, waiter = self._new_waiter()
        shard, lock = self._acquire_ring(sensor_id)
        try:
            idx = self._sensor_idx[sensor_id]
            self._rings[shard].put(
                KIND_CLOSE, idx, pickle.dumps((req_id,)), timeout=timeout
            )
        finally:
            lock.release()
        message = self._await(req_id, waiter, timeout, f"close of {sensor_id!r}")
        _, _, summary, already_finished, error = message
        if error is not None:
            raise RuntimeError(f"closing sensor {sensor_id!r} failed: {error}")
        if not already_finished:
            with self._closed_lock:
                self._closed_results.append(summary)
        return summary

    # -- migration / rebalance -----------------------------------------------------------

    def migrate_sensor(
        self, sensor_id: str, target_shard: int, timeout: Optional[float] = 60.0
    ) -> bool:
        """Move a live sensor to another shard (drain → snapshot → restore).

        Same ordering guarantees as the thread hub: both ring locks are
        held while the markers are enqueued and the map flips, so every
        batch either precedes ``MIGRATE_OUT`` on the source ring or
        follows ``MIGRATE_IN`` on the target ring.  Returns ``False`` when
        the sensor is already on ``target_shard``.
        """
        if not self._started:
            raise RuntimeError("hub is not started")
        if not 0 <= target_shard < self.config.num_workers:
            raise ValueError(
                f"target_shard must be in [0, {self.config.num_workers}), "
                f"got {target_shard}"
            )
        while True:
            with self._map_lock:
                source = self._shard_map.get(sensor_id)
                idx = self._sensor_idx.get(sensor_id)
            if source is None:
                raise KeyError(f"sensor {sensor_id!r} is not registered")
            if source == target_shard:
                return False
            first, second = sorted((source, target_shard))
            with self._ring_locks[first], self._ring_locks[second]:
                with self._map_lock:
                    if self._shard_map.get(sensor_id) != source:
                        continue  # lost a race with another migration; retry
                    mig_id, waiter = self._new_waiter()
                    self._pending_migrations[mig_id] = target_shard
                    want_frames = (
                        self._callbacks.get(sensor_id) is not None
                        or self.config.collect_frames
                    )
                    self._shard_map[sensor_id] = target_shard
                    self._routes[sensor_id] = self._make_route(
                        sensor_id, target_shard, idx
                    )
                try:
                    self._rings[source].put(
                        KIND_MIGRATE_OUT, idx, pickle.dumps((mig_id,)), timeout=timeout
                    )
                    self._rings[target_shard].put(
                        KIND_MIGRATE_IN,
                        idx,
                        pickle.dumps((mig_id, sensor_id, want_frames)),
                        timeout=timeout,
                    )
                except RingFull:
                    with self._map_lock:
                        self._shard_map[sensor_id] = source
                        self._routes[sensor_id] = self._make_route(
                            sensor_id, source, idx
                        )
                        self._pending_migrations.pop(mig_id, None)
                    raise
            break
        try:
            message = self._await(
                mig_id, waiter, timeout, f"migration of {sensor_id!r}"
            )
        finally:
            with self._map_lock:
                self._pending_migrations.pop(mig_id, None)
        error = message[2]
        if error is not None:
            raise RuntimeError(f"migrating sensor {sensor_id!r} failed: {error}")
        with self._map_lock:
            self._migrations += 1
        return True

    def shard_stats(self) -> List[ShardStats]:
        """Per-shard load: sensor count, ring depth, worker busy fraction."""
        uptime = time.perf_counter() - self._started_at if self._started_at else 0.0
        with self._map_lock:
            per_shard = [0] * self.config.num_workers
            for shard in self._shard_map.values():
                per_shard[shard] += 1
        return [
            ShardStats(
                shard=shard,
                num_sensors=per_shard[shard],
                queue_depth=self._rings[shard].depth() if self._started else 0,
                busy_fraction=(
                    min(1.0, self._rings[shard].busy_seconds() / uptime)
                    if self._started and uptime > 0
                    else 0.0
                ),
            )
            for shard in range(self.config.num_workers)
        ]

    def sensor_shards(self) -> Dict[str, int]:
        with self._map_lock:
            return dict(self._shard_map)

    @property
    def migrations_performed(self) -> int:
        return self._migrations

    def _rebalance_loop(self) -> None:
        """Dedicated rebalancer thread: evaluates off the submit path.

        Same contract as the thread hub's: submits only set an Event, so
        the migration hand-off wait is paid here, never by a submitter.
        """
        while True:
            self._rebalance_wake.wait()
            self._rebalance_wake.clear()
            if self._rebalance_stopping:
                return
            try:
                self.maybe_rebalance()
            except Exception:  # pragma: no cover - defensive
                import logging

                logging.getLogger(__name__).exception("rebalance pass failed")

    def maybe_rebalance(self) -> List[Move]:
        """Apply the configured rebalance policy once; returns moves made."""
        policy = self.config.rebalance
        if policy is None:
            return []
        if not self._rebalance_lock.acquire(blocking=False):
            return []
        try:
            moves = plan_rebalance(self.shard_stats(), self.sensor_shards(), policy)
            performed = []
            for move in moves:
                try:
                    if self.migrate_sensor(move.sensor_id, move.target):
                        performed.append(move)
                except KeyError:
                    continue
            return performed
        finally:
            self._rebalance_lock.release()

    # -- results -------------------------------------------------------------------------

    def batch_result(self) -> BatchResult:
        """Fleet summary over all sensors closed so far."""
        wall = time.perf_counter() - self._started_at if self._started_at else 0.0
        with self._closed_lock:
            results = sorted(self._closed_results, key=lambda r: r.name)
        return BatchResult(recordings=results, wall_time_s=wall)

    # -- observability -------------------------------------------------------------------

    def _collect(self, command: str, timeout: float = 10.0) -> List[object]:
        """One request/response round trip with every live shard worker."""
        pending = []
        for shard in range(self.config.num_workers):
            req_id, waiter = self._new_waiter()
            try:
                self._cmd_tx[shard].send((command, req_id))
            except OSError:
                continue
            pending.append((req_id, waiter, shard))
        replies = []
        for req_id, waiter, shard in pending:
            try:
                message = self._await(
                    req_id, waiter, timeout, f"{command} from shard {shard}"
                )
            except TimeoutError:
                continue
            replies.append((shard, message[2]))
        return replies

    def merged_metrics(self) -> MetricsRegistry:
        """Parent + all worker registries merged into one fresh registry.

        Counters add, gauges take the last writer, histogram buckets and
        windows concatenate — the exposition equals what one shared
        registry would have recorded.
        """
        merged = MetricsRegistry()
        merged.merge_state(self.telemetry.metrics.state_dict())
        if self._started:
            for _, state in self._collect("metrics"):
                if state is not None:
                    merged.merge_state(state)
        return merged

    def merged_telemetry(self) -> TelemetryRegistry:
        """A telemetry view over the merged registry (for ``to_dict``)."""
        registry = TelemetryRegistry(metrics=self.merged_metrics())
        with self._map_lock:
            trackers = dict(self._trackers)
        for sensor_id, tracker in trackers.items():
            registry.sensor(sensor_id).set_tracker(tracker)
        return registry

    def telemetry_dict(self) -> dict:
        """JSON telemetry snapshot over the merged registries."""
        return self.merged_telemetry().to_dict()

    def metrics_text(self) -> str:
        """Prometheus exposition of the merged parent + worker registries."""
        merged = self.merged_metrics()
        if self._started:
            registry = TelemetryRegistry(metrics=merged)
            registry.set_shard_stats(self.shard_stats())
        return merged.to_prometheus_text()

    def chrome_trace(self) -> Optional[dict]:
        """Merged Chrome trace of all shard workers (``None`` uninstrumented)."""
        if not self.config.instrument or not self._started:
            return None
        from repro.obs.trace import merge_chrome_traces

        tracks = [
            (f"tracking-shard-{shard}", events)
            for shard, events in self._collect("trace")
            if events is not None
        ]
        return merge_chrome_traces(tracks)
