"""Live multi-sensor serving layer.

Where :mod:`repro.runtime` replays *complete* recordings, this package is
the deployment mode the paper assumes: stationary sensors streaming events
into IoVT infrastructure, tracked online.

* :mod:`repro.serving.framer` — :class:`OnlineFramer` closes 66 ms EBBI
  windows from a live batch feed, tolerating bounded out-of-order arrival.
* :mod:`repro.serving.session` — :class:`SensorSession` wraps one
  incremental :class:`~repro.core.pipeline.EbbiotPipeline` per sensor with
  running statistics and snapshot/restore.
* :mod:`repro.serving.hub` — :class:`TrackingHub` shards sessions across
  worker threads with bounded queues and explicit backpressure.
* :mod:`repro.serving.process_hub` — :class:`ProcessTrackingHub`, the
  same scheduling surface with one worker *process* per shard, sidestepping
  the GIL for CPU-bound fleets.
* :mod:`repro.serving.transport` — the shared-memory event ring
  (:class:`ShmRing`) feeding those workers, with a :class:`PipeRing`
  fallback selected by :func:`make_ring`.
* :mod:`repro.serving.rebalance` — :func:`plan_rebalance` turns per-shard
  load stats into session migrations, executed live by either hub's
  ``migrate_sensor`` using the session snapshot/restore envelopes.
* :mod:`repro.serving.telemetry` — per-sensor event rates, frame latency
  percentiles, queue depth, per-shard load gauges and drop counts,
  exportable as JSON or Prometheus text exposition (built on
  :mod:`repro.obs`).
* :mod:`repro.serving.protocol` / ``server`` / ``client`` — a JSONL
  line-protocol TCP transport; :mod:`repro.serving.aioserver` is the
  asyncio front door speaking the identical wire protocol.
* ``python -m repro.serving`` — live demo / standalone server across the
  hub x front-door matrix; ``python -m repro.serving.loadgen`` replays
  fleets at N x speed and reports throughput, tail latency and SLO
  verdicts.
"""

from repro.serving.aioserver import AsyncTrackingServer
from repro.serving.client import (
    SensorClient,
    fetch_trace,
    scrape_metrics,
    stream_recording,
)
from repro.serving.framer import ClosedWindow, OnlineFramer
from repro.serving.hub import BACKPRESSURE_POLICIES, HubConfig, TrackingHub
from repro.serving.process_hub import ProcessTrackingHub
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    metrics_message,
    trace_message,
)
from repro.serving.rebalance import (
    Move,
    RebalancePolicy,
    ShardStats,
    plan_rebalance,
)
from repro.serving.server import TrackingServer
from repro.serving.session import SensorSession, SessionSnapshot
from repro.serving.telemetry import LatencyWindow, SensorTelemetry, TelemetryRegistry
from repro.serving.transport import PipeRing, RingFull, ShmRing, make_ring

#: Loadgen names are resolved lazily so ``python -m repro.serving.loadgen``
#: does not import the module twice (runpy would warn about the package
#: __init__ having already pulled it into ``sys.modules``).
_LOADGEN_EXPORTS = frozenset(
    {
        "HUB_KINDS",
        "make_hub",
        "split_batches",
        "build_workload",
        "run_load",
        "check_slos",
    }
)


def __getattr__(name):
    if name in _LOADGEN_EXPORTS:
        from repro.serving import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "OnlineFramer",
    "ClosedWindow",
    "SensorSession",
    "SessionSnapshot",
    "TrackingHub",
    "ProcessTrackingHub",
    "HubConfig",
    "BACKPRESSURE_POLICIES",
    "HUB_KINDS",
    "make_hub",
    "split_batches",
    "build_workload",
    "run_load",
    "check_slos",
    "ShmRing",
    "PipeRing",
    "RingFull",
    "make_ring",
    "RebalancePolicy",
    "ShardStats",
    "Move",
    "plan_rebalance",
    "TelemetryRegistry",
    "SensorTelemetry",
    "LatencyWindow",
    "TrackingServer",
    "AsyncTrackingServer",
    "SensorClient",
    "stream_recording",
    "scrape_metrics",
    "fetch_trace",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "metrics_message",
    "trace_message",
]
