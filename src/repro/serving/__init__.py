"""Live multi-sensor serving layer.

Where :mod:`repro.runtime` replays *complete* recordings, this package is
the deployment mode the paper assumes: stationary sensors streaming events
into IoVT infrastructure, tracked online.

* :mod:`repro.serving.framer` — :class:`OnlineFramer` closes 66 ms EBBI
  windows from a live batch feed, tolerating bounded out-of-order arrival.
* :mod:`repro.serving.session` — :class:`SensorSession` wraps one
  incremental :class:`~repro.core.pipeline.EbbiotPipeline` per sensor with
  running statistics and snapshot/restore.
* :mod:`repro.serving.hub` — :class:`TrackingHub` shards sessions across
  worker threads with bounded queues and explicit backpressure.
* :mod:`repro.serving.telemetry` — per-sensor event rates, frame latency
  percentiles, queue depth and drop counts, exportable as JSON or
  Prometheus text exposition (built on :mod:`repro.obs`).
* :mod:`repro.serving.protocol` / ``server`` / ``client`` — a JSONL
  line-protocol TCP transport.
* ``python -m repro.serving`` — live demo (in-process server + N synthetic
  sensors) and a standalone server mode, mirroring ``python -m
  repro.runtime`` for batch.
"""

from repro.serving.client import (
    SensorClient,
    fetch_trace,
    scrape_metrics,
    stream_recording,
)
from repro.serving.framer import ClosedWindow, OnlineFramer
from repro.serving.hub import BACKPRESSURE_POLICIES, HubConfig, TrackingHub
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    metrics_message,
    trace_message,
)
from repro.serving.server import TrackingServer
from repro.serving.session import SensorSession, SessionSnapshot
from repro.serving.telemetry import LatencyWindow, SensorTelemetry, TelemetryRegistry

__all__ = [
    "OnlineFramer",
    "ClosedWindow",
    "SensorSession",
    "SessionSnapshot",
    "TrackingHub",
    "HubConfig",
    "BACKPRESSURE_POLICIES",
    "TelemetryRegistry",
    "SensorTelemetry",
    "LatencyWindow",
    "TrackingServer",
    "SensorClient",
    "stream_recording",
    "scrape_metrics",
    "fetch_trace",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "metrics_message",
    "trace_message",
]
