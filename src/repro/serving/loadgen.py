"""Fleet-scale load generator: ``python -m repro.serving.loadgen``.

Replays synthetic or recorded datasets against a tracking hub — thread or
process flavour — with one feeder thread per sensor, paced at an ``--speed``
multiple of sensor time (0 = as fast as possible), and reports the numbers
a capacity plan needs:

* **aggregate throughput** — events/s and frames/s over the whole fleet;
* **latency percentiles** — p50/p95/p99 of the hubs' own
  enqueue-to-frame-completion histograms, pooled across every sensor;
* **drop accounting** — batches shed under the ``"drop"`` backpressure
  policy, cross-checked against hub telemetry (the generator's own
  accepted/refused tally must equal what the hub counted — the invariant
  the CI smoke job gates on);
* **SLO verdicts** — optional ``--slo-*`` thresholds turn the report into
  an exit code, so the load test doubles as a regression gate.

The generator drives the hub in process rather than through TCP: the JSONL
codec costs more than the pipeline at fleet scale and would measure the
wire format, not the serving architecture.  (For a TCP soak, point the
``python -m repro.serving`` demo at ``--serve``.)

Examples
--------
32 synthetic sensors (8 distinct scenes), process hub, full speed::

    PYTHONPATH=src python -m repro.serving.loadgen --hub process \\
        --sensors 32 --scenes 8 --duration 2 --batch-us 2000

Recorded dataset at 4x sensor speed with SLOs::

    PYTHONPATH=src python -m repro.serving.loadgen --dataset dataset/ \\
        --sensors 16 --speed 4 --slo-p99-ms 250 --slo-min-fps 100
"""

from __future__ import annotations

import argparse
import json
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import EbbiotConfig
from repro.obs import add_log_level_argument, logging_setup
from repro.serving.hub import BACKPRESSURE_POLICIES, HubConfig, TrackingHub
from repro.serving.process_hub import ProcessTrackingHub
from repro.trackers.registry import available_backends, ensure_backend_name

logger = logging.getLogger("repro.serving.loadgen")

#: Hub flavours selectable with ``--hub``.
HUB_KINDS = ("thread", "process")


def make_hub(kind: str, config: HubConfig):
    """Build a hub of the requested flavour (shared with the CLI demo)."""
    if kind == "thread":
        return TrackingHub(config)
    if kind == "process":
        return ProcessTrackingHub(config)
    raise ValueError(f"hub must be one of {HUB_KINDS}, got {kind!r}")


def split_batches(
    events: np.ndarray, batch_us: int
) -> List[Tuple[int, np.ndarray]]:
    """Slice a recording into ``(t_start_us, batch)`` pairs of ``batch_us`` span.

    Mirrors how an event camera packetises its stream: fixed time spans,
    variable event counts.  Slices view the source array (no copies).
    """
    if len(events) == 0:
        return []
    ts = np.ascontiguousarray(events["t"])
    edges = np.arange(int(ts[0]), int(ts[-1]) + batch_us, batch_us, dtype=np.int64)
    bounds = list(np.searchsorted(ts, edges)) + [len(events)]
    out = []
    for start_us, a, b in zip(edges, bounds[:-1], bounds[1:]):
        if b > a:
            out.append((int(start_us), events[a:b]))
    return out


def build_workload(args: argparse.Namespace) -> List[Tuple[str, List[Tuple[int, np.ndarray]]]]:
    """The fleet's ``(sensor_id, batches)`` list from the selected source.

    Distinct recordings (``--scenes`` rendered scenes, or the dataset's
    entries) are cycled across ``--sensors`` sensors, so fleet size scales
    independently of how much unique footage exists.
    """
    if args.dataset is not None:
        from repro.datasets.recorded import DatasetManifest

        manifest = DatasetManifest.load(args.dataset)
        sources = [
            (loaded.name, loaded.stream.events)
            for loaded in (
                manifest.load_entry(entry) for entry in manifest.recordings
            )
        ]
    else:
        from repro.runtime.scenes import build_scene_recordings

        num_scenes = args.scenes or min(args.sensors, 4)
        recordings = build_scene_recordings(
            num_scenes, duration_s=args.duration, base_seed=args.seed
        )
        sources = [(rec.name, rec.stream.events) for rec in recordings]
    if not sources:
        raise ValueError("the workload source produced no recordings")
    workload = []
    for index in range(args.sensors):
        name, events = sources[index % len(sources)]
        workload.append(
            (f"{name}#{index:03d}", split_batches(events, args.batch_us))
        )
    return workload


def _replay_sensor(hub, sensor_id, batches, speed: float) -> Tuple[int, int]:
    """Feed one sensor's batches, pacing to ``speed``x sensor time.

    Returns ``(accepted, refused)`` as counted from :meth:`hub.submit`'s
    return value — the generator-side half of the drop invariant.
    """
    accepted = refused = 0
    if not batches:
        return 0, 0
    wall_start = time.perf_counter()
    t_origin_us = batches[0][0]
    for t_start_us, batch in batches:
        if speed > 0:
            target = wall_start + (t_start_us - t_origin_us) * 1e-6 / speed
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
        if hub.submit(sensor_id, batch):
            accepted += 1
        else:
            refused += 1
    return accepted, refused


def _pooled_latency_ms(metrics_state: dict) -> Dict[str, float]:
    """Fleet latency percentiles pooled over every sensor's histogram window."""
    samples: List[float] = []
    for family in metrics_state["families"]:
        if family["name"] != "repro_sensor_frame_latency_seconds":
            continue
        for child in family["children"]:
            samples.extend(child.get("window", ()))
    if not samples:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "count": int(arr.size),
        "mean_ms": float(arr.mean()),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
    }


def run_load(hub, workload, speed: float = 0.0, close_timeout: float = 120.0) -> dict:
    """Drive one started hub with the workload; returns the full report.

    The hub must be started and empty; the caller owns its lifecycle (the
    CLI builds and stops it, the bench suite reuses this entry point).
    """
    for sensor_id, _ in workload:
        hub.register(sensor_id)
    total_submitted = sum(len(batches) for _, batches in workload)
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max(1, len(workload))) as pool:
        futures = [
            pool.submit(_replay_sensor, hub, sensor_id, batches, speed)
            for sensor_id, batches in workload
        ]
        tallies = [future.result() for future in futures]
    for sensor_id, _ in workload:
        hub.close_sensor(sensor_id, timeout=close_timeout)
    wall_s = time.perf_counter() - started

    accepted = sum(a for a, _ in tallies)
    refused = sum(r for _, r in tallies)
    telemetry = hub.telemetry_dict()
    totals = telemetry["totals"]
    latency = _pooled_latency_ms(hub.merged_metrics().state_dict())
    events_in = totals["events_received"]
    frames_out = totals["frames_emitted"]
    drop_invariant = {
        "submitted": total_submitted,
        "accepted": accepted,
        "refused": refused,
        "hub_batches_received": sum(
            s["batches_received"] for s in telemetry["sensors"].values()
        ),
        "hub_dropped_batches": totals["dropped_batches"],
    }
    drop_invariant["ok"] = (
        accepted + refused == total_submitted
        and drop_invariant["hub_batches_received"] == accepted
        and drop_invariant["hub_dropped_batches"] == refused
    )
    return {
        "num_sensors": len(workload),
        "wall_s": wall_s,
        "aggregate": {
            "events_in": events_in,
            "batches_in": accepted,
            "frames_out": frames_out,
            "track_observations": totals["track_observations"],
            "late_events": totals["late_events"],
            "events_per_s": events_in / wall_s if wall_s > 0 else 0.0,
            "frames_per_s": frames_out / wall_s if wall_s > 0 else 0.0,
            "latency_ms": latency,
        },
        "drop_invariant": drop_invariant,
        "shards": [
            {
                "shard": stat.shard,
                "num_sensors": stat.num_sensors,
                "queue_depth": stat.queue_depth,
                "busy_fraction": stat.busy_fraction,
            }
            for stat in hub.shard_stats()
        ],
        "migrations": hub.migrations_performed,
    }


def check_slos(report: dict, args: argparse.Namespace) -> List[str]:
    """Evaluate the ``--slo-*`` thresholds; returns violation messages."""
    aggregate = report["aggregate"]
    violations = []
    if args.slo_p99_ms is not None:
        p99 = aggregate["latency_ms"]["p99_ms"]
        if p99 > args.slo_p99_ms:
            violations.append(
                f"p99 latency {p99:.1f} ms exceeds SLO {args.slo_p99_ms:.1f} ms"
            )
    if args.slo_min_fps is not None:
        fps = aggregate["frames_per_s"]
        if fps < args.slo_min_fps:
            violations.append(
                f"aggregate {fps:.1f} fps below SLO {args.slo_min_fps:.1f} fps"
            )
    if args.slo_max_drop_fraction is not None:
        drop = report["drop_invariant"]
        submitted = max(1, drop["submitted"])
        fraction = drop["refused"] / submitted
        if fraction > args.slo_max_drop_fraction:
            violations.append(
                f"drop fraction {fraction:.3f} exceeds SLO "
                f"{args.slo_max_drop_fraction:.3f}"
            )
    if not report["drop_invariant"]["ok"]:
        violations.append(
            f"drop-counter invariant violated: {report['drop_invariant']}"
        )
    return violations


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.loadgen",
        description=(
            "Replay synthetic or recorded sensor fleets against a tracking "
            "hub and report throughput, latency percentiles and SLO verdicts."
        ),
    )
    parser.add_argument(
        "--hub", choices=HUB_KINDS, default="process",
        help="hub flavour under load (default: process)",
    )
    parser.add_argument(
        "--sensors", type=int, default=16, help="fleet size (feeder threads)"
    )
    parser.add_argument(
        "--scenes", type=int, default=None,
        help="distinct synthetic scenes to cycle across the fleet "
             "(default: min(sensors, 4))",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0,
        help="length of each synthetic recording in seconds",
    )
    parser.add_argument("--seed", type=int, default=0, help="synthetic base seed")
    parser.add_argument(
        "--dataset", metavar="DIR", default=None,
        help="replay a recorded manifest-backed dataset instead of synthesis",
    )
    parser.add_argument(
        "--batch-us", type=int, default=2_000,
        help="stream-time span of each submitted batch in microseconds",
    )
    parser.add_argument(
        "--speed", type=float, default=0.0, metavar="FACTOR",
        help="pace replay at FACTOR x sensor time (0 = as fast as possible)",
    )
    parser.add_argument("--workers", type=int, default=4, help="hub worker shards")
    parser.add_argument(
        "--queue-capacity", type=int, default=64,
        help="batches buffered per shard (thread hub)",
    )
    parser.add_argument(
        "--ring-kib", type=int, default=1024,
        help="shared-memory ring capacity per shard in KiB (process hub)",
    )
    parser.add_argument(
        "--transport", choices=("shm", "pipe", "auto"), default="auto",
        help="process-hub event transport",
    )
    parser.add_argument(
        "--backpressure", choices=BACKPRESSURE_POLICIES, default="block",
        help="what to do when a shard queue fills",
    )
    parser.add_argument(
        "--tracker", default="overlap",
        help=f"tracker backend; one of {', '.join(available_backends())}",
    )
    parser.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="fail (exit 1) if pooled p99 frame latency exceeds MS",
    )
    parser.add_argument(
        "--slo-min-fps", type=float, default=None, metavar="FPS",
        help="fail (exit 1) if aggregate frames/s falls below FPS",
    )
    parser.add_argument(
        "--slo-max-drop-fraction", type=float, default=None, metavar="FRAC",
        help="fail (exit 1) if more than FRAC of batches are shed",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full report as JSON ('-' for stdout)",
    )
    add_log_level_argument(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging_setup(args.log_level)
    if args.sensors <= 0 or args.duration <= 0 or args.batch_us <= 0:
        logger.error("error: --sensors, --duration and --batch-us must be positive")
        return 2
    if args.speed < 0:
        logger.error("error: --speed must be >= 0")
        return 2
    if args.scenes is not None and args.scenes <= 0:
        logger.error("error: --scenes must be positive")
        return 2
    try:
        ensure_backend_name(args.tracker)
        config = HubConfig(
            num_workers=args.workers,
            queue_capacity=args.queue_capacity,
            backpressure=args.backpressure,
            pipeline_config=EbbiotConfig(tracker=args.tracker),
            transport=args.transport,
            ring_capacity_bytes=args.ring_kib * 1024,
        )
        workload = build_workload(args)
    except (FileNotFoundError, ValueError) as error:
        logger.error("error: %s", error)
        return 2

    total_batches = sum(len(b) for _, b in workload)
    total_events = sum(len(e) for _, bs in workload for _, e in bs)
    pace = f"{args.speed:g}x sensor time" if args.speed > 0 else "full speed"
    print(
        f"loadgen: {len(workload)} sensor(s), {total_events} events in "
        f"{total_batches} batches of {args.batch_us} us, {args.hub} hub "
        f"({args.workers} shards, {args.backpressure}), {pace}",
        flush=True,
    )
    hub = make_hub(args.hub, config)
    with hub:
        report = run_load(hub, workload, speed=args.speed)
    report["config"] = {
        "hub": args.hub,
        "workers": args.workers,
        "backpressure": args.backpressure,
        "batch_us": args.batch_us,
        "speed": args.speed,
        "transport": args.transport,
        "source": args.dataset or f"synthetic(scenes={args.scenes}, "
        f"duration={args.duration}, seed={args.seed})",
    }
    violations = check_slos(report, args)
    report["slo"] = {"violations": violations, "ok": not violations}

    aggregate = report["aggregate"]
    latency = aggregate["latency_ms"]
    print(
        f"done in {report['wall_s']:.2f} s: "
        f"{aggregate['events_per_s']:,.0f} events/s, "
        f"{aggregate['frames_per_s']:.1f} frames/s aggregate"
    )
    print(
        f"frame latency: p50 {latency['p50_ms']:.2f} ms, "
        f"p95 {latency['p95_ms']:.2f} ms, p99 {latency['p99_ms']:.2f} ms "
        f"({latency['count']} samples)"
    )
    drop = report["drop_invariant"]
    print(
        f"drops: {drop['refused']} of {drop['submitted']} batches shed "
        f"(invariant {'ok' if drop['ok'] else 'VIOLATED'})"
    )
    if args.json is not None:
        payload = json.dumps(report, indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote report to {args.json}")
    for violation in violations:
        logger.error("SLO violation: %s", violation)
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
