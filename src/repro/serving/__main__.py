"""Command-line entry point: ``python -m repro.serving``.

Two modes:

* **demo** (default) — start an in-process tracking server, render N
  synthetic sensors, stream them concurrently over real TCP connections,
  and print the per-sensor table plus fleet statistics (the live mirror of
  ``python -m repro.runtime``).
* **--serve** — run a standalone server until interrupted; remote sensor
  clients connect with :class:`repro.serving.client.SensorClient`.

Both modes pick the serving architecture with two axes: ``--hub``
selects thread-sharded sessions (in-process, GIL-bound) or the
process-per-shard hub (shared-memory transport, true parallelism), and
``--front-door`` selects the asyncio connection handler (default; one
coroutine per sensor) or the legacy thread-per-connection acceptor.  The
wire protocol is identical on every combination.

Examples
--------
Live demo, eight synthetic sensors of two seconds each::

    PYTHONPATH=src python -m repro.serving --sensors 8 --duration 2

Standalone process-hub server on a fixed port::

    PYTHONPATH=src python -m repro.serving --serve --port 7700 --hub process

Replay a recorded manifest-backed dataset from disk as the demo's sensors,
paced at twice sensor speed::

    PYTHONPATH=src python -m repro.serving --dataset dataset/ --speed 2

Profile a demo fleet: per-stage cost into the telemetry metrics and a
Perfetto-loadable Chrome trace::

    PYTHONPATH=src python -m repro.serving --sensors 2 --trace trace.json \\
        --metrics metrics.prom
"""

from __future__ import annotations

import argparse
import json
import logging
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional

from repro.core.config import EbbiotConfig
from repro.obs import add_log_level_argument, logging_setup
from repro.runtime.scenes import build_scene_recordings
from repro.serving.aioserver import AsyncTrackingServer
from repro.serving.client import stream_recording
from repro.serving.hub import BACKPRESSURE_POLICIES, HubConfig
from repro.serving.loadgen import HUB_KINDS, make_hub
from repro.serving.server import TrackingServer
from repro.trackers.registry import available_backends, parse_backend_list

logger = logging.getLogger("repro.serving")

#: ``--front-door`` choices: connection-handling architectures.
FRONT_DOORS = ("asyncio", "threaded")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (separate so tests can introspect it)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description=(
            "Serve the EBBIOT pipeline to live sensors over TCP "
            "(JSONL line protocol), or run a synthetic multi-sensor demo."
        ),
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run a standalone server until interrupted (no demo sensors)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks an ephemeral port)"
    )
    parser.add_argument(
        "--sensors", type=int, default=8, help="demo: number of synthetic sensors"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=2.0,
        help="demo: length of each synthetic recording in seconds",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="demo: base seed for the synthetic scenes"
    )
    parser.add_argument(
        "--batch-us",
        type=int,
        default=16_500,
        help="demo: stream-time span of each client batch in microseconds",
    )
    parser.add_argument(
        "--realtime",
        action="store_true",
        help="demo: throttle clients to sensor real time",
    )
    parser.add_argument(
        "--speed",
        type=float,
        default=None,
        metavar="FACTOR",
        help=(
            "demo: paced replay speed factor (1.0 = sensor real time, "
            "2.0 = twice as fast; overrides --realtime)"
        ),
    )
    parser.add_argument(
        "--dataset",
        metavar="DIR",
        default=None,
        help=(
            "demo: replay recordings from a recorded manifest-backed dataset "
            "instead of rendering synthetic scenes (--sensors caps how many; "
            "--duration/--seed are ignored)"
        ),
    )
    parser.add_argument(
        "--hub",
        choices=HUB_KINDS,
        default="thread",
        help="shard sessions across worker threads or worker processes",
    )
    parser.add_argument(
        "--front-door",
        choices=FRONT_DOORS,
        default="asyncio",
        help="connection handling: one coroutine per sensor on a shared "
        "event loop (default), or the legacy thread-per-connection acceptor",
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="hub worker shards"
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=64, help="batches buffered per shard"
    )
    parser.add_argument(
        "--transport",
        choices=("shm", "pipe", "auto"),
        default="auto",
        help="process-hub event transport (shared-memory ring or pipes)",
    )
    parser.add_argument(
        "--ring-kib",
        type=int,
        default=1024,
        help="shared-memory ring capacity per shard in KiB (process hub)",
    )
    parser.add_argument(
        "--backpressure",
        choices=BACKPRESSURE_POLICIES,
        default="block",
        help="what to do when a shard queue fills",
    )
    parser.add_argument(
        "--slack-us",
        type=int,
        default=5_000,
        help="out-of-order arrival tolerance in microseconds",
    )
    parser.add_argument(
        "--tracker",
        default="overlap",
        metavar="NAME[,NAME...]",
        help=(
            "tracker backend(s); one of "
            f"{', '.join(available_backends())}.  The first name is the "
            "server default; in demo mode a comma-separated list is cycled "
            "across the synthetic sensors via the hello handshake"
        ),
    )
    parser.add_argument(
        "--json",
        "--output",
        dest="json",
        metavar="PATH",
        default=None,
        help="demo: also write fleet results as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--telemetry-json",
        metavar="PATH",
        default=None,
        help="demo: write the telemetry registry snapshot as JSON",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "demo: write the hub's Prometheus text exposition after the run "
            "('-' for stdout); implies --instrument"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "demo: write a Chrome trace-event JSON of per-stage pipeline "
            "spans (load in Perfetto / chrome://tracing); implies --instrument"
        ),
    )
    parser.add_argument(
        "--instrument",
        action="store_true",
        help="record per-stage timing into the hub's metrics and trace",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="record trace spans for every Nth frame window (default: every)",
    )
    add_log_level_argument(parser)
    return parser


def _trackers(args: argparse.Namespace) -> List[str]:
    """The validated backend list from ``--tracker`` (first = server default)."""
    return parse_backend_list(args.tracker)


def _instrumented(args: argparse.Namespace) -> bool:
    return args.instrument or args.metrics is not None or args.trace is not None


def _hub_config(args: argparse.Namespace) -> HubConfig:
    return HubConfig(
        num_workers=args.workers,
        queue_capacity=args.queue_capacity,
        backpressure=args.backpressure,
        reorder_slack_us=args.slack_us,
        pipeline_config=EbbiotConfig(tracker=_trackers(args)[0]),
        instrument=_instrumented(args),
        trace_sample_every=args.trace_sample,
        transport=args.transport,
        ring_capacity_bytes=args.ring_kib * 1024,
    )


def _make_server(args: argparse.Namespace):
    """A started-ready server from the ``--hub`` x ``--front-door`` matrix."""
    hub = make_hub(args.hub, _hub_config(args))
    server_cls = (
        AsyncTrackingServer if args.front_door == "asyncio" else TrackingServer
    )
    return server_cls(args.host, args.port, hub=hub)


def _demo_recordings(args: argparse.Namespace) -> List[tuple]:
    """The demo's ``(name, stream)`` pairs: rendered, or replayed from disk."""
    if args.dataset is not None:
        from repro.datasets.recorded import DatasetManifest

        manifest = DatasetManifest.load(args.dataset)
        loaded = [
            manifest.load_entry(entry)
            for entry in manifest.recordings[: args.sensors]
        ]
        print(
            f"loaded {len(loaded)} of {len(manifest)} recording(s) from "
            f"{args.dataset}"
        )
        return [(recording.name, recording.stream) for recording in loaded]
    print(
        f"rendering {args.sensors} synthetic sensor(s) of {args.duration:.1f} s each ...",
        flush=True,
    )
    rendered = build_scene_recordings(
        args.sensors, duration_s=args.duration, base_seed=args.seed
    )
    return [(recording.name, recording.stream) for recording in rendered]


def run_demo(args: argparse.Namespace) -> int:
    """In-process server + N concurrent sensor clients (rendered or replayed)."""
    try:
        recordings = _demo_recordings(args)
    except (FileNotFoundError, ValueError) as error:
        logger.error("error: %s", error)
        return 2
    trackers = _trackers(args)
    with _make_server(args) as server:
        host, port = server.address
        print(
            f"tracking server listening on {host}:{port} "
            f"({args.hub} hub, {args.front_door} front door, "
            f"tracker(s): {', '.join(trackers)})"
        )
        with ThreadPoolExecutor(max_workers=max(1, len(recordings))) as pool:
            futures = [
                pool.submit(
                    stream_recording,
                    host,
                    port,
                    name,
                    stream,
                    batch_duration_us=args.batch_us,
                    realtime=args.realtime,
                    speed=args.speed,
                    tracker=trackers[index % len(trackers)],
                )
                for index, (name, stream) in enumerate(recordings)
            ]
            outcomes = [future.result() for future in futures]
        telemetry = server.hub.telemetry_dict()
        batch = server.hub.batch_result()
        exposition = server.hub.metrics_text() if args.metrics is not None else None
        trace = server.hub.chrome_trace() if args.trace is not None else None

    total_frames = sum(len(frames) for frames, _ in outcomes)
    print()
    print(batch.format_table())
    totals = telemetry["totals"]
    print(
        f"telemetry: {totals['events_received']} events in, "
        f"{totals['frames_emitted']} frames out, "
        f"{totals['track_observations']} track observations, "
        f"{totals['late_events']} late, {totals['dropped_batches']} batches dropped"
    )

    if args.json is not None:
        payload = json.dumps(batch.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote JSON result to {args.json}")
    if args.telemetry_json is not None:
        with open(args.telemetry_json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(telemetry, indent=2) + "\n")
        print(f"wrote telemetry to {args.telemetry_json}")
    if exposition is not None:
        if args.metrics == "-":
            print(exposition, end="")
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(exposition)
            print(f"wrote Prometheus exposition to {args.metrics}")
    if trace is not None:
        num_spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
            handle.write("\n")
        print(f"wrote Chrome trace ({num_spans} spans) to {args.trace}")

    if total_frames == 0:
        logger.error("no frames were received from the server")
        return 1
    return 0


def run_server(args: argparse.Namespace) -> int:
    """Standalone server mode (blocks until KeyboardInterrupt)."""
    server = _make_server(args)
    if args.front_door == "asyncio":
        # The asyncio server binds lazily; start it to learn the port.
        server.start()
    host, port = server.address
    print(
        f"tracking server listening on {host}:{port} "
        f"({args.hub} hub, {args.front_door} front door; Ctrl-C to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down ...")
        server.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and run the selected mode.  Returns the exit code."""
    args = build_parser().parse_args(argv)
    logging_setup(args.log_level)
    if args.sensors <= 0:
        logger.error("error: --sensors must be positive")
        return 2
    if args.duration <= 0:
        logger.error("error: --duration must be positive")
        return 2
    if args.batch_us <= 0:
        logger.error("error: --batch-us must be positive")
        return 2
    if args.speed is not None and args.speed <= 0:
        logger.error("error: --speed must be positive")
        return 2
    if args.ring_kib <= 0:
        logger.error("error: --ring-kib must be positive")
        return 2
    try:
        _hub_config(args)
    except ValueError as error:
        logger.error("error: %s", error)
        return 2
    if args.serve:
        return run_server(args)
    return run_demo(args)


if __name__ == "__main__":
    raise SystemExit(main())
