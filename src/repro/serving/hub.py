"""The :class:`TrackingHub`: many live sensors, few worker threads.

The hub is the serving layer's scheduler.  Each registered sensor is
assigned — by a stable hash of its id — to exactly one worker shard; each
shard is one worker thread draining one bounded queue.  That gives:

* **per-sensor ordering** for free (a sensor's batches all pass through one
  queue and one thread, so frames close in order);
* **recording-level parallelism** across shards, the same property the
  batch :class:`~repro.runtime.runner.StreamRunner` exploits (NumPy kernels
  release the GIL);
* **bounded memory** via the queue capacity, with an explicit backpressure
  policy when a queue fills: ``"block"`` (lossless, slows producers — the
  default for replay/backfill) or ``"drop"`` (sheds the newest batch and
  counts it in telemetry — what a live deployment does when a sensor storms).

Results leave the hub through per-sensor ``on_frames`` callbacks invoked on
the worker thread (the TCP server pushes them straight onto the client
socket), and through :meth:`close_sensor`, which flushes the session in
queue order and returns its :class:`~repro.runtime.aggregate.RecordingResult`
summary.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import EbbiotConfig
from repro.core.pipeline import FrameResult
from repro.runtime.aggregate import BatchResult, RecordingResult
from repro.serving.session import SensorSession
from repro.serving.telemetry import TelemetryRegistry

#: Backpressure policies understood by :class:`HubConfig`.
BACKPRESSURE_POLICIES = ("block", "drop")

FramesCallback = Callable[[str, List[FrameResult]], None]


@dataclass
class HubConfig:
    """Configuration of a :class:`TrackingHub`.

    Parameters
    ----------
    num_workers:
        Worker shards.  Sensors are hashed across shards, so more workers
        than distinct sensors buys nothing.
    queue_capacity:
        Maximum in-flight batches per shard before backpressure applies.
    backpressure:
        ``"block"`` (default) or ``"drop"`` — see the module docstring.
    pipeline_config:
        Shared pipeline configuration for sensors that do not bring their
        own (per-sensor configs carry e.g. a site's region of exclusion).
    reorder_slack_us:
        Out-of-order arrival tolerance for every sensor's online framer.
    collect_frames:
        Keep per-frame results inside each session (tests/demos only).
    instrument:
        Give every session a per-sensor :class:`repro.obs.Instrumentation`
        wired to one hub-wide tracer and the telemetry metrics registry:
        per-stage seconds appear in the ``metrics`` exposition
        (``repro_pipeline_stage_seconds_total{sensor,stage}``) and
        :meth:`TrackingHub.chrome_trace` returns a live flame graph.  Off
        by default — uninstrumented sessions run the untouched hot path.
    trace_sample_every:
        Trace every Nth frame window per sensor (1 = all); bounds trace
        growth on long-lived hubs without affecting the stage metrics.
    """

    num_workers: int = 4
    queue_capacity: int = 64
    backpressure: str = "block"
    pipeline_config: EbbiotConfig = field(default_factory=EbbiotConfig)
    reorder_slack_us: int = 5_000
    collect_frames: bool = False
    instrument: bool = False
    trace_sample_every: int = 1

    def __post_init__(self) -> None:
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1, got {self.trace_sample_every}"
            )
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {self.num_workers}")
        if self.queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.reorder_slack_us < 0:
            raise ValueError(
                f"reorder_slack_us must be non-negative, got {self.reorder_slack_us}"
            )


@dataclass
class _Ingest:
    sensor_id: str
    events: np.ndarray
    enqueued_at: float


@dataclass
class _Close:
    sensor_id: str
    done: threading.Event
    result: Optional[RecordingResult] = None
    error: Optional[BaseException] = None


class _Stop:
    pass


class TrackingHub:
    """Shards live :class:`SensorSession` objects across worker threads."""

    def __init__(self, config: Optional[HubConfig] = None) -> None:
        self.config = config or HubConfig()
        self.telemetry = TelemetryRegistry()
        self.tracer = None
        if self.config.instrument:
            from repro.obs import Tracer

            self.tracer = Tracer()
        self._sessions: Dict[str, SensorSession] = {}
        self._callbacks: Dict[str, Optional[FramesCallback]] = {}
        self._sessions_lock = threading.Lock()
        self._queues: List[queue.Queue] = [
            queue.Queue(maxsize=self.config.queue_capacity)
            for _ in range(self.config.num_workers)
        ]
        self._workers: List[threading.Thread] = []
        self._started = False
        self._closed_results: List[RecordingResult] = []
        self._started_at = 0.0

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> "TrackingHub":
        """Start the worker threads (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._started_at = time.perf_counter()
        for shard in range(self.config.num_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"tracking-hub-{shard}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self

    def stop(self) -> None:
        """Stop all workers after their queues drain (idempotent)."""
        if not self._started:
            return
        for q in self._queues:
            q.put(_Stop())
        for worker in self._workers:
            worker.join()
        self._workers.clear()
        self._started = False

    def __enter__(self) -> "TrackingHub":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sensor management ---------------------------------------------------------------

    def register(
        self,
        sensor_id: str,
        config: Optional[EbbiotConfig] = None,
        on_frames: Optional[FramesCallback] = None,
    ) -> SensorSession:
        """Create the session for a new sensor (error if it already exists)."""
        instrumentation = None
        if self.config.instrument:
            from repro.obs import Instrumentation

            instrumentation = Instrumentation(
                tracer=self.tracer,
                metrics=self.telemetry.metrics,
                labels={"sensor": sensor_id},
                sample_every=self.config.trace_sample_every,
            )
        session = SensorSession(
            sensor_id,
            config=config or self.config.pipeline_config,
            reorder_slack_us=self.config.reorder_slack_us,
            collect_frames=self.config.collect_frames,
            # Hub sessions may stream indefinitely; full per-observation
            # history is only retained in the frame-collecting debug mode.
            keep_history=self.config.collect_frames,
            instrumentation=instrumentation,
        )
        with self._sessions_lock:
            if sensor_id in self._sessions:
                raise ValueError(f"sensor {sensor_id!r} is already registered")
            self._sessions[sensor_id] = session
            self._callbacks[sensor_id] = on_frames
        self.telemetry.sensor(sensor_id).set_tracker(session.backend_name)
        return session

    def remove_sensor(self, sensor_id: str) -> None:
        """Forget a sensor so its id can be reused (e.g. on reconnect).

        Call after :meth:`close_sensor`; the session and its callback are
        released, while telemetry and the closed summary are retained.
        A long-running server calls this on connection teardown so
        short-lived sensors do not accumulate forever.
        """
        with self._sessions_lock:
            self._sessions.pop(sensor_id, None)
            self._callbacks.pop(sensor_id, None)

    def shard_of(self, sensor_id: str) -> int:
        """The worker shard a sensor id maps to (stable across runs)."""
        return zlib.crc32(sensor_id.encode("utf-8")) % self.config.num_workers

    @property
    def num_sensors(self) -> int:
        """Number of registered (possibly finished) sensors."""
        with self._sessions_lock:
            return len(self._sessions)

    # -- ingestion -----------------------------------------------------------------------

    def submit(self, sensor_id: str, events: np.ndarray) -> bool:
        """Enqueue one event batch for a sensor.

        Returns ``True`` if the batch was accepted, ``False`` if it was shed
        by the ``"drop"`` backpressure policy (counted in telemetry).
        """
        if not self._started:
            raise RuntimeError("hub is not started")
        with self._sessions_lock:
            if sensor_id not in self._sessions:
                raise KeyError(f"sensor {sensor_id!r} is not registered")
        shard_queue = self._queues[self.shard_of(sensor_id)]
        item = _Ingest(sensor_id, events, time.perf_counter())
        record = self.telemetry.sensor(sensor_id)
        if self.config.backpressure == "block":
            shard_queue.put(item)
        else:
            try:
                shard_queue.put_nowait(item)
            except queue.Full:
                record.record_drop(len(events))
                return False
        record.record_batch(len(events))
        record.set_queue_depth(shard_queue.qsize())
        return True

    def close_sensor(self, sensor_id: str, timeout: Optional[float] = None) -> RecordingResult:
        """Flush a sensor's session (in queue order) and summarise it.

        Blocks until every batch submitted before this call has been
        processed, the framer has flushed its tail windows, and the final
        frames have been delivered to the sensor's callback.
        """
        if not self._started:
            raise RuntimeError("hub is not started")
        with self._sessions_lock:
            if sensor_id not in self._sessions:
                raise KeyError(f"sensor {sensor_id!r} is not registered")
        item = _Close(sensor_id, threading.Event())
        self._queues[self.shard_of(sensor_id)].put(item)
        if not item.done.wait(timeout):
            raise TimeoutError(f"timed out closing sensor {sensor_id!r}")
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    def batch_result(self) -> BatchResult:
        """Fleet summary over all sensors closed so far.

        Recordings are sorted by sensor id so the fleet table is
        deterministic regardless of which sensor finished first.
        """
        wall = time.perf_counter() - self._started_at if self._started_at else 0.0
        with self._sessions_lock:
            results = sorted(self._closed_results, key=lambda r: r.name)
        return BatchResult(recordings=results, wall_time_s=wall)

    # -- observability -------------------------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus text exposition of the hub's full metrics registry.

        Always available (the telemetry counters live there regardless of
        instrumentation); with ``instrument`` it additionally carries the
        per-sensor pipeline-stage seconds.  This is what the protocol's
        ``metrics`` command returns.
        """
        return self.telemetry.to_prometheus_text()

    def chrome_trace(self) -> Optional[dict]:
        """The hub's live Chrome trace, or ``None`` when not instrumented.

        Spans accumulate from hub start; each worker thread gets its own
        ``tid`` lane.  The tracer's buffer is bounded, so a long-lived hub
        eventually stops adding spans rather than growing without limit
        (re-arm with ``hub.tracer.clear()``).
        """
        if self.tracer is None:
            return None
        return self.tracer.chrome_trace(process_name="tracking-hub")

    # -- worker loop ---------------------------------------------------------------------

    def _worker_loop(self, shard: int) -> None:
        shard_queue = self._queues[shard]
        while True:
            item = shard_queue.get()
            try:
                if isinstance(item, _Stop):
                    return
                if isinstance(item, _Close):
                    try:
                        self._handle_close(item)
                    except Exception as error:
                        # Never leave a close_sensor() caller hanging.
                        item.error = error
                        item.done.set()
                else:
                    try:
                        self._handle_ingest(item, shard_queue)
                    except Exception:
                        # A poisoned batch (bad coordinates, finished
                        # session) must not take down the shard's other
                        # sensors; the batch is counted as dropped.
                        self.telemetry.sensor(item.sensor_id).record_drop(
                            len(item.events)
                        )
            finally:
                shard_queue.task_done()

    def _handle_ingest(self, item: _Ingest, shard_queue: queue.Queue) -> None:
        with self._sessions_lock:
            session = self._sessions[item.sensor_id]
            callback = self._callbacks[item.sensor_id]
        frames = session.ingest(item.events)
        record = self.telemetry.sensor(item.sensor_id)
        record.record_frames(
            num_frames=len(frames),
            num_tracks=sum(len(f.tracks) for f in frames),
            latency_s=time.perf_counter() - item.enqueued_at,
            late_events=session.late_events,
        )
        record.set_queue_depth(shard_queue.qsize())
        if frames and callback is not None:
            callback(item.sensor_id, frames)

    def _handle_close(self, item: _Close) -> None:
        with self._sessions_lock:
            session = self._sessions[item.sensor_id]
            callback = self._callbacks[item.sensor_id]
        already_finished = session.finished
        started = time.perf_counter()
        frames = session.finish()
        record = self.telemetry.sensor(item.sensor_id)
        record.record_frames(
            num_frames=len(frames),
            num_tracks=sum(len(f.tracks) for f in frames),
            latency_s=time.perf_counter() - started,
            late_events=session.late_events,
        )
        if frames and callback is not None:
            callback(item.sensor_id, frames)
        item.result = session.summary()
        if not already_finished:
            # A repeated finish (double close, connection-teardown close
            # after an explicit one) must not double-count the sensor in
            # the fleet statistics.
            with self._sessions_lock:
                self._closed_results.append(item.result)
        item.done.set()
