"""The :class:`TrackingHub`: many live sensors, few worker threads.

The hub is the serving layer's scheduler.  Each registered sensor is
assigned — by a stable hash of its id — to exactly one worker shard; each
shard is one worker thread draining one bounded queue.  That gives:

* **per-sensor ordering** for free (a sensor's batches all pass through one
  queue and one thread, so frames close in order);
* **recording-level parallelism** across shards, the same property the
  batch :class:`~repro.runtime.runner.StreamRunner` exploits (NumPy kernels
  release the GIL);
* **bounded memory** via the queue capacity, with an explicit backpressure
  policy when a queue fills: ``"block"`` (lossless, slows producers — the
  default for replay/backfill) or ``"drop"`` (sheds the newest batch and
  counts it in telemetry — what a live deployment does when a sensor storms).

Results leave the hub through per-sensor ``on_frames`` callbacks invoked on
the worker thread (the TCP server pushes them straight onto the client
socket), and through :meth:`close_sensor`, which flushes the session in
queue order and returns its :class:`~repro.runtime.aggregate.RecordingResult`
summary.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import EbbiotConfig
from repro.core.pipeline import FrameResult
from repro.runtime.aggregate import BatchResult, RecordingResult
from repro.serving.rebalance import (
    Move,
    RebalancePolicy,
    ShardStats,
    plan_rebalance,
)
from repro.serving.session import SensorSession
from repro.serving.telemetry import TelemetryRegistry

#: Backpressure policies understood by :class:`HubConfig`.
BACKPRESSURE_POLICIES = ("block", "drop")

FramesCallback = Callable[[str, List[FrameResult]], None]


@dataclass
class HubConfig:
    """Configuration of a :class:`TrackingHub`.

    Parameters
    ----------
    num_workers:
        Worker shards.  Sensors are hashed across shards, so more workers
        than distinct sensors buys nothing.
    queue_capacity:
        Maximum in-flight batches per shard before backpressure applies.
    backpressure:
        ``"block"`` (default) or ``"drop"`` — see the module docstring.
    pipeline_config:
        Shared pipeline configuration for sensors that do not bring their
        own (per-sensor configs carry e.g. a site's region of exclusion).
    reorder_slack_us:
        Out-of-order arrival tolerance for every sensor's online framer.
    collect_frames:
        Keep per-frame results inside each session (tests/demos only).
    instrument:
        Give every session a per-sensor :class:`repro.obs.Instrumentation`
        wired to one hub-wide tracer and the telemetry metrics registry:
        per-stage seconds appear in the ``metrics`` exposition
        (``repro_pipeline_stage_seconds_total{sensor,stage}``) and
        :meth:`TrackingHub.chrome_trace` returns a live flame graph.  Off
        by default — uninstrumented sessions run the untouched hot path.
    trace_sample_every:
        Trace every Nth frame window per sensor (1 = all); bounds trace
        growth on long-lived hubs without affecting the stage metrics.
    rebalance:
        Optional :class:`~repro.serving.rebalance.RebalancePolicy`.  When
        set, a dedicated rebalancer thread — woken every
        ``rebalance_check_every`` submitted batches, never run on the
        submit path itself — samples the shard loads and migrates sessions
        off overloaded shards (drain → snapshot → restore, invisible in the
        output).  ``None`` (default) keeps placement purely hash-based.
    rebalance_check_every:
        Submit-count stride between rebalancer wake-ups; keeps even the
        wake signal off the per-batch hot path.
    transport:
        Event transport of the *process* hub: ``"shm"`` (shared-memory
        ring, falls back to pipes when unavailable), ``"pipe"``, or
        ``"auto"``.  Ignored by the thread hub.
    ring_capacity_bytes:
        Byte capacity of each shard's shared-memory ring (process hub
        only).  This, rather than ``queue_capacity``, is what bounds
        in-flight data per shard there; size it for the expected batch
        size × desired queue depth.
    """

    num_workers: int = 4
    queue_capacity: int = 64
    backpressure: str = "block"
    pipeline_config: EbbiotConfig = field(default_factory=EbbiotConfig)
    reorder_slack_us: int = 5_000
    collect_frames: bool = False
    instrument: bool = False
    trace_sample_every: int = 1
    rebalance: Optional[RebalancePolicy] = None
    rebalance_check_every: int = 64
    transport: str = "auto"
    ring_capacity_bytes: int = 1 << 20

    def __post_init__(self) -> None:
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1, got {self.trace_sample_every}"
            )
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {self.num_workers}")
        if self.queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive, got {self.queue_capacity}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.reorder_slack_us < 0:
            raise ValueError(
                f"reorder_slack_us must be non-negative, got {self.reorder_slack_us}"
            )
        if self.rebalance_check_every < 1:
            raise ValueError(
                f"rebalance_check_every must be >= 1, got {self.rebalance_check_every}"
            )
        if self.transport not in ("shm", "pipe", "auto"):
            raise ValueError(
                f"transport must be 'shm', 'pipe' or 'auto', got {self.transport!r}"
            )
        if self.ring_capacity_bytes < 4096:
            raise ValueError(
                f"ring_capacity_bytes must be >= 4096, got {self.ring_capacity_bytes}"
            )


@dataclass
class _Ingest:
    sensor_id: str
    events: np.ndarray
    enqueued_at: float


@dataclass
class _Close:
    sensor_id: str
    done: threading.Event
    result: Optional[RecordingResult] = None
    error: Optional[BaseException] = None


class _Stop:
    pass


@dataclass
class _Handoff:
    """Shared state of one in-flight migration (source ↔ target shard)."""

    sensor_id: str
    target: int
    ready: threading.Event = field(default_factory=threading.Event)
    completed: threading.Event = field(default_factory=threading.Event)
    envelope: Optional[object] = None
    error: Optional[BaseException] = None


@dataclass
class _MigrateOut:
    handoff: _Handoff


@dataclass
class _MigrateIn:
    handoff: _Handoff


class TrackingHub:
    """Shards live :class:`SensorSession` objects across worker threads."""

    def __init__(self, config: Optional[HubConfig] = None) -> None:
        self.config = config or HubConfig()
        self.telemetry = TelemetryRegistry()
        self.tracer = None
        if self.config.instrument:
            from repro.obs import Tracer

            self.tracer = Tracer()
        self._sessions: Dict[str, SensorSession] = {}
        self._callbacks: Dict[str, Optional[FramesCallback]] = {}
        self._shard_map: Dict[str, int] = {}
        self._sessions_lock = threading.Lock()
        self._queues: List[queue.Queue] = [
            queue.Queue(maxsize=self.config.queue_capacity)
            for _ in range(self.config.num_workers)
        ]
        # One lock per shard queue, held across the map-read + enqueue of
        # every submit/close, and across the map-flip + marker enqueues of
        # a migration — the interlock that keeps a concurrent submit from
        # landing behind a migrate-out marker (see migrate_sensor).
        self._queue_locks: List[threading.Lock] = [
            threading.Lock() for _ in range(self.config.num_workers)
        ]
        self._workers: List[threading.Thread] = []
        self._started = False
        self._closed_results: List[RecordingResult] = []
        self._started_at = 0.0
        self._shard_busy_s = [0.0] * self.config.num_workers
        self._migrations = 0
        self._submits_until_rebalance = self.config.rebalance_check_every
        self._rebalance_lock = threading.Lock()
        self._rebalance_wake = threading.Event()
        self._rebalance_stopping = False
        self._rebalance_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> "TrackingHub":
        """Start the worker threads (idempotent)."""
        if self._started:
            return self
        self._started = True
        self._started_at = time.perf_counter()
        for shard in range(self.config.num_workers):
            worker = threading.Thread(
                target=self._worker_loop,
                args=(shard,),
                name=f"tracking-hub-{shard}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        if self.config.rebalance is not None:
            self._rebalance_stopping = False
            self._rebalance_wake.clear()
            self._rebalance_thread = threading.Thread(
                target=self._rebalance_loop,
                name="tracking-hub-rebalancer",
                daemon=True,
            )
            self._rebalance_thread.start()
        return self

    def stop(self) -> None:
        """Stop all workers after their queues drain (idempotent)."""
        if not self._started:
            return
        # Retire the rebalancer first so no migration markers are enqueued
        # behind a stop item (the workers would never reach them).
        if self._rebalance_thread is not None:
            self._rebalance_stopping = True
            self._rebalance_wake.set()
            self._rebalance_thread.join(timeout=90.0)
            self._rebalance_thread = None
        for q in self._queues:
            q.put(_Stop())
        for worker in self._workers:
            worker.join()
        self._workers.clear()
        self._started = False

    def __enter__(self) -> "TrackingHub":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- sensor management ---------------------------------------------------------------

    def _build_session(
        self, sensor_id: str, config: Optional[EbbiotConfig]
    ) -> SensorSession:
        instrumentation = None
        if self.config.instrument:
            from repro.obs import Instrumentation

            instrumentation = Instrumentation(
                tracer=self.tracer,
                metrics=self.telemetry.metrics,
                labels={"sensor": sensor_id},
                sample_every=self.config.trace_sample_every,
            )
        return SensorSession(
            sensor_id,
            config=config or self.config.pipeline_config,
            reorder_slack_us=self.config.reorder_slack_us,
            collect_frames=self.config.collect_frames,
            # Hub sessions may stream indefinitely; full per-observation
            # history is only retained in the frame-collecting debug mode.
            keep_history=self.config.collect_frames,
            instrumentation=instrumentation,
        )

    def register(
        self,
        sensor_id: str,
        config: Optional[EbbiotConfig] = None,
        on_frames: Optional[FramesCallback] = None,
        shard: Optional[int] = None,
    ) -> SensorSession:
        """Create the session for a new sensor (error if it already exists).

        ``shard`` overrides the hash placement (used by tests and by
        restore-after-rebalance paths); the assignment may later change if
        a rebalance policy is active.
        """
        if shard is not None and not 0 <= shard < self.config.num_workers:
            raise ValueError(
                f"shard must be in [0, {self.config.num_workers}), got {shard}"
            )
        session = self._build_session(sensor_id, config)
        with self._sessions_lock:
            if sensor_id in self._sessions:
                raise ValueError(f"sensor {sensor_id!r} is already registered")
            self._sessions[sensor_id] = session
            self._callbacks[sensor_id] = on_frames
            self._shard_map[sensor_id] = (
                shard if shard is not None else self._hash_shard(sensor_id)
            )
        self.telemetry.sensor(sensor_id).set_tracker(session.backend_name)
        return session

    def remove_sensor(self, sensor_id: str) -> None:
        """Forget a sensor so its id can be reused (e.g. on reconnect).

        Call after :meth:`close_sensor`; the session and its callback are
        released, while telemetry and the closed summary are retained.
        A long-running server calls this on connection teardown so
        short-lived sensors do not accumulate forever.
        """
        with self._sessions_lock:
            self._sessions.pop(sensor_id, None)
            self._callbacks.pop(sensor_id, None)
            self._shard_map.pop(sensor_id, None)

    def _hash_shard(self, sensor_id: str) -> int:
        return zlib.crc32(sensor_id.encode("utf-8")) % self.config.num_workers

    def shard_of(self, sensor_id: str) -> int:
        """The worker shard a sensor is currently assigned to.

        For a registered sensor this reflects migrations; for an unknown id
        it is the stable hash placement the sensor would initially get.
        """
        with self._sessions_lock:
            assigned = self._shard_map.get(sensor_id)
        if assigned is not None:
            return assigned
        return self._hash_shard(sensor_id)

    @property
    def num_sensors(self) -> int:
        """Number of registered (possibly finished) sensors."""
        with self._sessions_lock:
            return len(self._sessions)

    # -- ingestion -----------------------------------------------------------------------

    def submit(self, sensor_id: str, events: np.ndarray) -> bool:
        """Enqueue one event batch for a sensor.

        Returns ``True`` if the batch was accepted, ``False`` if it was shed
        by the ``"drop"`` backpressure policy (counted in telemetry).
        """
        return self._submit(sensor_id, events, blocking=self.config.backpressure == "block")

    def try_submit(self, sensor_id: str, events: np.ndarray) -> bool:
        """Non-blocking :meth:`submit` regardless of the backpressure policy.

        The asyncio front door uses this: an event-loop thread must never
        park on a full shard queue, so it attempts the enqueue and applies
        its own asynchronous backoff when this returns ``False``.  Unlike a
        ``"drop"``-policy :meth:`submit`, a refused batch is *not* counted
        as dropped — the caller still owns it and may retry.
        """
        return self._submit(sensor_id, events, blocking=False, count_refusals=False)

    def _acquire_queue(self, sensor_id: str):
        """Lock the sensor's current shard queue, racing map flips safely.

        A migration flips the shard map while holding both shard queue
        locks, so re-checking the map after acquiring the queue lock
        guarantees no item is enqueued on the source queue behind its
        migrate-out marker (or on the target queue ahead of its
        migrate-in barrier).
        """
        while True:
            with self._sessions_lock:
                shard = self._shard_map.get(sensor_id)
            if shard is None:
                raise KeyError(f"sensor {sensor_id!r} is not registered")
            lock = self._queue_locks[shard]
            lock.acquire()
            with self._sessions_lock:
                current = self._shard_map.get(sensor_id)
            if current == shard:
                return shard, lock
            lock.release()
            if current is None:
                raise KeyError(f"sensor {sensor_id!r} is not registered")

    def _submit(
        self,
        sensor_id: str,
        events: np.ndarray,
        blocking: bool,
        count_refusals: bool = True,
    ) -> bool:
        if not self._started:
            raise RuntimeError("hub is not started")
        item = _Ingest(sensor_id, events, time.perf_counter())
        record = self.telemetry.sensor(sensor_id)
        shard, lock = self._acquire_queue(sensor_id)
        shard_queue = self._queues[shard]
        try:
            if blocking:
                shard_queue.put(item)
            else:
                try:
                    shard_queue.put_nowait(item)
                except queue.Full:
                    if count_refusals:
                        record.record_drop(len(events))
                    return False
        finally:
            lock.release()
        record.record_batch(len(events))
        record.set_queue_depth(shard_queue.qsize())
        if self.config.rebalance is not None:
            self._submits_until_rebalance -= 1
            if self._submits_until_rebalance <= 0:
                self._submits_until_rebalance = self.config.rebalance_check_every
                # Never evaluate on the submit path: a migration blocks on
                # the worker hand-off, and submit may run on threads that
                # must not stall (the asyncio front door's event loop).
                self._rebalance_wake.set()
        return True

    def close_sensor(self, sensor_id: str, timeout: Optional[float] = None) -> RecordingResult:
        """Flush a sensor's session (in queue order) and summarise it.

        Blocks until every batch submitted before this call has been
        processed, the framer has flushed its tail windows, and the final
        frames have been delivered to the sensor's callback.
        """
        if not self._started:
            raise RuntimeError("hub is not started")
        item = _Close(sensor_id, threading.Event())
        shard, lock = self._acquire_queue(sensor_id)
        try:
            self._queues[shard].put(item)
        finally:
            lock.release()
        if not item.done.wait(timeout):
            raise TimeoutError(f"timed out closing sensor {sensor_id!r}")
        if item.error is not None:
            raise item.error
        assert item.result is not None
        return item.result

    # -- migration / rebalance -----------------------------------------------------------

    def migrate_sensor(
        self, sensor_id: str, target_shard: int, timeout: Optional[float] = 60.0
    ) -> bool:
        """Move a live sensor to another shard (drain → snapshot → restore).

        Both shard queue locks are held while the map flips and the two
        markers are enqueued, and every submit/close re-checks the map
        under its shard's queue lock, so each of the sensor's items either
        precedes the migrate-out marker on the source queue or follows the
        migrate-in barrier on the target queue — never the reverse.  The
        target worker waits at the barrier until the source worker has
        drained every batch enqueued before the flip, exported the
        session's :class:`~repro.serving.session.MigrationEnvelope`, and
        handed it over.  Per-sensor ordering is therefore preserved end to
        end and the output stream is byte-identical to an unmigrated run,
        even with submits racing the migration (which is normal operation
        under a rebalance policy).

        Returns ``True`` if a migration was performed, ``False`` if the
        sensor was already on ``target_shard``.
        """
        if not self._started:
            raise RuntimeError("hub is not started")
        if not 0 <= target_shard < self.config.num_workers:
            raise ValueError(
                f"target_shard must be in [0, {self.config.num_workers}), "
                f"got {target_shard}"
            )
        while True:
            with self._sessions_lock:
                source = self._shard_map.get(sensor_id)
            if source is None:
                raise KeyError(f"sensor {sensor_id!r} is not registered")
            if source == target_shard:
                return False
            first, second = sorted((source, target_shard))
            with self._queue_locks[first], self._queue_locks[second]:
                with self._sessions_lock:
                    if self._shard_map.get(sensor_id) != source:
                        continue  # lost a race with another migration; retry
                    self._shard_map[sensor_id] = target_shard
                handoff = _Handoff(sensor_id=sensor_id, target=target_shard)
                self._queues[source].put(_MigrateOut(handoff))
                self._queues[target_shard].put(_MigrateIn(handoff))
            break
        if not handoff.completed.wait(timeout):
            raise TimeoutError(f"timed out migrating sensor {sensor_id!r}")
        if handoff.error is not None:
            raise handoff.error
        # Migrations may race (user call vs rebalancer thread); the counter
        # increment must not lose updates.
        with self._sessions_lock:
            self._migrations += 1
        return True

    def shard_stats(self) -> List[ShardStats]:
        """Per-shard load sample: sensor count, queue depth, busy fraction.

        The busy fraction is cumulative time the shard's worker spent
        handling items divided by the hub's uptime — the long-run
        utilisation the ``repro_shard_busy_fraction`` gauge exports.
        """
        uptime = time.perf_counter() - self._started_at if self._started_at else 0.0
        with self._sessions_lock:
            per_shard = [0] * self.config.num_workers
            for shard in self._shard_map.values():
                per_shard[shard] += 1
        return [
            ShardStats(
                shard=shard,
                num_sensors=per_shard[shard],
                queue_depth=self._queues[shard].qsize(),
                busy_fraction=(
                    min(1.0, self._shard_busy_s[shard] / uptime) if uptime > 0 else 0.0
                ),
            )
            for shard in range(self.config.num_workers)
        ]

    def sensor_shards(self) -> Dict[str, int]:
        """Snapshot of the current sensor → shard assignment."""
        with self._sessions_lock:
            return dict(self._shard_map)

    @property
    def migrations_performed(self) -> int:
        """Completed sensor migrations (manual and rebalancer-initiated)."""
        return self._migrations

    def _rebalance_loop(self) -> None:
        """Dedicated rebalancer thread: evaluates off the submit path.

        Submits only *signal* this thread (an Event set, never a blocking
        call), so a migration's drain/hand-off wait is paid here rather
        than by whoever happened to submit the Nth batch — in particular
        the asyncio front door's event-loop thread.
        """
        while True:
            self._rebalance_wake.wait()
            self._rebalance_wake.clear()
            if self._rebalance_stopping:
                return
            try:
                self.maybe_rebalance()
            except Exception:  # pragma: no cover - defensive
                import logging

                logging.getLogger(__name__).exception("rebalance pass failed")

    def maybe_rebalance(self) -> List[Move]:
        """Apply the configured rebalance policy once; returns moves made.

        Safe to call from any thread; concurrent calls coalesce (only one
        evaluates, the rest return immediately with no moves).
        """
        policy = self.config.rebalance
        if policy is None:
            return []
        if not self._rebalance_lock.acquire(blocking=False):
            return []
        try:
            moves = plan_rebalance(self.shard_stats(), self.sensor_shards(), policy)
            performed = []
            for move in moves:
                try:
                    if self.migrate_sensor(move.sensor_id, move.target):
                        performed.append(move)
                except KeyError:
                    continue  # sensor closed/removed since the plan was made
            return performed
        finally:
            self._rebalance_lock.release()

    def batch_result(self) -> BatchResult:
        """Fleet summary over all sensors closed so far.

        Recordings are sorted by sensor id so the fleet table is
        deterministic regardless of which sensor finished first.
        """
        wall = time.perf_counter() - self._started_at if self._started_at else 0.0
        with self._sessions_lock:
            results = sorted(self._closed_results, key=lambda r: r.name)
        return BatchResult(recordings=results, wall_time_s=wall)

    # -- observability -------------------------------------------------------------------

    def metrics_text(self) -> str:
        """Prometheus text exposition of the hub's full metrics registry.

        Always available (the telemetry counters live there regardless of
        instrumentation); with ``instrument`` it additionally carries the
        per-sensor pipeline-stage seconds.  The per-shard load gauges are
        refreshed on every call so a scrape always sees current queue
        depths.  This is what the protocol's ``metrics`` command returns.
        """
        if self._started:
            self.telemetry.set_shard_stats(self.shard_stats())
        return self.telemetry.to_prometheus_text()

    def telemetry_dict(self) -> dict:
        """JSON telemetry snapshot (hub-agnostic accessor used by servers).

        The process hub's equivalent merges worker-side registries first;
        front doors call this instead of ``hub.telemetry.to_dict()`` so
        they behave identically over either hub.
        """
        return self.telemetry.to_dict()

    def merged_metrics(self):
        """The hub's full metrics registry (hub-agnostic accessor).

        Everything already lives in one registry here; the process hub's
        equivalent merges the worker-process registries first.
        """
        return self.telemetry.metrics

    def chrome_trace(self) -> Optional[dict]:
        """The hub's live Chrome trace, or ``None`` when not instrumented.

        Spans accumulate from hub start; each worker thread gets its own
        ``tid`` lane.  The tracer's buffer is bounded, so a long-lived hub
        eventually stops adding spans rather than growing without limit
        (re-arm with ``hub.tracer.clear()``).
        """
        if self.tracer is None:
            return None
        return self.tracer.chrome_trace(process_name="tracking-hub")

    # -- worker loop ---------------------------------------------------------------------

    def _worker_loop(self, shard: int) -> None:
        shard_queue = self._queues[shard]
        while True:
            item = shard_queue.get()
            started = time.perf_counter()
            try:
                if isinstance(item, _Stop):
                    return
                if isinstance(item, _Close):
                    try:
                        self._handle_close(item)
                    except Exception as error:
                        # Never leave a close_sensor() caller hanging.
                        item.error = error
                        item.done.set()
                elif isinstance(item, _MigrateOut):
                    self._handle_migrate_out(item.handoff)
                elif isinstance(item, _MigrateIn):
                    self._handle_migrate_in(item.handoff)
                else:
                    try:
                        self._handle_ingest(item, shard_queue)
                    except Exception:
                        # A poisoned batch (bad coordinates, finished
                        # session) must not take down the shard's other
                        # sensors; the batch is counted as dropped.
                        self.telemetry.sensor(item.sensor_id).record_drop(
                            len(item.events)
                        )
            finally:
                self._shard_busy_s[shard] += time.perf_counter() - started
                shard_queue.task_done()

    def _handle_migrate_out(self, handoff: _Handoff) -> None:
        """Source-shard half of a migration: drain done, export the state.

        Runs after every batch enqueued before the shard-map flip (FIFO), so
        the session is quiescent here.
        """
        try:
            with self._sessions_lock:
                session = self._sessions[handoff.sensor_id]
            handoff.envelope = session.export_migration()
        except BaseException as error:
            handoff.error = error
        finally:
            handoff.ready.set()

    def _handle_migrate_in(self, handoff: _Handoff) -> None:
        """Target-shard half: wait for the envelope, restore, swap in.

        This is the barrier that holds back batches already queued behind it
        on the target shard until the hand-off completes.  The wait cannot
        deadlock — the source worker always sets ``ready`` (even on error)
        and never waits on the target — but is bounded anyway so a crashed
        source thread cannot freeze the shard forever.
        """
        try:
            if not handoff.ready.wait(timeout=60.0):
                raise TimeoutError(
                    f"migration of {handoff.sensor_id!r} timed out waiting "
                    "for the source shard"
                )
            if handoff.error is not None:
                return
            envelope = handoff.envelope
            session = self._build_session(handoff.sensor_id, envelope.pipeline_config)
            session.restore_migration(envelope)
            with self._sessions_lock:
                self._sessions[handoff.sensor_id] = session
        except BaseException as error:
            handoff.error = error
        finally:
            handoff.completed.set()

    def _handle_ingest(self, item: _Ingest, shard_queue: queue.Queue) -> None:
        with self._sessions_lock:
            session = self._sessions[item.sensor_id]
            callback = self._callbacks[item.sensor_id]
        frames = session.ingest(item.events)
        record = self.telemetry.sensor(item.sensor_id)
        record.record_frames(
            num_frames=len(frames),
            num_tracks=sum(len(f.tracks) for f in frames),
            latency_s=time.perf_counter() - item.enqueued_at,
            late_events=session.late_events,
        )
        record.set_queue_depth(shard_queue.qsize())
        if frames and callback is not None:
            callback(item.sensor_id, frames)

    def _handle_close(self, item: _Close) -> None:
        with self._sessions_lock:
            session = self._sessions[item.sensor_id]
            callback = self._callbacks[item.sensor_id]
        already_finished = session.finished
        started = time.perf_counter()
        frames = session.finish()
        record = self.telemetry.sensor(item.sensor_id)
        record.record_frames(
            num_frames=len(frames),
            num_tracks=sum(len(f.tracks) for f in frames),
            latency_s=time.perf_counter() - started,
            late_events=session.late_events,
        )
        if frames and callback is not None:
            callback(item.sensor_id, frames)
        item.result = session.summary()
        if not already_finished:
            # A repeated finish (double close, connection-teardown close
            # after an explicit one) must not double-count the sensor in
            # the fleet statistics.
            with self._sessions_lock:
                self._closed_results.append(item.result)
        item.done.set()
