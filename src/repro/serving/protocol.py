"""JSONL line protocol spoken between sensor clients and the tracking server.

One message per line, each a JSON object with a ``"type"`` field.  JSONL is
deliberately simple — debuggable with ``nc`` and greppable in logs — and
fast enough for the event volumes of stationary-sensor surveillance (the
binary-hungry path is the in-process :class:`~repro.serving.hub.TrackingHub`,
which skips the transport entirely).

Client → server::

    {"type": "hello", "sensor_id": "ENG-00", "width": 240, "height": 180,
     "tracker": "kalman"}          # tracker is optional (server default)
    {"type": "events", "x": [...], "y": [...], "t": [...], "p": [...]}
    {"type": "stats"}
    {"type": "metrics"}            # allowed without hello (monitoring)
    {"type": "trace"}              # allowed without hello (monitoring)
    {"type": "finish"}

Server → client::

    {"type": "welcome", "frame_duration_us": 66000, "reorder_slack_us": 5000, ...}
    {"type": "frame", "sensor_id": ..., "frame_index": ..., "tracks": [...]}
    {"type": "stats", "telemetry": {...}}
    {"type": "metrics", "exposition": "..."}     # Prometheus text format
    {"type": "trace", "trace": {...}}            # Chrome trace-event JSON
    {"type": "summary", "recording": {...}}      # terminal reply to finish
    {"type": "error", "message": "..."}

``metrics`` and ``trace`` are monitoring commands: a scraper connects,
asks, reads one reply and disconnects, without ever registering as a
sensor — so the server answers them before (or without) ``hello``.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from repro.core.pipeline import FrameResult
from repro.events.types import make_packet
from repro.runtime.aggregate import RecordingResult

#: Bumped on wire-format changes; the server advertises it in ``welcome``.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A malformed or out-of-sequence protocol message."""


# -- framing ---------------------------------------------------------------------------


def encode_message(message: dict) -> bytes:
    """Serialise one message to a compact JSON line (UTF-8, trailing \\n)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line) -> dict:
    """Parse one line into a message dict; raise :class:`ProtocolError` on junk."""
    if isinstance(line, (bytes, bytearray)):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"invalid JSON: {error}") from error
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("message must be a JSON object with a 'type' field")
    return message


# -- client-side constructors ----------------------------------------------------------


def hello_message(
    sensor_id: str,
    width: int = 240,
    height: int = 180,
    tracker: Optional[str] = None,
) -> dict:
    """The connection-opening handshake.

    ``tracker`` optionally requests a tracker backend by registry name
    (``"overlap"``, ``"kalman"``, ``"ebms"``); omitted, the sensor runs the
    server's configured default.
    """
    message = {
        "type": "hello",
        "sensor_id": sensor_id,
        "width": width,
        "height": height,
        "version": PROTOCOL_VERSION,
    }
    if tracker is not None:
        message["tracker"] = tracker
    return message


def events_message(events: np.ndarray) -> dict:
    """Encode one event batch as parallel coordinate lists."""
    return {
        "type": "events",
        "x": events["x"].tolist(),
        "y": events["y"].tolist(),
        "t": events["t"].tolist(),
        "p": events["p"].tolist(),
    }


def packet_from_events_message(message: dict) -> np.ndarray:
    """Decode an ``events`` message back into a structured packet."""
    try:
        return make_packet(
            message["x"], message["y"], message["t"], message["p"]
        )
    except KeyError as error:
        raise ProtocolError(f"events message missing field {error}") from error
    except (ValueError, TypeError) as error:
        raise ProtocolError(f"invalid events payload: {error}") from error


# -- server-side constructors ----------------------------------------------------------


def welcome_message(
    frame_duration_us: int,
    reorder_slack_us: int,
    width: int,
    height: int,
    tracker: str = "overlap",
) -> dict:
    """The server's reply to ``hello`` (``tracker`` is the backend in force)."""
    return {
        "type": "welcome",
        "version": PROTOCOL_VERSION,
        "frame_duration_us": frame_duration_us,
        "reorder_slack_us": reorder_slack_us,
        "width": width,
        "height": height,
        "tracker": tracker,
    }


def frame_message(sensor_id: str, frame: FrameResult) -> dict:
    """One closed frame's track observations."""
    return {
        "type": "frame",
        "sensor_id": sensor_id,
        "frame_index": frame.frame_index,
        "t_start_us": frame.t_start_us,
        "t_end_us": frame.t_end_us,
        "num_events": frame.num_events,
        "num_proposals": len(frame.proposals),
        "tracks": [observation.to_dict() for observation in frame.tracks],
    }


def summary_message(result: RecordingResult) -> dict:
    """The terminal per-sensor summary (reply to ``finish``)."""
    return {"type": "summary", "recording": result.to_dict()}


def stats_message(telemetry: dict) -> dict:
    """A telemetry snapshot (reply to ``stats``)."""
    return {"type": "stats", "telemetry": telemetry}


def metrics_message(exposition: str) -> dict:
    """A Prometheus text-exposition snapshot (reply to ``metrics``)."""
    return {"type": "metrics", "exposition": exposition}


def trace_message(trace: Optional[dict]) -> dict:
    """A Chrome trace-event document (reply to ``trace``).

    ``trace`` is ``None`` when the hub runs uninstrumented; the client sees
    an explicit null rather than an empty trace, so "tracing off" and "no
    spans yet" are distinguishable.
    """
    return {"type": "trace", "trace": trace}


def error_message(message: str, sensor_id: Optional[str] = None) -> dict:
    """An error report; the connection stays usable unless noted."""
    payload = {"type": "error", "message": message}
    if sensor_id is not None:
        payload["sensor_id"] = sensor_id
    return payload
