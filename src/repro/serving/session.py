"""One live sensor = one :class:`SensorSession`.

A session owns the full per-sensor serving state: an
:class:`~repro.serving.framer.OnlineFramer` that turns the live batch feed
into closed ``tF`` windows, an :class:`~repro.core.pipeline.EbbiotPipeline`
that runs the incremental EBBI → RPN → tracker step on each closed window,
and the same running summary statistics the batch runtime reports (``alpha``,
events/frame, active trackers), so a live sensor and a replayed recording
produce directly comparable :class:`~repro.runtime.aggregate.RecordingResult`
summaries.

Sessions are single-threaded by design: the hub shards sensors across
workers and each session only ever runs on its shard's worker, so no locks
are needed here.  :meth:`snapshot` / :meth:`restore` checkpoint the tracker
and statistics between batches (state migration, fault recovery).

Steady-state sessions do not allocate per frame: the pipeline's
:class:`~repro.core.ebbi.EbbiBuilder` runs with buffer reuse, so each
closed window is accumulated and median-filtered into persistent scratch
stacks (see :class:`~repro.core.ebbi.EbbiScratch`).  The frames a session
hands to the RPN + tracker step are views into those buffers, consumed
before the next window is built; anything retained (``collect_frames`` with
``keep_frames`` pipelines) is a detached copy.  A long-lived sensor session
therefore runs at constant memory *and* constant allocation traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import EbbiotConfig
from repro.core.pipeline import EbbiotPipeline, FrameResult, PipelineResult, PipelineState
from repro.runtime.aggregate import RecordingResult
from repro.serving.framer import FramerSnapshot, OnlineFramer


@dataclass(frozen=True)
class SessionSnapshot:
    """Checkpoint of a session's pipeline state between batches.

    The framer's in-flight buffer is deliberately *not* part of the
    snapshot: checkpoints are taken at batch boundaries and un-closed events
    are still owned by the transport (a resumed session re-ingests from the
    last acknowledged batch).
    """

    sensor_id: str
    pipeline: PipelineState
    frames_processed: int
    events_ingested: int


@dataclass(frozen=True)
class MigrationEnvelope:
    """Everything needed to move a live session between shards mid-stream.

    Wraps the PR 2 :class:`SessionSnapshot` (the pipeline checkpoint) and
    adds what a *hot* hand-off additionally needs: the framer's full state —
    spooled events included, via :class:`FramerSnapshot` — plus the summary
    counters, so the restored session's future frames **and** its final
    summary are identical to an unmigrated run.  Envelopes are plain
    picklable data: process shards ship them over their control pipes.
    """

    session: SessionSnapshot
    framer: FramerSnapshot
    busy_s: float
    num_observations: int
    track_ids: frozenset
    proposal_count: int
    collect_frames: bool
    keep_history: bool
    pipeline_config: EbbiotConfig


class SensorSession:
    """Incremental EBBIOT processing of one live sensor's event feed.

    Parameters
    ----------
    sensor_id:
        Stable identifier of the sensor (shard key in the hub).
    config:
        Pipeline configuration; defaults to the paper's parameters.
    reorder_slack_us:
        Out-of-order tolerance handed to the :class:`OnlineFramer`.
    collect_frames:
        Keep per-frame :class:`FrameResult` objects in :attr:`result`
        (handy in tests; off for long-lived production sessions).
    keep_history:
        Accumulate every :class:`TrackObservation` in
        ``result.track_history``.  The hub turns this off for its sessions
        so an indefinitely streaming sensor stays at constant memory; the
        summary counts (observations, distinct tracks) are maintained
        separately and are unaffected.
    instrumentation:
        Optional :class:`repro.obs.Instrumentation` threaded into the
        pipeline; an instrumented hub passes one per sensor (labelled with
        the sensor id) so per-stage cost shows up in its metrics and trace.
    """

    def __init__(
        self,
        sensor_id: str,
        config: Optional[EbbiotConfig] = None,
        reorder_slack_us: int = 5_000,
        collect_frames: bool = False,
        keep_history: bool = True,
        instrumentation=None,
    ) -> None:
        self.sensor_id = sensor_id
        self.instrumentation = instrumentation
        self.pipeline = EbbiotPipeline(config, instrumentation=instrumentation)
        self.framer = OnlineFramer(
            frame_duration_us=self.pipeline.config.frame_duration_us,
            reorder_slack_us=reorder_slack_us,
        )
        self.collect_frames = collect_frames
        self.keep_history = keep_history
        self.result = PipelineResult()
        self._started_monotonic = time.perf_counter()
        self._busy_s = 0.0
        self._finished = False
        self._num_observations = 0
        self._track_ids = set()

    # -- ingestion -----------------------------------------------------------------------

    def ingest(self, events: np.ndarray) -> List[FrameResult]:
        """Feed one batch of events; return the frames it closed (often [])."""
        if self._finished:
            raise RuntimeError(f"session {self.sensor_id!r} is already finished")
        started = time.perf_counter()
        frames = [self._process(w) for w in self.framer.append(events)]
        self._busy_s += time.perf_counter() - started
        return frames

    def ingest_many(self, batches: List[np.ndarray]) -> List[FrameResult]:
        """Feed a backlog of batches as one coalesced spool append.

        For in-order input this closes exactly the windows per-batch
        :meth:`ingest` would close, with identical contents — but the
        per-append bookkeeping (normalize, late mask, watermark advance,
        window-close scan) runs once per backlog instead of once per batch.
        For disordered input it is *at least* as faithful: an event that
        per-batch ingestion would drop as late can be rescued into its
        correct window when that window had not yet closed at the start of
        the backlog, matching batch replay more closely and never dropping
        more.  This is the process shard's fast path: under load the ring
        naturally hands the worker many batches at once, and coalescing them
        is what keeps a saturated shard at batch-replay throughput.

        Batches must already be canonical ``EVENT_DTYPE`` packets (the wire
        and transport layers guarantee this); normalization of the coalesced
        packet happens in the framer.
        """
        if len(batches) == 1:
            return self.ingest(batches[0])
        if not batches:
            return []
        return self.ingest(np.concatenate(batches))

    def finish(self) -> List[FrameResult]:
        """End of stream: flush the framer and process the tail windows."""
        if self._finished:
            return []
        started = time.perf_counter()
        frames = [self._process(w) for w in self.framer.flush()]
        self._busy_s += time.perf_counter() - started
        self._finished = True
        return frames

    def _process(self, window) -> FrameResult:
        frame = self.pipeline.process_frame_events(
            window.events, window.t_start_us, window.t_end_us, window.frame_index
        )
        self.result.add_frame(
            frame, keep=self.collect_frames, keep_history=self.keep_history
        )
        self._num_observations += len(frame.tracks)
        self._track_ids.update(observation.track_id for observation in frame.tracks)
        return frame

    # -- state ---------------------------------------------------------------------------

    @property
    def frames_processed(self) -> int:
        """Windows fully processed so far."""
        return self.result.frames_processed

    @property
    def backend_name(self) -> str:
        """Registry name of the session's tracker backend."""
        return self.pipeline.backend_name

    @property
    def events_ingested(self) -> int:
        """Events accepted by the framer (excludes late drops)."""
        return self.framer.events_accepted

    @property
    def late_events(self) -> int:
        """Events dropped for arriving after their window closed."""
        return self.framer.late_events

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    def snapshot(self) -> SessionSnapshot:
        """Checkpoint the pipeline state (call between batches)."""
        return SessionSnapshot(
            sensor_id=self.sensor_id,
            pipeline=self.pipeline.snapshot(),
            frames_processed=self.frames_processed,
            events_ingested=self.events_ingested,
        )

    def restore(self, snapshot: SessionSnapshot) -> None:
        """Reinstate a checkpoint taken by :meth:`snapshot`.

        Only the pipeline (tracker + statistics) is restored; the track
        history accumulated in :attr:`result` is left as-is since it
        reflects frames already delivered downstream.
        """
        if snapshot.sensor_id != self.sensor_id:
            raise ValueError(
                f"snapshot belongs to sensor {snapshot.sensor_id!r}, "
                f"not {self.sensor_id!r}"
            )
        self.pipeline.restore(snapshot.pipeline)

    def export_migration(self) -> MigrationEnvelope:
        """Package the complete live state for a shard-to-shard hand-off.

        Call with the session drained (no concurrent :meth:`ingest`); the
        source session must not be used afterwards.
        """
        if self._finished:
            raise RuntimeError(
                f"session {self.sensor_id!r} is finished; nothing to migrate"
            )
        return MigrationEnvelope(
            session=self.snapshot(),
            framer=self.framer.snapshot(),
            busy_s=self._busy_s,
            num_observations=self._num_observations,
            track_ids=frozenset(self._track_ids),
            proposal_count=self.result.proposal_count,
            collect_frames=self.collect_frames,
            keep_history=self.keep_history,
            pipeline_config=self.pipeline.config,
        )

    def restore_migration(self, envelope: MigrationEnvelope) -> None:
        """Resume a migrated session; future output is byte-identical.

        The receiving session must be freshly constructed for the same
        sensor with the same pipeline configuration (the hub guarantees
        both); the pipeline checkpoint re-validates the backend match.
        """
        if self.frames_processed or self.events_ingested:
            raise RuntimeError(
                f"cannot restore a migration onto session {self.sensor_id!r} "
                "that has already processed data"
            )
        self.restore(envelope.session)
        self.framer.restore(envelope.framer)
        self.result.frames_processed = envelope.session.frames_processed
        self.result.proposal_count = envelope.proposal_count
        self._busy_s = envelope.busy_s
        self._num_observations = envelope.num_observations
        self._track_ids = set(envelope.track_ids)
        self.collect_frames = envelope.collect_frames
        self.keep_history = envelope.keep_history

    # -- summary -------------------------------------------------------------------------

    def summary(self) -> RecordingResult:
        """The live session summarised exactly like a batch recording.

        ``duration_s`` is the stream time covered by closed windows and
        ``wall_time_s`` the time actually spent in the pipeline (framing +
        processing), so ``realtime_factor`` reads as "how much faster than
        the sensor the session is running".
        """
        covered_us = self.frames_processed * self.pipeline.config.frame_duration_us
        return RecordingResult(
            name=self.sensor_id,
            num_events=self.events_ingested,
            num_frames=self.frames_processed,
            duration_s=covered_us * 1e-6,
            wall_time_s=self._busy_s,
            mean_active_pixel_fraction=self.pipeline.ebbi_builder.mean_active_pixel_fraction,
            mean_events_per_frame=self.pipeline.mean_events_per_frame,
            mean_active_trackers=self.pipeline.tracker.mean_active_trackers,
            num_tracks=len(self._track_ids),
            num_track_observations=self._num_observations,
            num_proposals=self.result.total_proposals(),
            tracker=self.backend_name,
            stage_seconds=(
                self.instrumentation.snapshot()
                if self.instrumentation is not None
                else None
            ),
        )
