"""The shard worker process: sessions + coalesced ingest behind a ring.

One worker process owns every :class:`~repro.serving.session.SensorSession`
assigned to its shard.  Its life is a single loop:

1. **bulk-drain** the shard's transport ring (all records currently
   available, bounded per cycle so command polls interleave);
2. walk the records *in order*, grouping consecutive event batches per
   sensor and flushing each group through
   :meth:`~repro.serving.session.SensorSession.ingest_many` — the coalesced
   fast path that amortises per-batch framing overhead under backlog;
3. answer out-of-band commands (metric scrapes, trace dumps, migration
   envelopes) from the hub's command pipe.

Control records that must stay ordered with a sensor's event stream —
register, close, migrate-out, migrate-in — travel **in-band** through the
ring; a sensor's pending event group is always flushed before its control
record is handled, so the worker observes exactly the submit order.

The worker keeps its own :class:`~repro.serving.telemetry.TelemetryRegistry`
for the processing-side counters (frames, tracks, latency, late events);
the hub owns the ingest-side ones (batches/events received, drops, queue
depth) and merges both on scrape via
:meth:`~repro.obs.MetricsRegistry.merge_state`.

Everything here runs in the child process (entered via ``fork`` from
:class:`~repro.serving.process_hub.ProcessTrackingHub`); the module has no
public API for direct use.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List

import numpy as np

from repro.events.types import EVENT_DTYPE
from repro.serving.session import SensorSession
from repro.serving.telemetry import TelemetryRegistry
from repro.serving.transport import (
    KIND_CLOSE,
    KIND_EVENTS,
    KIND_MIGRATE_IN,
    KIND_MIGRATE_OUT,
    KIND_REGISTER,
    KIND_STOP,
    Record,
)

#: Upper bound on records taken per drain cycle, so a storming producer
#: cannot starve command handling (scrapes, migration envelopes).
MAX_RECORDS_PER_CYCLE = 4096

#: How long an idle worker parks on the command pipe before re-checking the
#: ring.  Small enough to keep worst-case idle-to-ingest latency well under
#: a frame window, large enough not to busy-spin.
IDLE_POLL_S = 0.002


class _ShardWorker:
    def __init__(self, shard_id, ring, cmd_rx, result_tx, config) -> None:
        self.shard_id = shard_id
        self.ring = ring
        self.cmd_rx = cmd_rx
        self.result_tx = result_tx
        self.config = config
        self.telemetry = TelemetryRegistry()
        self.tracer = None
        if config.instrument:
            from repro.obs import Tracer

            self.tracer = Tracer()
        self.sessions: Dict[int, SensorSession] = {}
        self.sensor_ids: Dict[int, str] = {}
        self.want_frames: Dict[int, bool] = {}
        self.records: Dict[int, object] = {}  # cached SensorTelemetry handles
        self.last_late: Dict[int, int] = {}
        self.envelopes: Dict[int, object] = {}
        self.running = True

    # -- helpers -------------------------------------------------------------------------

    def send(self, message: tuple) -> None:
        try:
            self.result_tx.send(message)
        except (BrokenPipeError, OSError):
            self.running = False

    def build_session(self, sensor_idx: int, sensor_id: str, config) -> SensorSession:
        instrumentation = None
        if self.config.instrument:
            from repro.obs import Instrumentation

            instrumentation = Instrumentation(
                tracer=self.tracer,
                metrics=self.telemetry.metrics,
                labels={"sensor": sensor_id},
                sample_every=self.config.trace_sample_every,
            )
        return SensorSession(
            sensor_id,
            config=config or self.config.pipeline_config,
            reorder_slack_us=self.config.reorder_slack_us,
            collect_frames=self.config.collect_frames,
            keep_history=self.config.collect_frames,
            instrumentation=instrumentation,
        )

    # -- event flushing ------------------------------------------------------------------

    def sensor_record(self, sensor_idx: int):
        record = self.records.get(sensor_idx)
        if record is None:
            sensor_id = self.sensor_ids.get(sensor_idx, f"?{sensor_idx}")
            record = self.telemetry.sensor(sensor_id)
            self.records[sensor_idx] = record
        return record

    def flush_events(self, sensor_idx: int, group: List[Record]) -> None:
        if not group:
            return
        session = self.sessions.get(sensor_idx)
        record = self.sensor_record(sensor_idx)
        # One byte join + one frombuffer for the whole coalesced group:
        # identical to np.concatenate of per-record decodes (raw
        # EVENT_DTYPE bytes are contiguous records), without paying numpy's
        # per-call overhead on every tiny batch.
        if len(group) == 1:
            raw = group[0].payload
        else:
            raw = b"".join(rec.payload for rec in group)
        packet = np.frombuffer(raw, dtype=EVENT_DTYPE)
        num_events = len(packet)
        if session is None or session.finished:
            record.record_drop(num_events)
            return
        try:
            frames = session.ingest_many([packet])
        except Exception:
            # A poisoned group must not take down the shard's other
            # sensors; count it like the thread hub does.
            record.record_drop(num_events)
            return
        late = session.late_events
        if frames or late != self.last_late.get(sensor_idx, 0):
            # Latency from the *earliest* enqueue in the group: the honest
            # (worst-case) figure when a backlog is coalesced.
            latency = time.perf_counter() - min(rec.enqueued_at for rec in group)
            record.record_frames(
                num_frames=len(frames),
                num_tracks=sum(len(f.tracks) for f in frames),
                latency_s=latency,
                late_events=late,
            )
            self.last_late[sensor_idx] = late
            if frames and self.want_frames.get(sensor_idx):
                self.send(("frames", self.sensor_ids[sensor_idx], frames))

    # -- control records -----------------------------------------------------------------

    def handle_control(self, rec: Record) -> None:
        if rec.kind == KIND_REGISTER:
            info = pickle.loads(rec.payload)
            idx = info["sensor_idx"]
            self.sensor_ids[idx] = info["sensor_id"]
            self.want_frames[idx] = info["want_frames"]
            self.records[idx] = self.telemetry.sensor(info["sensor_id"])
            self.sessions[idx] = self.build_session(
                idx, info["sensor_id"], info["pipeline_config"]
            )
        elif rec.kind == KIND_CLOSE:
            req_id, = pickle.loads(rec.payload)
            self.handle_close(rec.sensor_idx, req_id)
        elif rec.kind == KIND_MIGRATE_OUT:
            mig_id, = pickle.loads(rec.payload)
            self.handle_migrate_out(rec.sensor_idx, mig_id)
        elif rec.kind == KIND_MIGRATE_IN:
            mig_id, sensor_id, want_frames = pickle.loads(rec.payload)
            self.handle_migrate_in(rec.sensor_idx, mig_id, sensor_id, want_frames)
        elif rec.kind == KIND_STOP:
            self.running = False

    def handle_close(self, sensor_idx: int, req_id: int) -> None:
        session = self.sessions.get(sensor_idx)
        if session is None:
            self.send(("closed", req_id, None, True,
                       f"sensor index {sensor_idx} unknown to shard {self.shard_id}"))
            return
        sensor_id = self.sensor_ids[sensor_idx]
        already_finished = session.finished
        record = self.sensor_record(sensor_idx)
        started = time.perf_counter()
        try:
            frames = session.finish()
        except Exception as error:
            self.send(("closed", req_id, None, already_finished, repr(error)))
            return
        record.record_frames(
            num_frames=len(frames),
            num_tracks=sum(len(f.tracks) for f in frames),
            latency_s=time.perf_counter() - started,
            late_events=session.late_events,
        )
        if frames and self.want_frames.get(sensor_idx):
            self.send(("frames", sensor_id, frames))
        self.send(("closed", req_id, session.summary(), already_finished, None))

    def handle_migrate_out(self, sensor_idx: int, mig_id: int) -> None:
        session = self.sessions.get(sensor_idx)
        if session is None:
            self.send(("migrated", mig_id, None,
                       f"sensor index {sensor_idx} unknown to shard {self.shard_id}"))
            return
        try:
            envelope = session.export_migration()
        except Exception as error:
            # Export failed (e.g. the session finished while the migration
            # was in flight): keep the session in place so the shard stays
            # consistent, and let the hub surface the error.
            self.send(("migrated", mig_id, None, repr(error)))
            return
        self.sessions.pop(sensor_idx, None)
        self.sensor_ids.pop(sensor_idx, None)
        self.want_frames.pop(sensor_idx, None)
        self.records.pop(sensor_idx, None)
        self.last_late.pop(sensor_idx, None)
        self.send(("migrated", mig_id, envelope, None))

    def handle_migrate_in(
        self, sensor_idx: int, mig_id: int, sensor_id: str, want_frames: bool
    ) -> None:
        """The barrier half: block until the envelope arrives, then restore.

        Batches behind this record in the ring wait here, exactly like the
        thread hub's target-shard barrier, so per-sensor order holds across
        the hand-off.  The wait services other commands (a scrape cannot
        deadlock a migration) and is bounded.
        """
        deadline = time.perf_counter() + 60.0
        while mig_id not in self.envelopes and self.running:
            if time.perf_counter() >= deadline:
                self.send(("migrate_done", mig_id,
                           f"timed out waiting for envelope {mig_id}"))
                return
            self.poll_commands(timeout=0.01)
        envelope = self.envelopes.pop(mig_id, None)
        if envelope is None:
            return
        try:
            session = self.build_session(
                sensor_idx, sensor_id, envelope.pipeline_config
            )
            session.restore_migration(envelope)
        except Exception as error:
            self.send(("migrate_done", mig_id, repr(error)))
            return
        self.sessions[sensor_idx] = session
        self.sensor_ids[sensor_idx] = sensor_id
        self.want_frames[sensor_idx] = want_frames
        self.records[sensor_idx] = self.telemetry.sensor(sensor_id)
        self.last_late[sensor_idx] = session.late_events
        self.send(("migrate_done", mig_id, None))

    # -- command pipe --------------------------------------------------------------------

    def poll_commands(self, timeout: float = 0.0) -> None:
        try:
            while self.cmd_rx.poll(timeout):
                timeout = 0.0
                command = self.cmd_rx.recv()
                kind = command[0]
                if kind == "metrics":
                    self.send(
                        ("metrics", command[1], self.telemetry.metrics.state_dict())
                    )
                elif kind == "trace":
                    events = self.tracer.events() if self.tracer else None
                    self.send(("trace", command[1], events))
                elif kind == "envelope":
                    self.envelopes[command[1]] = command[2]
                elif kind == "abort":
                    # Failed migrate-out: release the MIGRATE_IN barrier
                    # without restoring anything.
                    self.envelopes[command[1]] = None
                elif kind == "stop":
                    self.running = False
        except (EOFError, OSError):
            self.running = False

    # -- main loop -----------------------------------------------------------------------

    def run(self) -> None:
        while self.running:
            records = self.ring.get_available(max_records=MAX_RECORDS_PER_CYCLE)
            if not records:
                self.poll_commands(timeout=IDLE_POLL_S)
                continue
            started = time.perf_counter()
            # Group each sensor's event batches across the whole drain
            # cycle (one ingest_many per sensor per cycle).  Only
            # *per-sensor* order matters, so interleaved sensors coalesce
            # just as well as back-to-back runs; a sensor's own control
            # record still flushes its pending group first, and a STOP
            # flushes everyone (dict preserves first-seen order).
            pending: Dict[int, List[Record]] = {}
            for rec in records:
                if rec.kind == KIND_EVENTS:
                    group = pending.get(rec.sensor_idx)
                    if group is None:
                        pending[rec.sensor_idx] = [rec]
                    else:
                        group.append(rec)
                else:
                    if rec.kind == KIND_STOP:
                        for idx, group in pending.items():
                            self.flush_events(idx, group)
                        pending.clear()
                    else:
                        group = pending.pop(rec.sensor_idx, None)
                        if group is not None:
                            self.flush_events(rec.sensor_idx, group)
                    self.handle_control(rec)
                    if not self.running:
                        break
            if self.running:
                for idx, group in pending.items():
                    self.flush_events(idx, group)
            self.ring.add_busy(time.perf_counter() - started)
            self.poll_commands(timeout=0.0)
        self.send(("stopped", self.shard_id))


def shard_worker_main(shard_id, ring, cmd_rx, result_tx, config) -> None:
    """Entry point of one shard worker process."""
    worker = _ShardWorker(shard_id, ring, cmd_rx, result_tx, config)
    try:
        worker.run()
    except Exception as error:  # last-resort: tell the hub why we died
        worker.send(("fatal", shard_id, repr(error)))
    finally:
        try:
            result_tx.close()
        except OSError:
            pass
