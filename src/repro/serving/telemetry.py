"""Telemetry for the live serving layer, built on :mod:`repro.obs`.

Every sensor session tracked by a :class:`~repro.serving.hub.TrackingHub`
gets one :class:`SensorTelemetry` record: ingestion counters (events,
batches, drops), output counters (frames, track observations), a queue-depth
gauge and a sliding window of per-frame latencies.  The whole registry
exports two ways:

* :meth:`TelemetryRegistry.to_dict` — the JSON document
  (``python -m repro.serving --telemetry-json``) an operator dashboard or
  the latency benchmark scrapes; its shape is stable across releases;
* :meth:`TelemetryRegistry.to_prometheus_text` — the same state as
  Prometheus text exposition (``repro_sensor_*`` metric families labelled
  by ``sensor``), which is what the serving protocol's ``metrics`` command
  returns.

Since the cut-over to :mod:`repro.obs`, each counter/gauge/histogram here
is a labelled child in a shared :class:`~repro.obs.MetricsRegistry`, so
anything else that writes into the same registry (the hub's per-stage
instrumentation, for example) appears in the same exposition for free.

Counters are updated from the hub's worker threads and read from control
threads; each record additionally guards its multi-field updates with its
own lock, so a snapshot taken mid-``record_frames`` never shows a frame
counted without its latency sample.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.obs.metrics import Histogram, MetricsRegistry

#: Latency histogram buckets (seconds) sized for per-frame serving latency:
#: sub-millisecond ingest steps up to multi-second stalls.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class LatencyWindow:
    """Sliding window of recent latency samples with percentile queries.

    Keeps the last ``capacity`` samples (seconds).  A bounded window makes
    the percentiles reflect *recent* behaviour — exactly what a live
    dashboard wants — and caps memory per sensor.  :attr:`count` and
    :attr:`mean_s` are lifetime statistics (they keep growing after the
    window wraps); the percentiles cover the retained window only.

    Since the :mod:`repro.obs` cut-over this is a thin facade over a
    histogram sample — standalone by default, or (as inside
    :class:`SensorTelemetry`) a labelled child of a shared metrics
    registry, so the same samples back both the JSON snapshot and the
    Prometheus exposition.
    """

    def __init__(self, capacity: int = 4096, _sample=None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if _sample is None:
            _sample = Histogram(
                "latency_window_seconds",
                buckets=LATENCY_BUCKETS,
                window=capacity,
            ).labels()
        self._sample = _sample

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        self._sample.observe(seconds)

    @property
    def count(self) -> int:
        """Samples recorded over the window's lifetime (not just retained)."""
        return self._sample.count

    @property
    def mean_s(self) -> float:
        """Lifetime mean latency in seconds (0.0 before the first sample)."""
        return self._sample.mean

    def percentile_s(self, q: float) -> float:
        """The ``q``-th percentile (0-100) over the retained window.

        Uses linear interpolation between closest ranks (NumPy's default
        ``np.percentile`` method), *not* nearest-rank — e.g. the p50 of the
        samples ``1ms..100ms`` is 50.5 ms.  Edge cases are explicit: an
        empty window returns ``0.0`` and a single retained sample is every
        percentile of itself.
        """
        return self._sample.percentile(q)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (counts and key percentiles, ms)."""
        return {
            "count": self.count,
            "mean_ms": self.mean_s * 1e3,
            "p50_ms": self.percentile_s(50) * 1e3,
            "p95_ms": self.percentile_s(95) * 1e3,
            "p99_ms": self.percentile_s(99) * 1e3,
        }


class SensorTelemetry:
    """Lock-guarded telemetry record of one live sensor.

    Each numeric field is a labelled child metric in ``metrics`` (a shared
    :class:`~repro.obs.MetricsRegistry`; a private one is created when the
    record is built standalone), read back through properties so existing
    callers still see plain ints.
    """

    def __init__(
        self, sensor_id: str, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.sensor_id = sensor_id
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self.tracker: Optional[str] = None
        labels = {"sensor": sensor_id}

        def counter(name: str, help: str):
            return self.metrics.counter(name, help, labelnames=("sensor",)).labels(
                **labels
            )

        def gauge(name: str, help: str):
            return self.metrics.gauge(name, help, labelnames=("sensor",)).labels(
                **labels
            )

        self._events_received = counter(
            "repro_sensor_events_received_total", "Events accepted from the sensor."
        )
        self._batches_received = counter(
            "repro_sensor_batches_received_total", "Ingest batches accepted."
        )
        self._frames_emitted = counter(
            "repro_sensor_frames_emitted_total", "Frame windows closed and processed."
        )
        self._track_observations = counter(
            "repro_sensor_track_observations_total", "Track boxes reported."
        )
        self._dropped_batches = counter(
            "repro_sensor_dropped_batches_total",
            "Batches shed by backpressure or poisoned.",
        )
        self._dropped_events = counter(
            "repro_sensor_dropped_events_total", "Events in dropped batches."
        )
        self._late_events = gauge(
            "repro_sensor_late_events",
            "Events dropped for arriving after their window closed.",
        )
        self._queue_depth = gauge(
            "repro_sensor_queue_depth", "In-flight batches on the sensor's shard."
        )
        self.frame_latency = LatencyWindow(
            _sample=self.metrics.histogram(
                "repro_sensor_frame_latency_seconds",
                "Enqueue-to-frame-completion latency per closed frame.",
                labelnames=("sensor",),
                buckets=LATENCY_BUCKETS,
            ).labels(**labels)
        )

    # -- updates -------------------------------------------------------------------------

    def record_batch(self, num_events: int) -> None:
        """Count one accepted ingest batch."""
        with self._lock:
            self._batches_received.inc()
            self._events_received.inc(num_events)

    def record_drop(self, num_events: int) -> None:
        """Count one batch rejected by the backpressure policy."""
        with self._lock:
            self._dropped_batches.inc()
            self._dropped_events.inc(num_events)

    def record_frames(
        self, num_frames: int, num_tracks: int, latency_s: float, late_events: int
    ) -> None:
        """Count the frames closed by one ingest step.

        ``latency_s`` is the enqueue-to-frame-completion wall time; it is
        recorded once per closed frame so the percentiles weight frames, not
        batches.  ``late_events`` is the framer's *running total* (set, not
        added).
        """
        with self._lock:
            self._frames_emitted.inc(num_frames)
            self._track_observations.inc(num_tracks)
            self._late_events.set(late_events)
            for _ in range(num_frames):
                self.frame_latency.record(latency_s)

    def set_queue_depth(self, depth: int) -> None:
        """Update the queue-depth gauge."""
        with self._lock:
            self._queue_depth.set(depth)

    def set_tracker(self, tracker: str) -> None:
        """Tag the sensor with its tracker backend (set at registration)."""
        with self._lock:
            self.tracker = tracker

    # -- reads ---------------------------------------------------------------------------

    @property
    def events_received(self) -> int:
        return int(self._events_received.value)

    @property
    def batches_received(self) -> int:
        return int(self._batches_received.value)

    @property
    def frames_emitted(self) -> int:
        return int(self._frames_emitted.value)

    @property
    def track_observations(self) -> int:
        return int(self._track_observations.value)

    @property
    def late_events(self) -> int:
        return int(self._late_events.value)

    @property
    def dropped_batches(self) -> int:
        return int(self._dropped_batches.value)

    @property
    def dropped_events(self) -> int:
        return int(self._dropped_events.value)

    @property
    def queue_depth(self) -> int:
        return int(self._queue_depth.value)

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot (key set stable across releases)."""
        with self._lock:
            return {
                "sensor_id": self.sensor_id,
                "tracker": self.tracker,
                "events_received": self.events_received,
                "batches_received": self.batches_received,
                "frames_emitted": self.frames_emitted,
                "track_observations": self.track_observations,
                "late_events": self.late_events,
                "dropped_batches": self.dropped_batches,
                "dropped_events": self.dropped_events,
                "queue_depth": self.queue_depth,
                "frame_latency": self.frame_latency.to_dict(),
            }


class TelemetryRegistry:
    """All sensors' telemetry, exportable as JSON or Prometheus text.

    Owns one shared :class:`~repro.obs.MetricsRegistry` (``metrics``) that
    every sensor record writes into; other producers — e.g. the hub's
    pipeline-stage instrumentation — can register their own families in it
    and appear in the same exposition.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self._sensors: Dict[str, SensorTelemetry] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def sensor(self, sensor_id: str) -> SensorTelemetry:
        """Get (or lazily create) the record of one sensor."""
        with self._lock:
            record = self._sensors.get(sensor_id)
            if record is None:
                record = SensorTelemetry(sensor_id, metrics=self.metrics)
                self._sensors[sensor_id] = record
            return record

    def get(self, sensor_id: str) -> Optional[SensorTelemetry]:
        """The record of one sensor, or ``None`` if never seen."""
        with self._lock:
            return self._sensors.get(sensor_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sensors)

    def set_shard_stats(self, stats) -> None:
        """Refresh the per-shard gauges from a hub load sample.

        Exports ``repro_shard_queue_depth``, ``repro_shard_sensors`` and
        ``repro_shard_busy_fraction``, each labelled by ``shard`` — the
        exact numbers the rebalance policy ranks shards by, so a scrape
        shows the imbalance the hub is reacting to.  Hubs call this right
        before exposition; both the thread and the process hub export the
        same families.
        """
        depth = self.metrics.gauge(
            "repro_shard_queue_depth",
            "Batches queued on the shard awaiting processing",
            labelnames=("shard",),
        )
        sensors = self.metrics.gauge(
            "repro_shard_sensors",
            "Sensors currently assigned to the shard",
            labelnames=("shard",),
        )
        busy = self.metrics.gauge(
            "repro_shard_busy_fraction",
            "Fraction of hub uptime the shard worker spent processing",
            labelnames=("shard",),
        )
        for stat in stats:
            label = str(stat.shard)
            depth.labels(shard=label).set(float(stat.queue_depth))
            sensors.labels(shard=label).set(float(stat.num_sensors))
            busy.labels(shard=label).set(stat.busy_fraction)

    def to_prometheus_text(self) -> str:
        """The whole registry in Prometheus text exposition format."""
        return self.metrics.to_prometheus_text()

    def to_dict(self) -> dict:
        """Snapshot of every sensor plus fleet totals."""
        with self._lock:
            sensors = {sid: rec.to_dict() for sid, rec in self._sensors.items()}
        totals = {
            "num_sensors": len(sensors),
            "events_received": sum(s["events_received"] for s in sensors.values()),
            "frames_emitted": sum(s["frames_emitted"] for s in sensors.values()),
            "track_observations": sum(
                s["track_observations"] for s in sensors.values()
            ),
            "late_events": sum(s["late_events"] for s in sensors.values()),
            "dropped_batches": sum(s["dropped_batches"] for s in sensors.values()),
            "dropped_events": sum(s["dropped_events"] for s in sensors.values()),
        }
        sensors_by_tracker: Dict[str, int] = {}
        for record in sensors.values():
            if record["tracker"] is not None:
                sensors_by_tracker[record["tracker"]] = (
                    sensors_by_tracker.get(record["tracker"], 0) + 1
                )
        totals["sensors_by_tracker"] = sensors_by_tracker
        return {"sensors": sensors, "totals": totals}
