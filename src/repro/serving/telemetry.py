"""Telemetry for the live serving layer.

Every sensor session tracked by a :class:`~repro.serving.hub.TrackingHub`
gets one :class:`SensorTelemetry` record: ingestion counters (events,
batches, drops), output counters (frames, track observations), a queue-depth
gauge and a sliding window of per-frame latencies.  The whole registry
exports as one JSON document (``python -m repro.serving --telemetry-json``),
which is what an operator dashboard or the latency benchmark scrapes.

Counters are updated from the hub's worker threads and read from control
threads, so each record guards its state with a lock; updates are a few
increments, so contention is negligible next to the pipeline work.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, Optional

import numpy as np


class LatencyWindow:
    """Sliding window of recent latency samples with percentile queries.

    Keeps the last ``capacity`` samples (seconds).  A bounded window makes
    the percentiles reflect *recent* behaviour — exactly what a live
    dashboard wants — and caps memory per sensor.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._samples: Deque[float] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        """Add one latency sample."""
        self._samples.append(seconds)
        self._count += 1
        self._total += seconds

    @property
    def count(self) -> int:
        """Samples recorded over the window's lifetime (not just retained)."""
        return self._count

    @property
    def mean_s(self) -> float:
        """Lifetime mean latency in seconds."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    def percentile_s(self, q: float) -> float:
        """The ``q``-th percentile (0-100) over the retained window."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), q))

    def to_dict(self) -> dict:
        """JSON-serialisable summary (counts and key percentiles, ms)."""
        return {
            "count": self._count,
            "mean_ms": self.mean_s * 1e3,
            "p50_ms": self.percentile_s(50) * 1e3,
            "p95_ms": self.percentile_s(95) * 1e3,
            "p99_ms": self.percentile_s(99) * 1e3,
        }


class SensorTelemetry:
    """Mutable, lock-guarded telemetry record of one live sensor."""

    def __init__(self, sensor_id: str) -> None:
        self.sensor_id = sensor_id
        self._lock = threading.Lock()
        self.tracker: Optional[str] = None
        self.events_received = 0
        self.batches_received = 0
        self.frames_emitted = 0
        self.track_observations = 0
        self.late_events = 0
        self.dropped_batches = 0
        self.dropped_events = 0
        self.queue_depth = 0
        self.frame_latency = LatencyWindow()

    def record_batch(self, num_events: int) -> None:
        """Count one accepted ingest batch."""
        with self._lock:
            self.batches_received += 1
            self.events_received += num_events

    def record_drop(self, num_events: int) -> None:
        """Count one batch rejected by the backpressure policy."""
        with self._lock:
            self.dropped_batches += 1
            self.dropped_events += num_events

    def record_frames(
        self, num_frames: int, num_tracks: int, latency_s: float, late_events: int
    ) -> None:
        """Count the frames closed by one ingest step.

        ``latency_s`` is the enqueue-to-frame-completion wall time; it is
        recorded once per closed frame so the percentiles weight frames, not
        batches.
        """
        with self._lock:
            self.frames_emitted += num_frames
            self.track_observations += num_tracks
            self.late_events = late_events
            for _ in range(num_frames):
                self.frame_latency.record(latency_s)

    def set_queue_depth(self, depth: int) -> None:
        """Update the queue-depth gauge."""
        with self._lock:
            self.queue_depth = depth

    def set_tracker(self, tracker: str) -> None:
        """Tag the sensor with its tracker backend (set at registration)."""
        with self._lock:
            self.tracker = tracker

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot."""
        with self._lock:
            return {
                "sensor_id": self.sensor_id,
                "tracker": self.tracker,
                "events_received": self.events_received,
                "batches_received": self.batches_received,
                "frames_emitted": self.frames_emitted,
                "track_observations": self.track_observations,
                "late_events": self.late_events,
                "dropped_batches": self.dropped_batches,
                "dropped_events": self.dropped_events,
                "queue_depth": self.queue_depth,
                "frame_latency": self.frame_latency.to_dict(),
            }


class TelemetryRegistry:
    """All sensors' telemetry, exportable as one JSON document."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sensors: Dict[str, SensorTelemetry] = {}

    def sensor(self, sensor_id: str) -> SensorTelemetry:
        """Get (or lazily create) the record of one sensor."""
        with self._lock:
            record = self._sensors.get(sensor_id)
            if record is None:
                record = SensorTelemetry(sensor_id)
                self._sensors[sensor_id] = record
            return record

    def get(self, sensor_id: str) -> Optional[SensorTelemetry]:
        """The record of one sensor, or ``None`` if never seen."""
        with self._lock:
            return self._sensors.get(sensor_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sensors)

    def to_dict(self) -> dict:
        """Snapshot of every sensor plus fleet totals."""
        with self._lock:
            sensors = {sid: rec.to_dict() for sid, rec in self._sensors.items()}
        totals = {
            "num_sensors": len(sensors),
            "events_received": sum(s["events_received"] for s in sensors.values()),
            "frames_emitted": sum(s["frames_emitted"] for s in sensors.values()),
            "track_observations": sum(
                s["track_observations"] for s in sensors.values()
            ),
            "late_events": sum(s["late_events"] for s in sensors.values()),
            "dropped_batches": sum(s["dropped_batches"] for s in sensors.values()),
            "dropped_events": sum(s["dropped_events"] for s in sensors.values()),
        }
        sensors_by_tracker: Dict[str, int] = {}
        for record in sensors.values():
            if record["tracker"] is not None:
                sensors_by_tracker[record["tracker"]] = (
                    sensors_by_tracker.get(record["tracker"], 0) + 1
                )
        totals["sensors_by_tracker"] = sensors_by_tracker
        return {"sensors": sensors, "totals": totals}
