"""Load-aware session rebalancing between shards.

Sensors are pinned to shards by a stable hash, which balances *counts* but
not *load*: event rates differ per scene, sensors come and go, and a hash
can simply collide several hot sensors onto one shard.  The policy here is
deliberately small and observable:

* each shard's **load** is its queue depth (batches waiting) plus a smoothed
  busy fraction — the same numbers exported as ``repro_shard_*`` gauges, so
  an operator can see exactly what the rebalancer sees;
* when the most loaded shard exceeds the least loaded by more than
  ``imbalance_ratio`` (and by at least ``min_queue_delta`` batches of queue
  depth), the plan moves **one** sensor from the hottest shard to the
  coolest — the smallest step that reduces imbalance, re-evaluated on the
  next trigger instead of speculatively moving many sessions at once;
* hubs execute a move as drain → :meth:`~repro.serving.session.SensorSession.export_migration`
  → restore on the target shard, so a rebalance is invisible in the output
  stream (asserted by the migration parity tests).

The planner is pure (shard stats in, moves out) so both the thread hub and
the process hub share it, and tests can exercise policy corner cases
without spinning up workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class ShardStats:
    """One shard's load sample (what the ``repro_shard_*`` gauges export)."""

    shard: int
    num_sensors: int
    queue_depth: int
    busy_fraction: float

    @property
    def load(self) -> float:
        """Scalar load used for ranking shards.

        Queue depth is the leading signal (it is what actually delays
        batches); the busy fraction breaks ties between equally backlogged
        shards and keeps the ranking meaningful for block-policy hubs whose
        queues hover near the capacity.
        """
        return float(self.queue_depth) + self.busy_fraction


@dataclass(frozen=True)
class RebalancePolicy:
    """When and how aggressively sessions move between shards.

    Parameters
    ----------
    imbalance_ratio:
        Trigger threshold: rebalance when ``max_load > imbalance_ratio *
        min_load`` (loads offset by 1 so an idle shard does not make every
        ratio infinite).
    min_queue_delta:
        Minimum queue-depth gap between hottest and coolest shard before a
        move is worth its migration cost; suppresses churn when all queues
        are short.
    max_moves:
        Upper bound on sensors moved per plan (1 = the conservative
        one-step-then-resample default).
    """

    imbalance_ratio: float = 2.0
    min_queue_delta: int = 8
    max_moves: int = 1

    def __post_init__(self) -> None:
        if self.imbalance_ratio < 1.0:
            raise ValueError(
                f"imbalance_ratio must be >= 1.0, got {self.imbalance_ratio}"
            )
        if self.min_queue_delta < 0:
            raise ValueError(
                f"min_queue_delta must be non-negative, got {self.min_queue_delta}"
            )
        if self.max_moves < 1:
            raise ValueError(f"max_moves must be >= 1, got {self.max_moves}")


@dataclass(frozen=True)
class Move:
    """One planned migration: ``sensor_id`` from ``source`` to ``target``."""

    sensor_id: str
    source: int
    target: int


def plan_rebalance(
    stats: Sequence[ShardStats],
    sensor_shards: Dict[str, int],
    policy: Optional[RebalancePolicy] = None,
) -> List[Move]:
    """Decide which sensors (if any) should move, given a load sample.

    Parameters
    ----------
    stats:
        One :class:`ShardStats` per shard (order irrelevant).
    sensor_shards:
        Current sensor → shard assignment; moved sensors are picked from the
        hottest shard in deterministic (sorted id) order.
    policy:
        Trigger thresholds; defaults to :class:`RebalancePolicy`.

    Returns
    -------
    list of :class:`Move`
        Empty when the fleet is balanced enough (the common case).
    """
    policy = policy or RebalancePolicy()
    if len(stats) < 2:
        return []
    ranked = sorted(stats, key=lambda s: (s.load, s.shard))
    coolest, hottest = ranked[0], ranked[-1]
    if hottest.num_sensors <= 1:
        # Never strip a shard's only sensor: the move cannot reduce its
        # per-sensor load, it only relocates the hotspot.
        return []
    if hottest.queue_depth - coolest.queue_depth < policy.min_queue_delta:
        return []
    if (hottest.load + 1.0) <= policy.imbalance_ratio * (coolest.load + 1.0):
        return []
    candidates = sorted(
        sensor_id
        for sensor_id, shard in sensor_shards.items()
        if shard == hottest.shard
    )
    moves = [
        Move(sensor_id=sensor_id, source=hottest.shard, target=coolest.shard)
        for sensor_id in candidates[: policy.max_moves]
    ]
    # Moving more sensors than the hot shard can spare would just invert
    # the imbalance; cap at half its population.
    spare = max(1, hottest.num_sensors // 2)
    return moves[:spare]
