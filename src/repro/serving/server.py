"""Threaded JSONL-over-TCP tracking server.

One TCP connection = one live sensor.  The handler thread reads protocol
lines (``hello``, then ``events`` batches, finally ``finish``) and feeds the
shared :class:`~repro.serving.hub.TrackingHub`.  Outbound traffic never
touches a hub worker thread directly: every connection owns a bounded send
queue drained by a dedicated writer thread, so a client that stops reading
its socket cannot wedge a hub shard — its ``frame`` pushes are shed once the
queue fills, while control replies (``welcome``/``summary``/``stats``/
``error``) wait for room.

On connection teardown (clean ``finish`` or an abrupt disconnect) the
sensor's session is flushed and deregistered from the hub, so sensor ids are
reusable and a long-running server does not accumulate dead sessions.

The server owns the hub: ``with TrackingServer() as server`` starts the hub
workers and the acceptor thread, and tears both down on exit.  Port 0
requests an ephemeral port (tests and the in-process demo use this).
"""

from __future__ import annotations

import queue
import socketserver
import threading
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.core.pipeline import FrameResult
from repro.events.types import validate_packet
from repro.serving.hub import HubConfig, TrackingHub
from repro.trackers.registry import ensure_backend_name
from repro.serving.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    error_message,
    frame_message,
    metrics_message,
    packet_from_events_message,
    stats_message,
    summary_message,
    trace_message,
    welcome_message,
)

#: Sentinel that shuts a connection's writer thread down.
_WRITER_STOP = object()


class _SensorConnectionHandler(socketserver.StreamRequestHandler):
    """Speaks the JSONL protocol with one sensor client."""

    server: "_TcpServer"

    #: Outbound messages buffered per connection before frames are shed.
    SEND_QUEUE_CAPACITY = 512
    #: How long a control reply waits for queue room before giving up.
    CONTROL_SEND_TIMEOUT_S = 10.0

    def setup(self) -> None:
        super().setup()
        self.sensor_id: Optional[str] = None
        self.width = 240
        self.height = 180
        self._send_queue: "queue.Queue" = queue.Queue(maxsize=self.SEND_QUEUE_CAPACITY)
        self._writer = threading.Thread(
            target=self._writer_loop, name="sensor-connection-writer", daemon=True
        )
        self._writer.start()

    def handle(self) -> None:
        hub = self.server.hub
        try:
            for raw_line in self.rfile:
                try:
                    message = decode_message(raw_line)
                except ProtocolError as error:
                    self._send(error_message(str(error)))
                    continue
                try:
                    if not self._dispatch(hub, message):
                        return
                except ProtocolError as error:
                    self._send(error_message(str(error), self.sensor_id))
                except KeyError as error:
                    # The hub raises KeyError for a sensor it no longer
                    # knows (e.g. closed and removed by a racing path);
                    # reply instead of dropping the connection.
                    self._send(
                        error_message(
                            f"sensor is not registered: {error}", self.sensor_id
                        )
                    )
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            self._teardown(hub)

    def _teardown(self, hub: TrackingHub) -> None:
        """Flush + deregister the sensor and stop the writer thread."""
        if self.sensor_id is not None:
            try:
                # Idempotent: if the client already sent finish this just
                # returns the cached summary without double-counting.
                hub.close_sensor(self.sensor_id, timeout=60.0)
            except Exception:
                pass
            hub.remove_sensor(self.sensor_id)
            self.sensor_id = None
        self._send_queue.put(_WRITER_STOP)
        self._writer.join(timeout=5.0)

    def _dispatch(self, hub: TrackingHub, message: dict) -> bool:
        """Handle one message; return False to end the connection."""
        kind = message["type"]
        if kind == "hello":
            return self._on_hello(hub, message)
        # Monitoring commands are exempt from the hello handshake: a
        # scraper is not a sensor and must not have to register as one.
        if kind == "metrics":
            self._send(metrics_message(hub.metrics_text()))
            return True
        if kind == "trace":
            self._send(trace_message(hub.chrome_trace()))
            return True
        if self.sensor_id is None:
            raise ProtocolError("first message must be 'hello'")
        if kind == "events":
            packet = packet_from_events_message(message)
            try:
                validate_packet(packet, self.width, self.height)
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            hub.submit(self.sensor_id, packet)
            return True
        if kind == "stats":
            self._send(stats_message(hub.telemetry_dict()))
            return True
        if kind == "finish":
            result = hub.close_sensor(self.sensor_id)
            self._send(summary_message(result))
            return True
        raise ProtocolError(f"unknown message type {kind!r}")

    def _on_hello(self, hub: TrackingHub, message: dict) -> bool:
        if self.sensor_id is not None:
            raise ProtocolError("duplicate hello on this connection")
        sensor_id = message.get("sensor_id")
        if not isinstance(sensor_id, str) or not sensor_id:
            raise ProtocolError("hello must carry a non-empty string sensor_id")
        self.width = int(message.get("width", 240))
        self.height = int(message.get("height", 180))
        if self.width <= 0 or self.height <= 0:
            raise ProtocolError("hello width/height must be positive")
        # The declared resolution and tracker configure the sensor's
        # pipeline, so a non-DAVIS240 sensor gets correctly sized EBBI
        # frames and a sensor may request a baseline backend.
        pipeline_config = hub.config.pipeline_config
        if (self.width, self.height) != (pipeline_config.width, pipeline_config.height):
            pipeline_config = replace(
                pipeline_config, width=self.width, height=self.height
            )
        tracker = message.get("tracker")
        if tracker is not None:
            if not isinstance(tracker, str):
                raise ProtocolError("hello tracker must be a string backend name")
            try:
                ensure_backend_name(tracker)
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            if tracker != pipeline_config.tracker:
                pipeline_config = replace(pipeline_config, tracker=tracker)
        try:
            hub.register(sensor_id, config=pipeline_config, on_frames=self._on_frames)
        except ValueError as error:
            self._send(error_message(str(error), sensor_id))
            return False
        self.sensor_id = sensor_id
        self._send(
            welcome_message(
                frame_duration_us=pipeline_config.frame_duration_us,
                reorder_slack_us=hub.config.reorder_slack_us,
                width=self.width,
                height=self.height,
                tracker=pipeline_config.tracker,
            )
        )
        return True

    def _on_frames(self, sensor_id: str, frames: List[FrameResult]) -> None:
        """Hub worker-thread callback: enqueue closed frames for the writer."""
        for frame in frames:
            self._send(frame_message(sensor_id, frame), drop_ok=True)

    # -- outbound path -------------------------------------------------------------------

    def _send(self, message: dict, drop_ok: bool = False) -> None:
        """Enqueue one outbound message.

        ``drop_ok`` marks shed-able traffic (frame pushes): when the client
        reads too slowly and the queue is full, the frame is dropped rather
        than blocking the producing hub worker.  Control replies wait up to
        ``CONTROL_SEND_TIMEOUT_S`` and are then dropped too — at that point
        the connection is beyond saving and teardown will reap it.
        """
        try:
            if drop_ok:
                self._send_queue.put_nowait(message)
            else:
                self._send_queue.put(message, timeout=self.CONTROL_SEND_TIMEOUT_S)
        except queue.Full:
            pass

    def _writer_loop(self) -> None:
        """Single writer: drains the send queue onto the socket in order."""
        client_gone = False
        while True:
            message = self._send_queue.get()
            if message is _WRITER_STOP:
                return
            if client_gone:
                continue  # keep draining so producers never block
            try:
                self.wfile.write(encode_message(message))
                self.wfile.flush()
            except (OSError, ValueError):
                client_gone = True


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], hub: TrackingHub) -> None:
        super().__init__(address, _SensorConnectionHandler)
        self.hub = hub


class TrackingServer:
    """Lifecycle wrapper tying a TCP acceptor to a :class:`TrackingHub`.

    Parameters
    ----------
    host, port:
        Bind address; port 0 picks an ephemeral port (see :attr:`address`).
    hub_config:
        Configuration for the owned hub (ignored when ``hub`` is given).
    hub:
        An already-constructed hub to front — either a
        :class:`~repro.serving.hub.TrackingHub` or a
        :class:`~repro.serving.process_hub.ProcessTrackingHub`; both expose
        the same scheduling surface.  The server owns its lifecycle either
        way.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        hub_config: Optional[HubConfig] = None,
        hub=None,
    ) -> None:
        self.hub = hub if hub is not None else TrackingHub(hub_config)
        self._tcp = _TcpServer((host, port), self.hub)
        self._acceptor: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)``."""
        return self._tcp.server_address[:2]

    def start(self) -> "TrackingServer":
        """Start the hub workers and the acceptor thread (idempotent)."""
        if self._acceptor is None:
            self.hub.start()
            self._acceptor = threading.Thread(
                target=self._tcp.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="tracking-server-acceptor",
                daemon=True,
            )
            self._acceptor.start()
        return self

    def stop(self) -> None:
        """Stop accepting, close the socket, drain and stop the hub."""
        if self._acceptor is not None:
            self._tcp.shutdown()
            self._acceptor.join()
            self._acceptor = None
        self._tcp.server_close()
        self.hub.stop()

    def serve_forever(self) -> None:
        """Blocking variant for ``python -m repro.serving --serve``."""
        self.hub.start()
        try:
            self._tcp.serve_forever(poll_interval=0.2)
        finally:
            self._tcp.server_close()
            self.hub.stop()

    def __enter__(self) -> "TrackingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
