"""Online framing of live event batches into EBBI windows.

Batch replay (:meth:`~repro.core.pipeline.EbbiotPipeline.process_stream`)
sees the whole recording up front and can resolve every window boundary at
once.  A live sensor instead delivers events in small batches, possibly out
of order by a bounded amount (network reordering, per-chip readout skew).
:class:`OnlineFramer` reproduces the paper's interrupt-driven ``tF``
windowing under those conditions:

* incoming batches are spooled in an :class:`~repro.events.stream.EventBuffer`;
* a *watermark* trails the largest timestamp seen by ``reorder_slack_us``;
  a window ``[start, end)`` closes only once ``end <= watermark``, so any
  event delayed by at most the slack still lands in its correct window;
* events that arrive after their window closed (later than the slack allows)
  are dropped and counted — the explicit, bounded-loss policy a real
  ingestion node needs.

With in-order input (or disorder within the slack) the sequence of closed
windows is **identical** to what :meth:`EventStream.frame_index` produces
for the completed recording, which is the property the serving equivalence
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.events.stream import EventBuffer, frame_boundaries
from repro.events.types import empty_packet, normalize_packet


@dataclass(frozen=True)
class FramerSnapshot:
    """Complete live state of an :class:`OnlineFramer` at a batch boundary.

    Unlike :class:`~repro.serving.session.SessionSnapshot` (which round-trips
    only the pipeline and deliberately drops in-flight events), this captures
    the spool too, so a migrated session resumes with byte-identical output:
    pending events, watermark position, window cursor, and loss counters.
    """

    frame_duration_us: int
    reorder_slack_us: int
    t_origin_us: int
    next_window_start: int
    next_frame_index: int
    late_events: int
    events_accepted: int
    max_seen_t: Optional[int]
    pending_events: np.ndarray
    pending_ordered: bool


@dataclass(frozen=True)
class ClosedWindow:
    """One completed EBBI accumulation window emitted by the framer."""

    frame_index: int
    t_start_us: int
    t_end_us: int
    events: np.ndarray

    @property
    def num_events(self) -> int:
        """Number of events that landed in the window."""
        return len(self.events)


class OnlineFramer:
    """Turns an unordered live event feed into closed ``tF`` windows.

    Parameters
    ----------
    frame_duration_us:
        EBBI window length ``tF`` in microseconds.
    reorder_slack_us:
        Maximum tolerated arrival disorder: an event may arrive this much
        (stream-time) after later-stamped events and still be framed
        correctly.  Larger slack delays window closure by the same amount.
    t_origin_us:
        Start of the first window; 0 aligns windows with the batch
        pipeline's ``align_to_zero=True`` grid.
    """

    def __init__(
        self,
        frame_duration_us: int = 66_000,
        reorder_slack_us: int = 5_000,
        t_origin_us: int = 0,
    ) -> None:
        if frame_duration_us <= 0:
            raise ValueError(
                f"frame_duration_us must be positive, got {frame_duration_us}"
            )
        if reorder_slack_us < 0:
            raise ValueError(
                f"reorder_slack_us must be non-negative, got {reorder_slack_us}"
            )
        self.frame_duration_us = frame_duration_us
        self.reorder_slack_us = reorder_slack_us
        self.t_origin_us = t_origin_us
        self._buffer = EventBuffer()
        self._next_window_start = t_origin_us
        self._next_frame_index = 0
        self._late_events = 0
        self._events_accepted = 0

    # -- state ---------------------------------------------------------------------------

    @property
    def frames_closed(self) -> int:
        """Number of windows closed so far."""
        return self._next_frame_index

    @property
    def late_events(self) -> int:
        """Events dropped because their window had already closed."""
        return self._late_events

    @property
    def events_accepted(self) -> int:
        """Events accepted into the buffer (excludes late drops)."""
        return self._events_accepted

    @property
    def events_pending(self) -> int:
        """Events buffered but not yet emitted in a closed window."""
        return len(self._buffer)

    @property
    def watermark_us(self) -> Optional[int]:
        """Current watermark (largest seen timestamp minus the slack)."""
        if self._buffer.max_seen_t is None:
            return None
        return self._buffer.max_seen_t - self.reorder_slack_us

    # -- ingestion -----------------------------------------------------------------------

    def append(self, events: np.ndarray) -> List[ClosedWindow]:
        """Ingest one batch and return any windows it allowed to close."""
        events = normalize_packet(events)
        if len(events):
            late = events["t"] < self._next_window_start
            num_late = int(late.sum())
            if num_late:
                self._late_events += num_late
                events = events[~late]
            self._events_accepted += len(events)
            self._buffer.append(events)
        return self._close_through(self.watermark_us)

    def flush(self) -> List[ClosedWindow]:
        """Close every window needed to cover the buffered events.

        Call at end of stream; afterwards the framer is ready for a new
        recording starting at the next window boundary.
        """
        max_seen = self._buffer.max_seen_t
        if max_seen is None or max_seen < self._next_window_start:
            return []
        return self._close_through(max_seen + 1, force=True)

    # -- migration -----------------------------------------------------------------------

    def snapshot(self) -> FramerSnapshot:
        """Capture the full live state (spool included) for migration."""
        return FramerSnapshot(
            frame_duration_us=self.frame_duration_us,
            reorder_slack_us=self.reorder_slack_us,
            t_origin_us=self.t_origin_us,
            next_window_start=self._next_window_start,
            next_frame_index=self._next_frame_index,
            late_events=self._late_events,
            events_accepted=self._events_accepted,
            max_seen_t=self._buffer.max_seen_t,
            pending_events=self._buffer.pending_packet(),
            pending_ordered=self._buffer.is_ordered,
        )

    def restore(self, snapshot: FramerSnapshot) -> None:
        """Resume from a :meth:`snapshot`; future output is byte-identical."""
        if snapshot.frame_duration_us != self.frame_duration_us:
            raise ValueError(
                f"snapshot frame_duration_us {snapshot.frame_duration_us} != "
                f"framer frame_duration_us {self.frame_duration_us}"
            )
        self.reorder_slack_us = snapshot.reorder_slack_us
        self.t_origin_us = snapshot.t_origin_us
        self._next_window_start = snapshot.next_window_start
        self._next_frame_index = snapshot.next_frame_index
        self._late_events = snapshot.late_events
        self._events_accepted = snapshot.events_accepted
        self._buffer.restore(
            snapshot.pending_events,
            snapshot.max_seen_t,
            ordered=snapshot.pending_ordered,
        )

    # -- internals -----------------------------------------------------------------------

    def _close_through(
        self, horizon_us: Optional[int], force: bool = False
    ) -> List[ClosedWindow]:
        """Close all windows with ``end <= horizon`` (``end > horizon`` too
        for the final forced window of a flush)."""
        if horizon_us is None:
            return []
        span = horizon_us - self._next_window_start
        if force:
            num_windows = -(-span // self.frame_duration_us)
        else:
            num_windows = span // self.frame_duration_us
        if num_windows <= 0:
            return []
        last_end = self._next_window_start + num_windows * self.frame_duration_us
        drained = self._buffer.drain_until(last_end)
        if len(drained) == 0:
            drained = empty_packet()
        edges, splits = frame_boundaries(
            drained["t"], self.frame_duration_us, self._next_window_start, last_end
        )
        windows = [
            ClosedWindow(
                frame_index=self._next_frame_index + i,
                t_start_us=int(edges[i]),
                t_end_us=int(edges[i + 1]),
                events=drained[splits[i] : splits[i + 1]],
            )
            for i in range(len(edges) - 1)
        ]
        self._next_frame_index += len(windows)
        self._next_window_start = last_end
        return windows
