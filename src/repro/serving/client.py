"""Sensor-side client for the JSONL tracking server.

:class:`SensorClient` is a thin synchronous wrapper around one TCP
connection: it performs the ``hello``/``welcome`` handshake, sends event
batches, and collects the asynchronously arriving ``frame`` messages on a
background reader thread (so a fast sender can never deadlock against a
server blocked on a full socket buffer).

:func:`stream_recording` is the convenience used by the demo, tests and CI
smoke job: replay one :class:`~repro.events.stream.EventStream` as
timestamped batches — optionally throttled to sensor real time — and return
the frames and the server's summary.
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.events.stream import EventStream, frame_boundaries
from repro.serving.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    events_message,
    hello_message,
)


class SensorClient:
    """One sensor's connection to a :class:`~repro.serving.server.TrackingServer`.

    Parameters
    ----------
    host, port:
        Server address.
    sensor_id:
        Identifier announced in the handshake; must be unique per server.
    width, height:
        Sensor resolution announced in the handshake.
    tracker:
        Optional tracker backend requested in the handshake (registry name,
        e.g. ``"kalman"``); ``None`` accepts the server's default.
    timeout_s:
        Socket and reply-wait timeout.
    """

    def __init__(
        self,
        host: str,
        port: int,
        sensor_id: str,
        width: int = 240,
        height: int = 180,
        tracker: Optional[str] = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.sensor_id = sensor_id
        self.timeout_s = timeout_s
        self._socket = socket.create_connection((host, port), timeout=timeout_s)
        self._rfile = self._socket.makefile("rb")
        self._wfile = self._socket.makefile("wb")
        self.frames: List[dict] = []
        self._replies: "queue.Queue[dict]" = queue.Queue()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"sensor-client-{sensor_id}", daemon=True
        )
        self._send(hello_message(sensor_id, width, height, tracker=tracker))
        self._reader.start()
        self.welcome = self._await_reply("welcome")

    # -- wire helpers --------------------------------------------------------------------

    def _send(self, message: dict) -> None:
        self._wfile.write(encode_message(message))
        self._wfile.flush()

    def _read_loop(self) -> None:
        try:
            for line in self._rfile:
                message = decode_message(line)
                if message["type"] == "frame":
                    self.frames.append(message)
                else:
                    self._replies.put(message)
        except (OSError, ValueError):
            pass
        # Wake any reply waiter when the connection dies.
        self._replies.put({"type": "closed"})

    def _await_reply(self, expected: str) -> dict:
        while True:
            try:
                message = self._replies.get(timeout=self.timeout_s)
            except queue.Empty:
                raise TimeoutError(
                    f"no {expected!r} reply within {self.timeout_s:.0f}s"
                ) from None
            if message["type"] == expected:
                return message
            if message["type"] == "error":
                raise ProtocolError(message.get("message", "server error"))
            if message["type"] == "closed":
                raise ConnectionError("server closed the connection")
            # Unrelated reply (e.g. stats answered out of order): requeue is
            # unnecessary — replies are strictly request-ordered per client.

    # -- protocol operations -------------------------------------------------------------

    def send_events(self, events: np.ndarray) -> None:
        """Send one batch of events (any order within the reorder slack)."""
        self._send(events_message(events))

    def request_stats(self) -> dict:
        """Fetch the server's telemetry snapshot."""
        self._send({"type": "stats"})
        return self._await_reply("stats")["telemetry"]

    def request_metrics(self) -> str:
        """Fetch the server's metrics as Prometheus text exposition."""
        self._send({"type": "metrics"})
        return self._await_reply("metrics")["exposition"]

    def request_trace(self) -> Optional[dict]:
        """Fetch the server's Chrome trace (``None`` if not instrumented)."""
        self._send({"type": "trace"})
        return self._await_reply("trace")["trace"]

    def finish(self) -> dict:
        """Declare end of stream; returns the server's recording summary."""
        self._send({"type": "finish"})
        return self._await_reply("summary")["recording"]

    def close(self) -> None:
        """Close the connection (reader thread exits on EOF)."""
        try:
            self._socket.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._socket.close()

    def __enter__(self) -> "SensorClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _monitoring_request(host: str, port: int, kind: str, timeout_s: float) -> dict:
    """One-shot monitoring exchange: connect, ask, read one reply, hang up.

    No ``hello`` — the ``metrics``/``trace`` commands are exempt from the
    sensor handshake, so a scraper needs neither a sensor id nor a session.
    """
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        with sock.makefile("rwb") as handle:
            handle.write(encode_message({"type": kind}))
            handle.flush()
            line = handle.readline()
    if not line:
        raise ConnectionError("server closed the connection without replying")
    reply = decode_message(line)
    if reply["type"] == "error":
        raise ProtocolError(reply.get("message", "server error"))
    if reply["type"] != kind:
        raise ProtocolError(f"expected {kind!r} reply, got {reply['type']!r}")
    return reply


def scrape_metrics(host: str, port: int, timeout_s: float = 10.0) -> str:
    """Scrape a live server's Prometheus text exposition (no handshake).

    What a Prometheus exporter bridge or the CI obs-smoke job calls; pair
    with :func:`repro.obs.parse_prometheus_text` to consume the result.
    """
    return _monitoring_request(host, port, "metrics", timeout_s)["exposition"]


def fetch_trace(host: str, port: int, timeout_s: float = 10.0) -> Optional[dict]:
    """Fetch a live server's Chrome trace (``None`` if not instrumented)."""
    return _monitoring_request(host, port, "trace", timeout_s)["trace"]


def stream_recording(
    host: str,
    port: int,
    sensor_id: str,
    stream: EventStream,
    batch_duration_us: int = 16_500,
    realtime: bool = False,
    speed: Optional[float] = None,
    tracker: Optional[str] = None,
) -> Tuple[List[dict], dict]:
    """Replay one recording to the server as timestamped batches.

    Parameters
    ----------
    host, port, sensor_id:
        Connection parameters (see :class:`SensorClient`).
    stream:
        The recording to replay.
    batch_duration_us:
        Stream-time span of each batch; the default sends four batches per
        66 ms EBBI window, matching a sensor driver that drains its FIFO a
        few times per frame.
    realtime:
        When ``True`` the replay is paced to sensor real time (shorthand
        for ``speed=1.0``); ``False`` sends as fast as possible (tests,
        benchmarks).
    speed:
        Replay speed factor for paced replay of disk recordings: ``1.0``
        is sensor real time, ``2.0`` twice as fast, ``0.5`` half speed.
        Overrides ``realtime``.  Pacing is drift-corrected — each batch is
        released when its *stream-time* end is due on the wall clock, so
        slow sends do not accumulate lag the way per-batch sleeps would.
    tracker:
        Optional tracker backend requested for this sensor (see
        :class:`SensorClient`).

    Returns
    -------
    (frames, summary)
        The ``frame`` messages received and the final recording summary.
    """
    if batch_duration_us <= 0:
        raise ValueError(f"batch_duration_us must be positive, got {batch_duration_us}")
    if speed is None and realtime:
        speed = 1.0
    if speed is not None and speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    with SensorClient(
        host,
        port,
        sensor_id,
        width=stream.width,
        height=stream.height,
        tracker=tracker,
    ) as client:
        events = stream.events
        if len(events):
            # Batch edges stay on the absolute batch_duration_us grid, but
            # start at the first event's window so a recording with a large
            # epoch offset does not produce millions of empty leading batches.
            grid_start = (int(events["t"][0]) // batch_duration_us) * batch_duration_us
            edges, splits = frame_boundaries(
                events["t"], batch_duration_us, grid_start, int(events["t"][-1]) + 1
            )
            started_wall = time.monotonic()
            # Pace relative to the first event, not t = 0: recorded files
            # carry arbitrary epoch offsets (a jAER timestamp an hour into
            # the sensor's uptime must not stall the replay for an hour).
            t0_stream = int(events["t"][0])
            for i in range(len(edges) - 1):
                batch = events[splits[i] : splits[i + 1]]
                if len(batch) == 0:
                    continue
                if speed is not None:
                    due = (int(edges[i + 1]) - t0_stream) * 1e-6 / speed
                    delay = due - (time.monotonic() - started_wall)
                    if delay > 0:
                        time.sleep(delay)
                client.send_events(batch)
        summary = client.finish()
        return list(client.frames), summary
