"""Asyncio JSONL-over-TCP front door for the tracking hubs.

Byte-compatible with the threaded :class:`~repro.serving.server.TrackingServer`
— same :mod:`~repro.serving.protocol` lines, same handshake, same replies —
but connections are coroutines on one event loop instead of two threads
each.  At fleet scale that changes the front door's cost model: accepting
sensor number 500 adds a reader task and a bounded send queue, not two OS
threads, and a stalled client parks a coroutine rather than blocking a
stack.

The event-loop thread must never block, which dictates the three seams:

* **ingest** goes through :meth:`hub.try_submit`, which refuses instead of
  parking when the shard is saturated; under the ``"block"`` policy the
  handler then backs off with ``await asyncio.sleep`` (applying
  backpressure to this sensor's TCP stream while other connections keep
  flowing — replacing the blocked thread of the threaded server).  Under
  ``"drop"`` the refusal is final and counted, exactly like the threaded
  server.  Rebalance evaluation never runs on the submit path either —
  both hubs hand it to a dedicated rebalancer thread, so a submit can at
  worst briefly contend a shard lock, never wait out a migration.
* **slow calls** — ``close_sensor`` flushes, ``metrics`` scrapes worker
  processes — run in the default executor via :func:`asyncio.to_thread`.
* **frame pushes** arrive on hub worker/pump threads; the callback hops
  them onto the loop with ``call_soon_threadsafe`` into the connection's
  bounded queue, shedding frames when the client reads too slowly (control
  replies instead wait for room).  A dedicated writer task per connection
  drains the queue onto the socket in order.

The server fronts either hub flavour (pass ``hub=ProcessTrackingHub(...)``)
and drives the loop on a background thread, so its lifecycle API stays
synchronous and interchangeable with the threaded server's.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import replace
from typing import List, Optional, Tuple

from repro.core.pipeline import FrameResult
from repro.events.types import validate_packet
from repro.serving.hub import HubConfig, TrackingHub
from repro.serving.protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    error_message,
    frame_message,
    metrics_message,
    packet_from_events_message,
    stats_message,
    summary_message,
    trace_message,
    welcome_message,
)
from repro.trackers.registry import ensure_backend_name

#: Outbound messages buffered per connection before frame pushes are shed.
SEND_QUEUE_CAPACITY = 512

#: Sentinel that ends a connection's writer task.
_WRITER_STOP = object()

#: try_submit backoff bounds (seconds) under the ``"block"`` policy.
_BACKOFF_MIN_S = 1e-4
_BACKOFF_MAX_S = 1e-2


class _Connection:
    """Per-connection protocol state (one live sensor, or a monitor)."""

    def __init__(self, server: "AsyncTrackingServer", writer: asyncio.StreamWriter):
        self.server = server
        self.hub = server.hub
        self.loop = asyncio.get_running_loop()
        self.sensor_id: Optional[str] = None
        self.width = 240
        self.height = 180
        self.send_queue: "asyncio.Queue" = asyncio.Queue(maxsize=SEND_QUEUE_CAPACITY)
        self._raw_writer = writer
        self.writer_task = asyncio.ensure_future(self._writer_loop(writer))

    def abort(self) -> None:
        """Server-shutdown path: close the transport so the reader sees EOF."""
        try:
            self._raw_writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass

    # -- outbound ------------------------------------------------------------------------

    async def send(self, message: dict) -> None:
        """Queue a control reply, waiting for room if the queue is full."""
        await self.send_queue.put(message)

    def offer(self, message: dict) -> None:
        """Queue a shed-able frame push; drop it when the queue is full."""
        try:
            self.send_queue.put_nowait(message)
        except asyncio.QueueFull:
            pass

    def on_frames(self, sensor_id: str, frames: List[FrameResult]) -> None:
        """Hub worker/pump-thread callback: hop frames onto the event loop."""
        for frame in frames:
            message = frame_message(sensor_id, frame)
            try:
                self.loop.call_soon_threadsafe(self.offer, message)
            except RuntimeError:
                return  # loop already closed; connection is being torn down

    async def _writer_loop(self, writer: asyncio.StreamWriter) -> None:
        client_gone = False
        while True:
            message = await self.send_queue.get()
            if message is _WRITER_STOP:
                break
            if client_gone:
                continue  # keep draining so senders never stall on STOP
            try:
                writer.write(encode_message(message))
                await writer.drain()
            except (ConnectionError, OSError):
                client_gone = True
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    # -- inbound -------------------------------------------------------------------------

    async def dispatch(self, message: dict) -> bool:
        """Handle one message; ``False`` ends the connection."""
        hub = self.hub
        kind = message["type"]
        if kind == "hello":
            return await self._on_hello(message)
        # Monitoring commands skip the handshake, same as the threaded server.
        if kind == "metrics":
            text = await asyncio.to_thread(hub.metrics_text)
            await self.send(metrics_message(text))
            return True
        if kind == "trace":
            trace = await asyncio.to_thread(hub.chrome_trace)
            await self.send(trace_message(trace))
            return True
        if self.sensor_id is None:
            raise ProtocolError("first message must be 'hello'")
        if kind == "events":
            packet = packet_from_events_message(message)
            try:
                validate_packet(packet, self.width, self.height)
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            await self._ingest(packet)
            return True
        if kind == "stats":
            telemetry = await asyncio.to_thread(hub.telemetry_dict)
            await self.send(stats_message(telemetry))
            return True
        if kind == "finish":
            result = await asyncio.to_thread(hub.close_sensor, self.sensor_id)
            await self.send(summary_message(result))
            return True
        raise ProtocolError(f"unknown message type {kind!r}")

    async def _ingest(self, packet) -> None:
        hub = self.hub
        if hub.config.backpressure == "drop":
            # Non-blocking either way; a refused batch is counted as shed.
            hub.submit(self.sensor_id, packet)
            return
        delay = _BACKOFF_MIN_S
        while not hub.try_submit(self.sensor_id, packet):
            await asyncio.sleep(delay)
            delay = min(delay * 2, _BACKOFF_MAX_S)

    async def _on_hello(self, message: dict) -> bool:
        hub = self.hub
        if self.sensor_id is not None:
            raise ProtocolError("duplicate hello on this connection")
        sensor_id = message.get("sensor_id")
        if not isinstance(sensor_id, str) or not sensor_id:
            raise ProtocolError("hello must carry a non-empty string sensor_id")
        self.width = int(message.get("width", 240))
        self.height = int(message.get("height", 180))
        if self.width <= 0 or self.height <= 0:
            raise ProtocolError("hello width/height must be positive")
        pipeline_config = hub.config.pipeline_config
        if (self.width, self.height) != (pipeline_config.width, pipeline_config.height):
            pipeline_config = replace(
                pipeline_config, width=self.width, height=self.height
            )
        tracker = message.get("tracker")
        if tracker is not None:
            if not isinstance(tracker, str):
                raise ProtocolError("hello tracker must be a string backend name")
            try:
                ensure_backend_name(tracker)
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            if tracker != pipeline_config.tracker:
                pipeline_config = replace(pipeline_config, tracker=tracker)
        try:
            # register blocks on the hub's control path (the process hub
            # does a ring put with a long timeout) — keep it off the loop.
            await asyncio.to_thread(
                hub.register,
                sensor_id,
                config=pipeline_config,
                on_frames=self.on_frames,
            )
        except ValueError as error:
            await self.send(error_message(str(error), sensor_id))
            return False
        self.sensor_id = sensor_id
        await self.send(
            welcome_message(
                frame_duration_us=pipeline_config.frame_duration_us,
                reorder_slack_us=hub.config.reorder_slack_us,
                width=self.width,
                height=self.height,
                tracker=pipeline_config.tracker,
            )
        )
        return True

    # -- teardown ------------------------------------------------------------------------

    async def teardown(self) -> None:
        """Flush + deregister the sensor, then stop the writer task."""
        if self.sensor_id is not None:
            sensor_id, self.sensor_id = self.sensor_id, None
            try:
                await asyncio.to_thread(self.hub.close_sensor, sensor_id, 60.0)
            except Exception:
                pass
            self.hub.remove_sensor(sensor_id)
        await self.send_queue.put(_WRITER_STOP)
        try:
            await asyncio.wait_for(self.writer_task, timeout=5.0)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self.writer_task.cancel()


class AsyncTrackingServer:
    """Asyncio front door owning a tracking hub (thread or process flavour).

    The public lifecycle mirrors :class:`~repro.serving.server.TrackingServer`
    (``start``/``stop``/``serve_forever``/``address``/context manager), so
    existing clients and tests drive either server unchanged.  The event
    loop runs on a background thread; the calling thread stays synchronous.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        hub_config: Optional[HubConfig] = None,
        hub=None,
    ) -> None:
        self.hub = hub if hub is not None else TrackingHub(hub_config)
        self._host = host
        self._port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None
        self._connections: set = set()

    @property
    def address(self) -> Tuple[str, int]:
        """The actually bound ``(host, port)``."""
        if self._address is None:
            raise RuntimeError("server is not started")
        return self._address

    # -- event-loop side -----------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        connection = _Connection(self, writer)
        self._connections.add(connection)
        try:
            while True:
                try:
                    raw_line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not raw_line:
                    break
                try:
                    message = decode_message(raw_line)
                except ProtocolError as error:
                    await connection.send(error_message(str(error)))
                    continue
                try:
                    if not await connection.dispatch(message):
                        break
                except ProtocolError as error:
                    await connection.send(
                        error_message(str(error), connection.sensor_id)
                    )
                except KeyError as error:
                    # The hub raises KeyError for a sensor it no longer
                    # knows (e.g. closed and removed by a racing path).
                    # Reply with an error instead of unwinding the handler
                    # and dropping the connection without explanation.
                    await connection.send(
                        error_message(
                            f"sensor is not registered: {error}",
                            connection.sensor_id,
                        )
                    )
        finally:
            try:
                await connection.teardown()
            finally:
                self._connections.discard(connection)

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._handle, self._host, self._port
            )
        except OSError as error:
            self._startup_error = error
            self._ready.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._ready.set()
        async with server:
            await self._stop_event.wait()
        # Drop live connections by closing their transports: each handler's
        # readline sees EOF and runs its normal teardown (flush + deregister)
        # rather than being cancelled mid-protocol.
        for connection in list(self._connections):
            connection.abort()
        deadline = 10.0
        while self._connections and deadline > 0:
            await asyncio.sleep(0.05)
            deadline -= 0.05

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            # Let any straggler tasks unwind before closing the loop.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    # -- lifecycle -----------------------------------------------------------------------

    def start(self) -> "AsyncTrackingServer":
        """Start the hub and the event-loop thread (idempotent)."""
        if self._thread is not None:
            return self
        self.hub.start()
        self._ready.clear()
        self._startup_error = None
        self._thread = threading.Thread(
            target=self._run_loop, name="tracking-aio-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=5.0)
            self._thread = None
            self.hub.stop()
            raise error
        return self

    def stop(self) -> None:
        """Stop accepting, close connections, drain and stop the hub."""
        if self._thread is not None:
            if self._loop is not None and self._stop_event is not None:
                try:
                    self._loop.call_soon_threadsafe(self._stop_event.set)
                except RuntimeError:
                    pass
            self._thread.join(timeout=10.0)
            self._thread = None
            self._loop = None
            self._address = None
        self.hub.stop()

    def serve_forever(self) -> None:
        """Blocking variant for ``python -m repro.serving --serve``."""
        self.start()
        try:
            while self._thread is not None and self._thread.is_alive():
                self._thread.join(timeout=1.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "AsyncTrackingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
