"""Shared-memory event transport between the hub and its shard processes.

The process hub moves event batches to workers through a single-producer /
single-consumer ring buffer in POSIX shared memory
(:class:`multiprocessing.shared_memory.SharedMemory`): the parent packs each
batch's raw ``EVENT_DTYPE`` bytes into the ring with a small record header,
the worker drains **every** available record in one scan.  That bulk drain
is the architectural point, not just a copy-avoidance trick: a busy shard
naturally finds a backlog of records per scan, and handing the whole
backlog to :meth:`~repro.serving.session.SensorSession.ingest_many`
amortises the per-batch Python overhead a queue-per-item design pays — see
``BENCH_serving_scale.json``.

Layout (offsets in bytes)::

    0    head      u64  — consumer read cursor (bytes, monotonically grows)
    64   tail      u64  — producer write cursor
    128  records_in  u64 — records ever enqueued   (producer-owned)
    192  records_out u64 — records ever dequeued   (consumer-owned)
    256  busy_ns   u64  — worker busy time (worker-owned stats slot)
    320  data[capacity]

Cursors sit on their own cache lines so producer and consumer stores do not
false-share.  Each record is ``<u32 len><u8 kind><u32 sensor_idx><f64
enqueued_at>`` followed by ``len`` payload bytes; a length of ``0xFFFFFFFF``
is a wrap marker (the rest of the ring up to the end is dead space and the
record restarts at offset 0).  Cursor *publication* is synchronised by one
shared :class:`multiprocessing.Lock`: plain byte stores into shared memory
(``struct.pack_into`` compiles to a memcpy) guarantee neither atomicity nor
cross-CPU ordering, so on a weakly-ordered machine (aarch64) the consumer
could otherwise observe a tail advance before the header/payload bytes it
publishes are visible.  The producer writes a record's bytes first and
stores the tail under the lock; the consumer loads the tail under the same
lock before touching the bytes — the release/acquire pairing of the lock
is what carries the payload across.  The lock is uncontended in steady
state (SPSC; it is held for two 8-byte stores) and replaces nothing on the
fast path: the producer still runs from its cached cursors and only takes
the lock once per record plus once per full-looking refresh.

``enqueued_at`` carries the producer's ``time.perf_counter()`` timestamp:
on Linux that is ``CLOCK_MONOTONIC``, which is comparable across processes,
so the worker's frame-latency histogram measures true queue+processing
delay the same way the thread hub does.

:class:`PipeRing` is the plain-``multiprocessing.Pipe`` fallback for
environments without usable shared memory (``/dev/shm`` mounted ``noexec``
or absent); it exposes the same API, including the bulk drain and the
bounded non-blocking :meth:`~PipeRing.try_put`, at the cost of one kernel
round-trip per record.
"""

from __future__ import annotations

import select
import struct
import time
from typing import List, NamedTuple, Optional

_HEAD_OFF = 0
_TAIL_OFF = 64
_IN_OFF = 128
_OUT_OFF = 192
_BUSY_OFF = 256
_DATA_OFF = 320

_HDR = struct.Struct("<IBId")  # len, kind, sensor_idx, enqueued_at
_WRAP = 0xFFFFFFFF
_U64 = struct.Struct("<Q")

#: In-band record kinds.  Everything that must stay ordered with a sensor's
#: event batches travels through the ring; out-of-band control (metric
#: scrapes, migration envelopes) uses the worker's command pipe.
KIND_EVENTS = 0
KIND_REGISTER = 1
KIND_CLOSE = 2
KIND_MIGRATE_OUT = 3
KIND_MIGRATE_IN = 4
KIND_STOP = 5


class Record(NamedTuple):
    """One dequeued transport record.

    A ``NamedTuple`` rather than a dataclass: the consumer creates one per
    drained record on the hot path, and tuple construction is several
    times cheaper.
    """

    kind: int
    sensor_idx: int
    enqueued_at: float
    payload: bytes


class RingFull(Exception):
    """Raised by :meth:`ShmRing.put` when the timeout elapses ring-full."""


class ShmRing:
    """SPSC byte ring in shared memory carrying event-batch records.

    Exactly one producer (the hub process) and one consumer (the shard
    worker) may use a ring; per-sensor batch ordering follows from that
    plus the hub's shard map.  The parent creates the ring before forking;
    the worker inherits the mapping (fork start method), so no name-based
    re-attach — and none of the resource-tracker double-unlink issues that
    come with it — is involved.
    """

    def __init__(self, capacity_bytes: int = 1 << 20, name: Optional[str] = None):
        from multiprocessing import shared_memory

        if capacity_bytes < 4096:
            raise ValueError(
                f"capacity_bytes must be >= 4096, got {capacity_bytes}"
            )
        self._capacity = int(capacity_bytes)
        # The cursor-publication lock (see the module docstring).  A fork
        # context so the worker inherits the same semaphore; platforms
        # without fork cannot run the process hub anyway, and make_ring
        # turns the ValueError into a PipeRing fallback.
        import multiprocessing

        self._lock = multiprocessing.get_context("fork").Lock()
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=_DATA_OFF + self._capacity
        )
        self._buf = self._shm.buf
        for off in (_HEAD_OFF, _TAIL_OFF, _IN_OFF, _OUT_OFF, _BUSY_OFF):
            _U64.pack_into(self._buf, off, 0)
        # Producer-side cursor cache.  The producer is the only writer of
        # tail/records_in, so it can keep them in plain Python ints and
        # mirror each store to shared memory; the consumer's head cursor is
        # re-read only when the cached (conservative) snapshot says the
        # record might not fit.  This halves the struct round-trips on the
        # submit hot path.
        self._tail_cache = 0
        self._in_cache = 0
        self._head_cache = 0
        self._closed = False

    # -- cursor helpers ------------------------------------------------------------------

    def _read_u64(self, off: int) -> int:
        return _U64.unpack_from(self._buf, off)[0]

    def _write_u64(self, off: int, value: int) -> None:
        _U64.pack_into(self._buf, off, value)

    @property
    def capacity_bytes(self) -> int:
        """Usable data capacity of the ring."""
        return self._capacity

    def depth(self) -> int:
        """Records currently enqueued but not yet consumed.

        Readable from either side (the counters are read under the cursor
        lock, so an 8-byte value can never tear); this is what the hub
        exports as the ``repro_shard_queue_depth`` gauge and feeds to the
        rebalancer.
        """
        with self._lock:
            return max(0, self._read_u64(_IN_OFF) - self._read_u64(_OUT_OFF))

    def busy_seconds(self) -> float:
        """Worker-reported cumulative busy time (see :meth:`add_busy`)."""
        with self._lock:
            return self._read_u64(_BUSY_OFF) * 1e-9

    def add_busy(self, seconds: float) -> None:
        """Worker-side: accumulate busy time into the shared stats slot."""
        with self._lock:
            self._write_u64(
                _BUSY_OFF, self._read_u64(_BUSY_OFF) + int(seconds * 1e9)
            )

    # -- producer ------------------------------------------------------------------------

    def try_put(
        self,
        kind: int,
        sensor_idx: int,
        payload: bytes,
        enqueued_at: Optional[float] = None,
    ) -> bool:
        """Enqueue one record; ``False`` (without blocking) if it cannot fit."""
        need = _HDR.size + len(payload)
        if need + _HDR.size > self._capacity:
            raise ValueError(
                f"record of {need} bytes can never fit a "
                f"{self._capacity}-byte ring"
            )
        tail = self._tail_cache
        pos = tail % self._capacity
        tail_room = self._capacity - pos
        wrap = tail_room < need + _HDR.size
        # A wrap burns the rest of the ring (marker + dead space) and the
        # record must then also fit at the start without catching head.
        # Keep one header's worth of slack so tail never exactly catches
        # head with a full buffer (full vs empty ambiguity).
        required = tail_room + need if wrap else need + _HDR.size
        if self._capacity - (tail - self._head_cache) < required:
            # The conservative head snapshot says full — refresh it from
            # shared memory (the consumer may have drained meanwhile).
            # Under the lock: pairs with the consumer's locked head store,
            # so a freed region is fully copied out before we reuse it.
            with self._lock:
                self._head_cache = self._read_u64(_HEAD_OFF)
            if self._capacity - (tail - self._head_cache) < required:
                return False
        if enqueued_at is None:
            enqueued_at = time.perf_counter()
        if wrap:
            _HDR.pack_into(self._buf, _DATA_OFF + pos, _WRAP, 0, 0, 0.0)
            tail += tail_room
            pos = 0
        _HDR.pack_into(self._buf, _DATA_OFF + pos, len(payload), kind, sensor_idx, enqueued_at)
        if payload:
            start = _DATA_OFF + pos + _HDR.size
            self._buf[start : start + len(payload)] = payload
        self._tail_cache = tail + need
        self._in_cache += 1
        # Publication barrier: the record's bytes above must be visible
        # before the consumer can observe this tail advance.
        with self._lock:
            self._write_u64(_TAIL_OFF, self._tail_cache)
            self._write_u64(_IN_OFF, self._in_cache)
        return True

    def put(
        self,
        kind: int,
        sensor_idx: int,
        payload: bytes,
        timeout: Optional[float] = None,
    ) -> None:
        """Blocking :meth:`try_put` with exponential backoff.

        Raises :class:`RingFull` if ``timeout`` elapses — the producer-side
        backpressure of the ``"block"`` policy.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        delay = 20e-6
        while not self.try_put(kind, sensor_idx, payload):
            if deadline is not None and time.perf_counter() >= deadline:
                raise RingFull(
                    f"ring full ({self.depth()} records) after {timeout}s"
                )
            time.sleep(delay)
            delay = min(delay * 2, 2e-3)

    # -- consumer ------------------------------------------------------------------------

    def get_available(self, max_records: int = 0) -> List[Record]:
        """Dequeue every record currently in the ring (the bulk drain).

        ``max_records`` bounds one drain (0 = unbounded) so a worker under
        storm conditions still interleaves command-pipe polls.  Payload
        bytes are copied out before the head cursor advances, so the
        producer can never overwrite a record the consumer still holds.
        (They stay ``bytes`` on purpose: the shard worker joins a whole
        coalesced group and decodes it with a *single* ``frombuffer`` —
        per-record numpy wrappers cost more than the raw byte copies.)
        """
        head = self._read_u64(_HEAD_OFF)
        # Acquiring the lock pairs with the producer's locked tail store:
        # every record byte published before this tail value is visible.
        with self._lock:
            tail = self._read_u64(_TAIL_OFF)
        records: List[Record] = []
        while head < tail:
            if max_records and len(records) >= max_records:
                break
            pos = head % self._capacity
            length, kind, sensor_idx, enqueued_at = _HDR.unpack_from(
                self._buf, _DATA_OFF + pos
            )
            if length == _WRAP:
                head += self._capacity - pos
                continue
            start = _DATA_OFF + pos + _HDR.size
            payload = bytes(self._buf[start : start + length])
            records.append(Record(kind, sensor_idx, enqueued_at, payload))
            head += _HDR.size + length
        if records:
            with self._lock:
                self._write_u64(_HEAD_OFF, head)
                self._write_u64(
                    _OUT_OFF, self._read_u64(_OUT_OFF) + len(records)
                )
        elif head != self._read_u64(_HEAD_OFF):
            # Only wrap markers were consumed.
            with self._lock:
                self._write_u64(_HEAD_OFF, head)
        return records

    # -- lifecycle -----------------------------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        """Release the mapping; ``unlink=True`` (creator only) removes it."""
        if self._closed:
            return
        self._closed = True
        self._buf = None
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass


class PipeRing:
    """Same record API as :class:`ShmRing` over a ``multiprocessing.Pipe``.

    The fallback transport when shared memory is unavailable.  ``depth``
    and busy time are tracked through shared counters instead of header
    slots; a drain pulls everything the pipe currently holds, so the
    worker's coalescing fast path behaves identically.

    :meth:`try_put` keeps the ShmRing's non-blocking contract — and
    therefore the ``"drop"`` policy's shed semantics — by refusing when
    the bookkept in-flight bytes exceed ``capacity_bytes`` *or* when the
    OS pipe buffer has no room (``Connection.send`` would otherwise park
    the caller behind a stalled worker).  One residual gap: a record
    larger than the free pipe-buffer space blocks in ``send`` until the
    consumer drains — unavoidable without reimplementing framing on a
    non-blocking fd, and only reachable when the worker has already
    wedged mid-record.
    """

    def __init__(self, context=None, capacity_bytes: int = 1 << 20) -> None:
        import multiprocessing

        ctx = context or multiprocessing.get_context("fork")
        self._capacity = int(capacity_bytes)
        self._rx, self._tx = ctx.Pipe(duplex=False)
        # Each counter is single-writer (producer: *_in, consumer: *_out).
        self._records_in = ctx.Value("Q", 0, lock=False)
        self._records_out = ctx.Value("Q", 0, lock=False)
        self._bytes_in = ctx.Value("Q", 0, lock=False)
        self._bytes_out = ctx.Value("Q", 0, lock=False)
        self._busy_ns = ctx.Value("Q", 0, lock=False)

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def depth(self) -> int:
        return max(0, self._records_in.value - self._records_out.value)

    def busy_seconds(self) -> float:
        return self._busy_ns.value * 1e-9

    def add_busy(self, seconds: float) -> None:
        self._busy_ns.value += int(seconds * 1e9)

    def try_put(
        self,
        kind: int,
        sensor_idx: int,
        payload: bytes,
        enqueued_at: Optional[float] = None,
    ) -> bool:
        need = _HDR.size + len(payload)
        in_flight = max(0, self._bytes_in.value - self._bytes_out.value)
        # Refuse only when something is already queued: an oversized record
        # still passes through an idle ring (the pipe imposes no framing
        # limit, so unlike ShmRing it need not fit the buffer), keeping the
        # queue bounded by capacity + one record without ever wedging.
        if in_flight and in_flight + need > self._capacity:
            return False
        if not select.select([], [self._tx], [], 0)[1]:
            return False  # OS pipe buffer full — send would block
        if enqueued_at is None:
            enqueued_at = time.perf_counter()
        self._tx.send((kind, sensor_idx, enqueued_at, payload))
        self._records_in.value += 1
        self._bytes_in.value += need
        return True

    def put(
        self,
        kind: int,
        sensor_idx: int,
        payload: bytes,
        timeout: Optional[float] = None,
    ) -> None:
        """Blocking :meth:`try_put` with backoff; :class:`RingFull` on timeout."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        delay = 20e-6
        while not self.try_put(kind, sensor_idx, payload):
            if deadline is not None and time.perf_counter() >= deadline:
                raise RingFull(
                    f"pipe ring full ({self.depth()} records) after {timeout}s"
                )
            time.sleep(delay)
            delay = min(delay * 2, 2e-3)

    def get_available(self, max_records: int = 0) -> List[Record]:
        records: List[Record] = []
        drained_bytes = 0
        while self._rx.poll(0):
            kind, sensor_idx, enqueued_at, payload = self._rx.recv()
            records.append(Record(kind, sensor_idx, enqueued_at, payload))
            drained_bytes += _HDR.size + len(payload)
            if max_records and len(records) >= max_records:
                break
        if records:
            self._records_out.value += len(records)
            self._bytes_out.value += drained_bytes
        return records

    def close(self, unlink: bool = False) -> None:
        self._rx.close()
        self._tx.close()


def make_ring(transport: str = "shm", capacity_bytes: int = 1 << 20):
    """Build the configured transport, falling back to pipes when needed.

    ``transport`` is ``"shm"`` (shared memory; falls back to ``"pipe"``
    with a warning if the segment cannot be created), ``"pipe"``, or
    ``"auto"`` (same as ``"shm"``).
    """
    if transport not in ("shm", "pipe", "auto"):
        raise ValueError(f"unknown transport {transport!r}")
    if transport == "pipe":
        return PipeRing(capacity_bytes=capacity_bytes)
    try:
        return ShmRing(capacity_bytes=capacity_bytes)
    except Exception:
        import logging

        logging.getLogger(__name__).warning(
            "shared memory unavailable; process hub falling back to pipe transport"
        )
        return PipeRing(capacity_bytes=capacity_bytes)
