"""Quality-regression compare for scenario-matrix reports.

The quality counterpart of :func:`repro.bench.harness.compare_reports`,
built on the same shared :func:`repro.bench.compare.compare_metric`:

* **Quality metrics** (MOTA, MOTP, precision, recall) are higher-is-better
  and deterministic, and compared raw with ``floor=1.0`` — the tolerance
  is an *absolute* budget in metric units, which keeps the gate sane for
  negative-MOTA baselines (a diverging tracker regime is still a valid
  baseline to hold the line on) and for baselines near zero.
* **Latency** (``latency_ms_per_frame``) is lower-is-better and
  wall-clock, so both sides are normalised by their report's
  :func:`~repro.bench.harness.calibrate` machine-speed score (multiplying
  by the score cancels machine speed) and gated with a separate, looser
  relative tolerance.

Unlike the throughput gate, a cell present in the baseline but missing
from the current report is *reported* (:func:`missing_cells`) and treated
as an error by the CLI's ``--check``: silently dropping a scenario from
the matrix must not turn the gate green.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench.compare import Comparison, compare_metric
from repro.scenarios.matrix import SUITE_NAME

#: Deterministic higher-is-better cell metrics and the margin floor each
#: is gated with (all are [-inf, 1]-scaled, so the floor makes the
#: tolerance an absolute budget).
QUALITY_METRICS: Dict[str, float] = {
    "mota": 1.0,
    "motp": 1.0,
    "precision": 1.0,
    "recall": 1.0,
}

#: The wall-clock lower-is-better cell metric, compared normalised.
LATENCY_METRIC = "latency_ms_per_frame"


def _ensure_quality_report(report: dict, label: str) -> None:
    suite = report.get("suite")
    if suite != SUITE_NAME:
        raise ValueError(
            f"{label} is not a scenario-matrix report (suite={suite!r}); "
            f"expected suite={SUITE_NAME!r}"
        )


def missing_cells(current: dict, baseline: dict) -> List[str]:
    """Baseline cells absent from the current report, in baseline order.

    These make ``--check`` fail: a renamed or dropped scenario silently
    shrinks the gate's coverage otherwise.
    """
    current_cells = current.get("cells", {})
    return [key for key in baseline.get("cells", {}) if key not in current_cells]


def compare_quality_reports(
    current: dict,
    baseline: dict,
    tolerance: float = 0.05,
    latency_tolerance: float = 1.0,
) -> List[Comparison]:
    """Compare a fresh matrix report against a committed quality baseline.

    Parameters
    ----------
    current, baseline:
        Reports produced by :func:`repro.scenarios.matrix.run_matrix`.
    tolerance:
        Absolute budget for the deterministic quality metrics (0.05 means
        "MOTA may drop by at most 0.05"); see :data:`QUALITY_METRICS`.
    latency_tolerance:
        Relative margin for the normalised latency comparison.  Loose by
        default (1.0 = latency may double after machine-speed
        normalisation): the calibration proxy is good to tens of percent,
        and the gate is for order-of-magnitude blowups, not jitter.

    Returns comparisons for every metric present in both sides of every
    shared cell, in current-report order.  Cells only in the baseline are
    *not* silently skipped at the CLI level — see :func:`missing_cells`.
    """
    _ensure_quality_report(current, "current report")
    _ensure_quality_report(baseline, "baseline")
    if tolerance < 0 or latency_tolerance < 0:
        raise ValueError("tolerances must be non-negative")
    current_score = float(current.get("calibration", {}).get("score", 0.0))
    baseline_score = float(baseline.get("calibration", {}).get("score", 0.0))
    comparisons: List[Comparison] = []
    for key, metrics in current.get("cells", {}).items():
        base_metrics = baseline.get("cells", {}).get(key)
        if not base_metrics:
            continue
        for metric, floor in QUALITY_METRICS.items():
            if metric not in metrics or metric not in base_metrics:
                continue
            comparisons.append(
                compare_metric(
                    scenario=key,
                    metric=metric,
                    current=float(metrics[metric]),
                    baseline=float(base_metrics[metric]),
                    tolerance=tolerance,
                    direction="up",
                    floor=floor,
                )
            )
        if (
            LATENCY_METRIC in metrics
            and LATENCY_METRIC in base_metrics
            and current_score > 0
            and baseline_score > 0
        ):
            # Multiplying a latency by the machine-speed score cancels the
            # machine: a 2x-slower machine halves the score and doubles
            # the latency.
            comparisons.append(
                compare_metric(
                    scenario=key,
                    metric=LATENCY_METRIC,
                    current=float(metrics[LATENCY_METRIC]) * current_score,
                    baseline=float(base_metrics[LATENCY_METRIC]) * baseline_score,
                    tolerance=latency_tolerance,
                    direction="down",
                    normalized=True,
                )
            )
    return comparisons


def regressions(comparisons: List[Comparison]) -> List[Comparison]:
    """The subset of comparisons that regressed."""
    return [c for c in comparisons if c.regressed]


def summarize_comparisons(
    comparisons: List[Comparison],
) -> Tuple[int, int, List[str]]:
    """``(num_compared, num_regressed, described_regressions)``."""
    regressed = regressions(comparisons)
    return len(comparisons), len(regressed), [c.describe() for c in regressed]
