"""CLI for the scenario-matrix robustness suite.

Examples::

    PYTHONPATH=src python -m repro.scenarios                  # full matrix, write baseline artifact
    PYTHONPATH=src python -m repro.scenarios --quick --check  # CI quality gate
    PYTHONPATH=src python -m repro.scenarios --matrix quick --list
    PYTHONPATH=src python -m repro.scenarios --quick --check \\
        --set overlap_threshold=0.9                           # perturbation study
"""

from __future__ import annotations

import argparse
import json
import logging
from typing import Dict, List, Optional

from repro.bench.harness import dump_report, load_report
from repro.obs import add_log_level_argument, logging_setup
from repro.runtime.runner import EXECUTORS
from repro.scenarios.compare import compare_quality_reports, missing_cells
from repro.scenarios.library import MATRICES, SCENARIO_LIBRARY
from repro.scenarios.matrix import format_cells, run_matrix

#: Default report artifacts, one per matrix (mirrors the bench harness's
#: per-profile BENCH_*.json convention).
DEFAULT_OUTPUTS = {
    "full": "QUALITY_scenario_matrix.json",
    "quick": "QUALITY_scenario_matrix_quick.json",
}

logger = logging.getLogger("repro.scenarios")


def parse_overrides(pairs: List[str]) -> Dict[str, str]:
    """Parse repeated ``--set FIELD=VALUE`` arguments."""
    overrides: Dict[str, str] = {}
    for pair in pairs:
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise ValueError(f"--set expects FIELD=VALUE, got {pair!r}")
        overrides[name.strip()] = value.strip()
    return overrides


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--matrix",
        default=None,
        choices=sorted(MATRICES),
        help="named matrix to run (default: full)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorthand for --matrix quick (the CI smoke grid)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report ('-' for stdout only; default: "
        "QUALITY_scenario_matrix.json, or QUALITY_scenario_matrix_quick.json "
        "for the quick matrix, so each matrix round-trips against its own "
        "committed baseline)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline report to compare against (default: the --output path, "
        "read before it is overwritten)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any cell metric regresses beyond its "
        "tolerance or a baseline cell is missing from this run",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="absolute budget for the deterministic quality metrics "
        "(default 0.05: MOTA/MOTP/precision/recall may drop by at most "
        "this much)",
    )
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=1.0,
        help="relative margin for the machine-normalised per-frame latency "
        "(default 1.0)",
    )
    parser.add_argument(
        "--executor",
        default="thread",
        choices=EXECUTORS,
        help="runner executor for each cell's fleet (default: thread)",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="perturb a pipeline-config field for every cell (repeatable), "
        "e.g. --set overlap_threshold=0.9; with --check this shows which "
        "scenarios the perturbation breaks",
    )
    parser.add_argument(
        "--list", action="store_true", help="list matrices and scenarios, then exit"
    )
    add_log_level_argument(parser)
    args = parser.parse_args(argv)
    logging_setup(args.log_level)

    if args.list:
        for name, matrix in MATRICES.items():
            print(
                f"matrix {name}: {len(matrix.scenarios)} scenario(s) x "
                f"{len(matrix.trackers)} tracker(s) = "
                f"{len(matrix.cells())} cells"
            )
        print()
        for name, spec in SCENARIO_LIBRARY.items():
            print(f"{name:<18} {spec.description}")
        return 0

    if args.quick and args.matrix not in (None, "quick"):
        logger.error("error: --quick conflicts with --matrix %s", args.matrix)
        return 2
    matrix = MATRICES[args.matrix or ("quick" if args.quick else "full")]

    try:
        overrides = parse_overrides(args.overrides)
    except ValueError as error:
        logger.error("error: %s", error)
        return 2

    if args.output is None:
        args.output = DEFAULT_OUTPUTS[matrix.name]
    baseline_path = args.baseline or (args.output if args.output != "-" else None)
    baseline = load_report(baseline_path) if baseline_path else None

    print(
        f"matrix {matrix.name}: {len(matrix.scenarios)} scenario(s) x "
        f"{len(matrix.trackers)} tracker(s)"
        + (f", overrides {overrides}" if overrides else ""),
        flush=True,
    )
    try:
        report = run_matrix(
            matrix,
            executor=args.executor,
            config_overrides=overrides,
            progress=lambda line: print(line, flush=True),
        )
    except ValueError as error:
        logger.error("error: %s", error)
        return 2

    print()
    print(format_cells(report))

    exit_code = 0
    if baseline is not None:
        try:
            comparisons = compare_quality_reports(
                report,
                baseline,
                tolerance=args.tolerance,
                latency_tolerance=args.latency_tolerance,
            )
        except ValueError as error:
            logger.error("error: %s", error)
            return 2
        missing = missing_cells(report, baseline)
        if comparisons or missing:
            print()
            print(
                f"baseline: {baseline_path} (quality tolerance "
                f"{args.tolerance}, latency tolerance "
                f"{args.latency_tolerance:.0%})"
            )
            for comparison in comparisons:
                print(f"  {comparison.describe()}")
            for key in missing:
                print(f"  {key}: MISSING from this run (present in baseline)")
            if args.check and missing:
                # Coverage loss outranks a metric regression: exit 2, like
                # the other "the gate could not actually gate" conditions.
                logger.error(
                    "error: baseline cell(s) missing from this run: %s",
                    ", ".join(missing),
                )
                exit_code = 2
            elif args.check and any(c.regressed for c in comparisons):
                exit_code = 1
        elif args.check:
            # A gate with nothing to compare is not a passing gate: a
            # renamed baseline or matrix would otherwise silently disable
            # the quality check while CI stays green.
            logger.error(
                "error: --check found nothing comparable in baseline %s",
                baseline_path,
            )
            exit_code = 2
    elif args.check:
        logger.error(
            "error: --check requested but no baseline found at %s", baseline_path
        )
        exit_code = 2

    if args.output == "-":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        dump_report(report, args.output)
        print(f"\nwrote JSON report to {args.output}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
