"""Scenario-matrix robustness suite (``python -m repro.scenarios``).

A declarative scenario library (:mod:`repro.scenarios.library`) describes
the operating regimes a deployed EBBIOT sensor must survive — object-
density sweeps, day/night background-activity levels, rain and hot-pixel
storms, scripted crossing-object occlusions, duty-cycled processors with
operator-declared ROE boxes.  The matrix runner
(:mod:`repro.scenarios.matrix`) executes every (scenario x tracker
backend) cell through the batch runtime, pools CLEAR-MOT / precision /
recall / latency per cell, and emits one JSON report; the compare layer
(:mod:`repro.scenarios.compare`) gates that report against the committed
``QUALITY_scenario_matrix*.json`` baselines with direction-aware
tolerances (quality metrics are deterministic and gated on an absolute
budget; wall-clock latency is machine-normalised and gated loosely).
"""

from repro.scenarios.compare import (
    LATENCY_METRIC,
    QUALITY_METRICS,
    compare_quality_reports,
    missing_cells,
)
from repro.scenarios.library import (
    DAY_BASELINE,
    FULL_MATRIX,
    MATRICES,
    NIGHT_QUIET,
    QUICK_MATRIX,
    RAIN_STORM,
    SCENARIO_LIBRARY,
    DutyCycleSpec,
    MatrixSpec,
    NoiseRegime,
    ScenarioSpec,
    build_scenario_recordings,
    scenario_jobs,
)
from repro.scenarios.matrix import (
    MATRIX_VERSION,
    apply_config_overrides,
    cell_metrics,
    run_cell,
    run_matrix,
)

__all__ = [
    "DAY_BASELINE",
    "DutyCycleSpec",
    "FULL_MATRIX",
    "LATENCY_METRIC",
    "MATRICES",
    "MATRIX_VERSION",
    "MatrixSpec",
    "NIGHT_QUIET",
    "NoiseRegime",
    "QUALITY_METRICS",
    "QUICK_MATRIX",
    "RAIN_STORM",
    "SCENARIO_LIBRARY",
    "ScenarioSpec",
    "apply_config_overrides",
    "build_scenario_recordings",
    "cell_metrics",
    "compare_quality_reports",
    "missing_cells",
    "run_cell",
    "run_matrix",
    "scenario_jobs",
]
