"""Declarative scenario grammar and the named scenario library.

A :class:`ScenarioSpec` describes one operating regime of a deployed
EBBIOT sensor as data — traffic density, noise regime (day/night
background activity, rain/hot-pixel populations), occlusion choreography,
a duty-cycled processor with its declared ROE wake-up boxes — without any
imperative rendering code.  :func:`build_scenario_recordings` lowers a
spec onto the existing synthetic machinery (the Table I traffic renderer,
the rain site and the scripted crossing scene of
:mod:`repro.runtime.scenes`) and :func:`scenario_jobs` wraps the result as
runner jobs for one tracker backend.

The named :data:`SCENARIO_LIBRARY` spans the regimes the paper's
deployment cares about: an object-density sweep (sparse / urban / rush),
day and night background-activity levels, a rain storm with
drop-on-the-lens hot pixels, the guaranteed dynamic occlusion of the
crossing scene, and a duty-cycled sensor whose operator declared
overlapping ROE boxes.  A :class:`MatrixSpec` selects scenarios and
tracker backends; :data:`MATRICES` holds the committed-baseline ``full``
matrix and the CI ``quick`` smoke matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import EbbiotConfig
from repro.datasets.synthetic import (
    DatasetSpec,
    SyntheticRecording,
    build_recording,
)
from repro.runtime.runner import RecordingJob
from repro.runtime.scenes import (
    CROSSING_SPEC,
    build_crossing_recording,
    build_rain_recording,
    jobs_from_recordings,
)
from repro.sensor.duty_cycle import DutyCycleModel
from repro.utils.geometry import BoundingBox

#: Offset between per-scene seeds within one scenario (mirrors
#: :data:`repro.runtime.scenes._SEED_STRIDE`).
SEED_STRIDE = 101

#: Scenario kinds understood by :func:`build_scenario_recordings`.
KINDS = ("traffic", "crossing")


@dataclass(frozen=True)
class NoiseRegime:
    """Sensor noise conditions of a scenario.

    Parameters
    ----------
    name:
        Regime label (reported in the matrix config).
    background_rate_hz_per_pixel:
        Background-activity noise rate — low at night, moderate by day,
        several Hz per pixel in rain.
    num_hot_pixels, hot_pixel_rate_hz:
        Population and firing rate of stuck/rain-drop hot pixels; zero
        hot pixels means none are injected.
    """

    name: str
    background_rate_hz_per_pixel: float
    num_hot_pixels: int = 0
    hot_pixel_rate_hz: float = 0.0

    def __post_init__(self) -> None:
        if self.background_rate_hz_per_pixel < 0:
            raise ValueError("background_rate_hz_per_pixel must be non-negative")
        if self.num_hot_pixels < 0:
            raise ValueError("num_hot_pixels must be non-negative")
        if self.hot_pixel_rate_hz < 0:
            raise ValueError("hot_pixel_rate_hz must be non-negative")


#: Night: an almost silent sensor (cool, dark, low-activity site).
NIGHT_QUIET = NoiseRegime(name="night-quiet", background_rate_hz_per_pixel=0.08)

#: Day: the Table I sites' typical daytime background activity.
DAY_BASELINE = NoiseRegime(name="day-baseline", background_rate_hz_per_pixel=0.5)

#: Storm: heavy rain — background activity several times the daytime
#: level plus a population of drop-on-the-lens hot pixels.
RAIN_STORM = NoiseRegime(
    name="rain-storm",
    background_rate_hz_per_pixel=3.0,
    num_hot_pixels=40,
    hot_pixel_rate_hz=150.0,
)


@dataclass(frozen=True)
class DutyCycleSpec:
    """Duty-cycled processor parameters declared by a scenario.

    A thin, frame-duration-free wrapper over
    :class:`~repro.sensor.duty_cycle.DutyCycleModel`: the scenario cannot
    know the pipeline's ``tF`` (a matrix override may change it), so the
    model is instantiated against the pipeline config at job-build time,
    which also lets :class:`~repro.core.config.EbbiotConfig` validate the
    one-wake-per-frame invariant.
    """

    wakeup_time_us: float = 100.0
    readout_time_us: float = 2_000.0
    processing_time_us: float = 5_000.0
    sleep_power_mw: float = 0.05
    active_power_mw: float = 30.0

    def model(self, frame_duration_us: float) -> DutyCycleModel:
        """Instantiate the timing/energy model for a pipeline's ``tF``."""
        return DutyCycleModel(
            frame_duration_us=frame_duration_us,
            wakeup_time_us=self.wakeup_time_us,
            readout_time_us=self.readout_time_us,
            processing_time_us=self.processing_time_us,
            sleep_power_mw=self.sleep_power_mw,
            active_power_mw=self.active_power_mw,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named operating regime of the robustness suite.

    Parameters
    ----------
    name, description:
        Identifier (the row key of the matrix report) and a one-line
        summary for ``--list``.
    kind:
        ``"traffic"`` — Poisson traffic under the scenario's noise regime
        (hot pixels included when the regime declares them); or
        ``"crossing"`` — the scripted crossing-objects occlusion scene.
    num_scenes, duration_s, seed:
        Fleet size, per-recording length and the base seed; per-scene
        seeds advance by :data:`SEED_STRIDE` so recordings share no draws.
    arrival_rate_per_s:
        Traffic density (ignored by the scripted ``"crossing"`` kind).
    lens_focal_length_mm:
        Site lens (12 mm ENG-like, 6 mm LT4-like).
    noise:
        The scenario's :class:`NoiseRegime`.
    include_foliage:
        Add the tree-canopy distractor (whose derived ROE box then lands
        in every job config, exercising the exclusion path).
    duty:
        Optional :class:`DutyCycleSpec` for a duty-cycled sensor.
    roe_boxes:
        Operator-declared regions of exclusion, layered on top of each
        recording's derived distractor boxes (the ROE wake-up-box
        choreography; overlapping boxes exercise the union coverage).
    roe_max_overlap_fraction:
        The pipeline's ROE drop threshold for this scenario.
    """

    name: str
    description: str
    kind: str = "traffic"
    num_scenes: int = 2
    duration_s: float = 4.0
    seed: int = 0
    arrival_rate_per_s: float = 0.25
    lens_focal_length_mm: float = 12.0
    noise: NoiseRegime = DAY_BASELINE
    include_foliage: bool = False
    duty: Optional[DutyCycleSpec] = None
    roe_boxes: Tuple[BoundingBox, ...] = ()
    roe_max_overlap_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.num_scenes <= 0:
            raise ValueError(f"num_scenes must be positive, got {self.num_scenes}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")

    def scaled(
        self, num_scenes: Optional[int] = None, duration_s: Optional[float] = None
    ) -> "ScenarioSpec":
        """This scenario at a different fleet size / recording length.

        The quick matrix shrinks every scenario this way rather than
        defining a parallel library.
        """
        spec = self
        if num_scenes is not None:
            spec = replace(spec, num_scenes=min(spec.num_scenes, num_scenes))
        if duration_s is not None:
            spec = replace(spec, duration_s=duration_s)
        return spec

    def pipeline_config(self, base: Optional[EbbiotConfig] = None) -> EbbiotConfig:
        """The scenario's pipeline configuration on top of ``base``.

        Declares the ROE drop threshold and — for duty-cycled scenarios —
        the duty model instantiated against the (possibly overridden)
        frame duration.  The declared ``roe_boxes`` are *not* set here:
        they are per-recording (layered onto the derived distractor boxes
        by :func:`scenario_jobs` via ``extra_roe_boxes``).
        """
        config = base or EbbiotConfig()
        duty = (
            self.duty.model(float(config.frame_duration_us))
            if self.duty is not None
            else None
        )
        return replace(
            config,
            roe_max_overlap_fraction=self.roe_max_overlap_fraction,
            duty_cycle=duty,
        )

    def summary(self) -> Dict[str, object]:
        """JSON-serialisable description (recorded in the matrix config)."""
        return {
            "name": self.name,
            "description": self.description,
            "kind": self.kind,
            "num_scenes": self.num_scenes,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "arrival_rate_per_s": self.arrival_rate_per_s,
            "noise": self.noise.name,
            "background_rate_hz_per_pixel": self.noise.background_rate_hz_per_pixel,
            "num_hot_pixels": self.noise.num_hot_pixels,
            "include_foliage": self.include_foliage,
            "duty_cycled": self.duty is not None,
            "num_declared_roe_boxes": len(self.roe_boxes),
        }


def _dataset_spec(scenario: ScenarioSpec) -> DatasetSpec:
    """Lower a traffic scenario onto the Table I dataset-spec machinery."""
    return DatasetSpec(
        name=scenario.name,
        lens_focal_length_mm=scenario.lens_focal_length_mm,
        paper_duration_s=0.0,
        paper_num_events=0.0,
        simulated_duration_s=scenario.duration_s,
        arrival_rate_per_s=scenario.arrival_rate_per_s,
        noise_rate_hz_per_pixel=scenario.noise.background_rate_hz_per_pixel,
        include_foliage=scenario.include_foliage,
        seed=scenario.seed,
    )


def build_scenario_recordings(scenario: ScenarioSpec) -> List[SyntheticRecording]:
    """Render a scenario's fleet of recordings, deterministically.

    Scene ``i`` renders with seed ``scenario.seed + SEED_STRIDE * i`` and
    name ``"{scenario.name}-{i:02d}"``; the same spec always produces
    byte-identical event streams, which is what lets the matrix commit a
    quality baseline at all.
    """
    recordings: List[SyntheticRecording] = []
    for index in range(scenario.num_scenes):
        seed = scenario.seed + SEED_STRIDE * index
        name = f"{scenario.name}-{index:02d}"
        if scenario.kind == "crossing":
            spec = replace(
                CROSSING_SPEC,
                noise_rate_hz_per_pixel=scenario.noise.background_rate_hz_per_pixel,
                lens_focal_length_mm=scenario.lens_focal_length_mm,
            )
            recordings.append(
                build_crossing_recording(
                    duration_s=scenario.duration_s, seed=seed, name=name, spec=spec
                )
            )
        elif scenario.noise.num_hot_pixels > 0:
            recordings.append(
                build_rain_recording(
                    duration_s=scenario.duration_s,
                    seed=seed,
                    name=name,
                    spec=_dataset_spec(scenario),
                    num_hot_pixels=scenario.noise.num_hot_pixels,
                    hot_pixel_rate_hz=scenario.noise.hot_pixel_rate_hz,
                )
            )
        else:
            spec = replace(_dataset_spec(scenario), name=name, seed=seed)
            recordings.append(build_recording(spec))
    return recordings


def scenario_jobs(
    scenario: ScenarioSpec,
    tracker: str,
    recordings: Optional[Sequence[SyntheticRecording]] = None,
    base_config: Optional[EbbiotConfig] = None,
) -> List[RecordingJob]:
    """One matrix cell's runner jobs: a scenario under one tracker backend.

    Pass ``recordings`` to reuse an already-rendered fleet across the
    matrix's tracker legs (pipelines never mutate event streams, so the
    render cost is paid once per scenario, not once per cell).
    """
    if recordings is None:
        recordings = build_scenario_recordings(scenario)
    return jobs_from_recordings(
        recordings,
        pipeline_config=scenario.pipeline_config(base_config),
        trackers=tracker,
        extra_roe_boxes=list(scenario.roe_boxes),
    )


#: Overlapping operator-declared exclusion boxes for the duty-cycled site:
#: two bands over the top of the frame whose overlap would be double-counted
#: by a pairwise coverage sum — the union arithmetic keeps the drop decision
#: honest for proposals under either band.
_DUTY_ROE_BOXES = (
    BoundingBox(x=0.0, y=140.0, width=150.0, height=40.0),
    BoundingBox(x=90.0, y=140.0, width=150.0, height=40.0),
)

#: The named scenario library, in report order.
SCENARIO_LIBRARY: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="density-sparse",
            description="sparse overnight traffic, one object at a time",
            arrival_rate_per_s=0.1,
            seed=17,
        ),
        ScenarioSpec(
            name="density-urban",
            description="steady urban traffic (the Table I operating point)",
            arrival_rate_per_s=0.3,
            seed=23,
        ),
        ScenarioSpec(
            name="density-rush",
            description="rush-hour density, frequent concurrent objects",
            arrival_rate_per_s=0.6,
            seed=31,
        ),
        ScenarioSpec(
            name="night-quiet",
            description="night: near-silent background activity",
            noise=NIGHT_QUIET,
            arrival_rate_per_s=0.2,
            seed=41,
        ),
        ScenarioSpec(
            name="day-foliage",
            description="day: moderate noise plus a foliage distractor (derived ROE)",
            noise=DAY_BASELINE,
            include_foliage=True,
            seed=50,
        ),
        ScenarioSpec(
            name="rain-storm",
            description="storm: heavy background activity and hot pixels",
            noise=RAIN_STORM,
            arrival_rate_per_s=0.2,
            seed=64,
        ),
        ScenarioSpec(
            name="occlusion-cross",
            description="scripted crossing objects: guaranteed dynamic occlusion",
            kind="crossing",
            num_scenes=1,
            duration_s=6.0,
            seed=70,
        ),
        ScenarioSpec(
            name="duty-cycled-roe",
            description="duty-cycled sensor with overlapping declared ROE boxes",
            arrival_rate_per_s=0.25,
            duty=DutyCycleSpec(),
            roe_boxes=_DUTY_ROE_BOXES,
            seed=80,
        ),
    )
}


@dataclass(frozen=True)
class MatrixSpec:
    """A (scenario x tracker) grid for the matrix runner.

    Parameters
    ----------
    name:
        Matrix name (selects the default report filename).
    scenarios:
        Scenario names from :data:`SCENARIO_LIBRARY`, in report order.
    trackers:
        Tracker-backend registry names; every scenario runs under each.
    num_scenes, duration_s:
        Optional downscaling applied to every scenario via
        :meth:`ScenarioSpec.scaled` (the quick matrix shrinks the library
        instead of duplicating it).
    """

    name: str
    scenarios: Tuple[str, ...]
    trackers: Tuple[str, ...]
    num_scenes: Optional[int] = None
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("a matrix needs at least one scenario")
        if not self.trackers:
            raise ValueError("a matrix needs at least one tracker")
        unknown = [s for s in self.scenarios if s not in SCENARIO_LIBRARY]
        if unknown:
            raise ValueError(
                f"unknown scenario(s) {unknown}; known: {list(SCENARIO_LIBRARY)}"
            )

    def scenario_specs(self) -> List[ScenarioSpec]:
        """The (possibly downscaled) scenario specs of this matrix."""
        return [
            SCENARIO_LIBRARY[name].scaled(self.num_scenes, self.duration_s)
            for name in self.scenarios
        ]

    def cells(self) -> List[Tuple[str, str]]:
        """All ``(scenario, tracker)`` cell keys, in report order."""
        return [(s, t) for s in self.scenarios for t in self.trackers]


#: The committed-baseline matrix: every scenario x every backend.
FULL_MATRIX = MatrixSpec(
    name="full",
    scenarios=tuple(SCENARIO_LIBRARY),
    trackers=("overlap", "kalman", "ebms"),
)

#: The CI smoke matrix: one representative scenario per family, tiny
#: fleets, the two frame-based backends.
QUICK_MATRIX = MatrixSpec(
    name="quick",
    scenarios=("density-urban", "rain-storm", "occlusion-cross", "duty-cycled-roe"),
    trackers=("overlap", "kalman"),
    num_scenes=1,
    duration_s=2.0,
)

#: Named matrices the CLI accepts via ``--matrix``.
MATRICES: Dict[str, MatrixSpec] = {
    FULL_MATRIX.name: FULL_MATRIX,
    QUICK_MATRIX.name: QUICK_MATRIX,
}
