"""Matrix runner: every (scenario x tracker) cell through the runtime.

:func:`run_matrix` renders each scenario's fleet once, runs it through
:class:`~repro.runtime.runner.StreamRunner` under every tracker backend of
the matrix, pools the per-recording CLEAR-MOT summaries into one set of
cell metrics (MOTA, MOTP, precision, recall at the evaluation IoU
threshold), and emits a single JSON-serialisable report keyed by
``"scenario/tracker"``.

Quality metrics are deterministic: the scenario seeds fix the event
streams byte for byte and the pipeline is deterministic, so the committed
``QUALITY_scenario_matrix*.json`` baselines compare exactly.  The only
machine-dependent cell metric is ``latency_ms_per_frame``; the report
carries a :func:`~repro.bench.harness.calibrate` machine-speed score so
the compare layer can normalise it (see
:mod:`repro.scenarios.compare`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.bench.harness import calibrate
from repro.core.config import EbbiotConfig
from repro.runtime.aggregate import BatchResult
from repro.runtime.runner import RunnerConfig, StreamRunner
from repro.scenarios.library import (
    MatrixSpec,
    ScenarioSpec,
    build_scenario_recordings,
    scenario_jobs,
)

#: Report schema version; bump when the JSON layout changes incompatibly.
MATRIX_VERSION = 1

#: The report's ``suite`` discriminator (guards against comparing a bench
#: report to a quality baseline).
SUITE_NAME = "scenario_matrix"


def apply_config_overrides(
    base: EbbiotConfig, overrides: Dict[str, object]
) -> EbbiotConfig:
    """Apply ``field=value`` overrides to a pipeline config, typed by field.

    Values arrive as strings from the CLI's ``--set``; each is coerced by
    the dataclass field's declared type (``int``, ``float``, ``bool``,
    ``str``).  Unknown field names and uncoercible values raise
    ``ValueError`` — a typo'd perturbation must fail loudly, not silently
    compare an unperturbed run.
    """
    if not overrides:
        return base
    fields = {f.name: f for f in dataclasses.fields(base)}
    coerced: Dict[str, object] = {}
    for name, value in overrides.items():
        if name not in fields:
            raise ValueError(
                f"unknown pipeline config field {name!r}; known fields: "
                f"{sorted(fields)}"
            )
        if isinstance(value, str):
            kind = fields[name].type
            try:
                if kind == "int":
                    value = int(value)
                elif kind == "float":
                    value = float(value)
                elif kind == "bool":
                    if value.lower() not in ("true", "false", "0", "1"):
                        raise ValueError(value)
                    value = value.lower() in ("true", "1")
                elif kind != "str":
                    raise ValueError(
                        f"field {name!r} ({kind}) cannot be set from the "
                        "command line"
                    )
            except ValueError as error:
                raise ValueError(
                    f"cannot parse {value!r} as {kind} for field {name!r}"
                ) from error
        coerced[name] = value
    return dataclasses.replace(base, **coerced)


def cell_metrics(batch: BatchResult) -> Dict[str, object]:
    """Pool one cell's fleet result into its reported metrics.

    MOT counts add across the scenario's recordings
    (:func:`~repro.runtime.aggregate.merge_mot_summaries`), so the pooled
    MOTA/precision/recall are exactly what evaluating the concatenated
    fleet would give.  ``latency_ms_per_frame`` sums pipeline wall time
    over total frames — wall-clock, hence machine-dependent, hence the
    one metric the compare layer normalises.
    """
    mot = batch.mot
    total_frames = batch.total_frames
    wall_time_s = sum(r.wall_time_s for r in batch.recordings)
    latency_ms = 1000.0 * wall_time_s / total_frames if total_frames else 0.0
    metrics: Dict[str, object] = {
        "mota": mot.mota if mot else 0.0,
        "motp": mot.motp if mot else 0.0,
        "precision": mot.precision if mot else 0.0,
        "recall": mot.recall if mot else 0.0,
        "num_matches": mot.num_matches if mot else 0,
        "num_misses": mot.num_misses if mot else 0,
        "num_false_positives": mot.num_false_positives if mot else 0,
        "num_id_switches": mot.num_id_switches if mot else 0,
        "num_ground_truth_boxes": mot.num_ground_truth_boxes if mot else 0,
        "num_frames": total_frames,
        "num_tracks": batch.total_tracks,
        "latency_ms_per_frame": latency_ms,
        "duty_active_fraction": batch.mean_duty_active_fraction,
    }
    return metrics


def run_cell(
    scenario: ScenarioSpec,
    tracker: str,
    recordings,
    executor: str = "thread",
    base_config: Optional[EbbiotConfig] = None,
) -> Dict[str, object]:
    """Run one (scenario, tracker) cell and pool its metrics."""
    jobs = scenario_jobs(
        scenario, tracker, recordings=recordings, base_config=base_config
    )
    runner = StreamRunner(RunnerConfig(executor=executor))
    return cell_metrics(runner.run(jobs))


def run_matrix(
    matrix: MatrixSpec,
    executor: str = "thread",
    base_config: Optional[EbbiotConfig] = None,
    config_overrides: Optional[Dict[str, object]] = None,
    progress=None,
) -> dict:
    """Run every cell of a matrix and assemble the JSON report.

    Parameters
    ----------
    matrix:
        The (scenario x tracker) grid.
    executor:
        Runner executor for each cell's fleet (``"thread"`` default;
        ``"serial"`` for debugging — results are identical either way).
    base_config:
        Pipeline config each scenario's declarations are layered onto.
    config_overrides:
        ``field=value`` perturbations applied on top of the base config
        before the scenarios see it (the CLI's ``--set``); recorded in the
        report so a perturbed report is never mistaken for a baseline.
    progress:
        Optional callable invoked with one status line per cell.
    """
    base = apply_config_overrides(
        base_config or EbbiotConfig(), dict(config_overrides or {})
    )
    cells: Dict[str, Dict[str, object]] = {}
    scenario_summaries = []
    for scenario in matrix.scenario_specs():
        scenario_summaries.append(scenario.summary())
        recordings = build_scenario_recordings(scenario)
        for tracker in matrix.trackers:
            if progress is not None:
                progress(f"  running {scenario.name}/{tracker} ...")
            cells[f"{scenario.name}/{tracker}"] = run_cell(
                scenario,
                tracker,
                recordings,
                executor=executor,
                base_config=base,
            )
    return {
        "suite": SUITE_NAME,
        "version": MATRIX_VERSION,
        "matrix": matrix.name,
        "config": {
            "scenarios": scenario_summaries,
            "trackers": list(matrix.trackers),
            "num_scenes": matrix.num_scenes,
            "duration_s": matrix.duration_s,
            "overrides": {k: str(v) for k, v in (config_overrides or {}).items()},
        },
        "calibration": calibrate(),
        "cells": cells,
    }


def format_cells(report: dict) -> str:
    """Human-readable per-cell summary table."""
    header = (
        f"{'cell':<28} {'MOTA':>7} {'MOTP':>6} {'prec':>6} {'rec':>6} "
        f"{'tracks':>7} {'ms/frame':>9} {'duty':>6}"
    )
    lines = [header, "-" * len(header)]
    for key, m in report.get("cells", {}).items():
        duty = m.get("duty_active_fraction")
        duty_text = f"{duty:6.3f}" if duty is not None else f"{'—':>6}"
        lines.append(
            f"{key:<28} {m['mota']:>7.3f} {m['motp']:>6.3f} "
            f"{m['precision']:>6.3f} {m['recall']:>6.3f} "
            f"{m['num_tracks']:>7} {m['latency_ms_per_frame']:>9.2f} {duty_text}"
        )
    return "\n".join(lines)
