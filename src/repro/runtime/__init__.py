"""Multi-recording streaming runtime.

The paper targets fleets of stationary sensors; this package is the layer
that runs the single-recording pipeline of :mod:`repro.core` over many
recordings at once:

* :mod:`repro.runtime.runner` — :class:`StreamRunner` schedules one
  pipeline per recording on a serial, thread- or process-pool executor.
* :mod:`repro.runtime.aggregate` — :class:`RecordingResult` and
  :class:`BatchResult` merge per-recording statistics (``alpha``, events
  per frame, active trackers, CLEAR-MOT) into fleet-level numbers.
* :mod:`repro.runtime.scenes` — synthetic fleet builders for demos, tests
  and benchmarks.
* ``python -m repro.runtime`` — CLI running N synthetic scenes end to end
  (see :mod:`repro.runtime.__main__`).
"""

from repro.runtime.aggregate import BatchResult, RecordingResult, merge_mot_summaries
from repro.runtime.runner import (
    EXECUTORS,
    RecordingJob,
    RunnerConfig,
    StreamRunner,
    run_recording,
)
from repro.runtime.scenes import (
    CROSSING_SPEC,
    DEFAULT_SITE_SPECS,
    RAIN_LIKE_SPEC,
    build_crossing_recording,
    build_rain_recording,
    build_scene_jobs,
    build_scene_recordings,
    jobs_from_manifest,
    jobs_from_recordings,
)

__all__ = [
    "BatchResult",
    "RecordingResult",
    "merge_mot_summaries",
    "EXECUTORS",
    "RecordingJob",
    "RunnerConfig",
    "StreamRunner",
    "run_recording",
    "build_scene_jobs",
    "build_scene_recordings",
    "jobs_from_manifest",
    "jobs_from_recordings",
    "build_crossing_recording",
    "build_rain_recording",
    "CROSSING_SPEC",
    "RAIN_LIKE_SPEC",
    "DEFAULT_SITE_SPECS",
]
