"""Concurrent execution of the EBBIOT pipeline over many recordings.

Each stationary sensor produces an independent event stream, so a fleet of
recordings is embarrassingly parallel at the recording level: one pipeline
instance per stream, no shared state.  :class:`StreamRunner` schedules one
:func:`run_recording` call per :class:`RecordingJob` on a thread pool, a
process pool or serially, and merges the per-recording summaries into a
:class:`~repro.runtime.aggregate.BatchResult`.

Inside each job the pipeline uses the vectorised chunked path
(:meth:`~repro.core.pipeline.EbbiotPipeline.process_stream` with
``chunk_frames``): frame boundaries for the whole recording are resolved
with one ``searchsorted`` and EBBI frames are accumulated and filtered in
batches, so the per-event Python work is gone and — for the thread
executor — the NumPy kernels release the GIL while other recordings make
progress.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.core.config import EbbiotConfig
from repro.core.pipeline import EbbiotPipeline, PipelineResult
from repro.evaluation.mot_metrics import compute_mot_summary
from repro.events.stream import EventStream
from repro.runtime.aggregate import BatchResult, RecordingResult
from repro.simulation.ground_truth import GroundTruthFrame

#: Executor kinds understood by :class:`RunnerConfig`.
EXECUTORS = ("serial", "thread", "process")


@dataclass
class RecordingJob:
    """One recording for the runner to process.

    Parameters
    ----------
    name:
        Identifier reported in the results.
    stream:
        The recording's event stream.
    ground_truth:
        Optional ground-truth frames; when present the job's result carries
        a CLEAR-MOT summary.
    config:
        Optional per-recording pipeline configuration (e.g. a site-specific
        region of exclusion); falls back to the runner's shared config.
    """

    name: str
    stream: EventStream
    ground_truth: Optional[List[GroundTruthFrame]] = None
    config: Optional[EbbiotConfig] = None


@dataclass
class RunnerConfig:
    """Configuration of a :class:`StreamRunner`.

    Parameters
    ----------
    executor:
        ``"thread"`` (default), ``"process"`` or ``"serial"``.  Threads fit
        the NumPy-heavy pipeline (kernels drop the GIL) and need no
        pickling; processes sidestep the GIL entirely at the cost of
        shipping each job's events to the worker; serial is the reference
        and debugging mode.
    max_workers:
        Worker count for the concurrent executors; defaults to the CPU
        count (capped at 8 so a laptop run does not oversubscribe).
    chunk_frames:
        Frame-chunk size handed to
        :meth:`~repro.core.pipeline.EbbiotPipeline.process_stream`; each
        chunk of windows is accumulated into EBBI frames in one vectorised
        batch.
    pipeline_config:
        Shared pipeline configuration for jobs that do not bring their own.
    align_to_zero:
        Start frame windows at ``t = 0`` (keeps frame midpoints on the
        simulator's ground-truth grid).
    mot_iou_threshold:
        IoU threshold of the CLEAR-MOT evaluation run for jobs with ground
        truth.
    instrument:
        Attach a per-job :class:`repro.obs.Instrumentation` so each
        recording's result carries its ``stage_seconds`` breakdown.  Runs
        the per-window (unchunked) pipeline path — measurably slower, so
        off by default.
    trace:
        Additionally record one Chrome trace-event span per stage per frame
        window into each recording's ``trace_events`` (implies
        ``instrument``).
    trace_sample_every:
        Trace every Nth frame window (1 = all windows); thins the trace of
        long recordings without affecting the ``stage_seconds`` totals.
    """

    executor: str = "thread"
    max_workers: Optional[int] = None
    chunk_frames: int = 256
    pipeline_config: EbbiotConfig = field(default_factory=EbbiotConfig)
    align_to_zero: bool = True
    mot_iou_threshold: float = 0.3
    instrument: bool = False
    trace: bool = False
    trace_sample_every: int = 1

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.max_workers is not None and self.max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {self.max_workers}")
        if self.chunk_frames <= 0:
            raise ValueError(f"chunk_frames must be positive, got {self.chunk_frames}")
        if self.trace_sample_every < 1:
            raise ValueError(
                f"trace_sample_every must be >= 1, got {self.trace_sample_every}"
            )

    def resolved_max_workers(self, num_jobs: int) -> int:
        """Worker count actually used for ``num_jobs`` jobs."""
        if self.max_workers is not None:
            return max(1, min(self.max_workers, num_jobs))
        return max(1, min(os.cpu_count() or 1, 8, num_jobs))


def run_recording(job: RecordingJob, config: RunnerConfig) -> RecordingResult:
    """Process one recording end to end and summarise it.

    Module-level (rather than a method) so the process executor can pickle
    it; builds a fresh pipeline per call, so concurrent invocations share
    nothing.  Instrumentation is likewise per call — the tracer and
    accumulators never cross a process boundary, only their plain-dict
    snapshots on the result do.
    """
    pipeline_config = job.config or config.pipeline_config
    instrumentation = None
    tracer = None
    if config.instrument or config.trace:
        from repro.obs import Instrumentation, Tracer

        if config.trace:
            tracer = Tracer()
        instrumentation = Instrumentation(
            tracer=tracer, sample_every=config.trace_sample_every
        )
    pipeline = EbbiotPipeline(pipeline_config, instrumentation=instrumentation)
    started = time.perf_counter()
    result: PipelineResult = pipeline.process_stream(
        job.stream,
        align_to_zero=config.align_to_zero,
        chunk_frames=config.chunk_frames,
        collect_frames=False,
    )
    wall_time_s = time.perf_counter() - started
    mot = None
    if job.ground_truth:
        mot = compute_mot_summary(
            result.track_history.observations,
            job.ground_truth,
            iou_threshold=config.mot_iou_threshold,
        )
    duty = None
    if pipeline_config.duty_cycle is not None and result.num_frames > 0:
        duty = pipeline_config.duty_cycle.summarize(result.num_frames)
    return RecordingResult(
        name=job.name,
        num_events=len(job.stream),
        num_frames=result.num_frames,
        duration_s=job.stream.duration_s,
        wall_time_s=wall_time_s,
        mean_active_pixel_fraction=result.mean_active_pixel_fraction,
        mean_events_per_frame=result.mean_events_per_frame,
        mean_active_trackers=result.mean_active_trackers,
        num_tracks=len(result.track_history.track_ids()),
        num_track_observations=result.total_track_observations(),
        num_proposals=result.total_proposals(),
        mot=mot,
        tracker=pipeline.backend_name,
        duty=duty,
        stage_seconds=(
            instrumentation.snapshot() if instrumentation is not None else None
        ),
        trace_events=tracer.events() if tracer is not None else None,
    )


class StreamRunner:
    """Runs the EBBIOT pipeline over a fleet of recordings concurrently."""

    def __init__(self, config: Optional[RunnerConfig] = None) -> None:
        self.config = config or RunnerConfig()

    def run(self, jobs: Sequence[RecordingJob]) -> BatchResult:
        """Process all jobs and merge their summaries.

        Results keep the submission order regardless of completion order,
        so batch output is deterministic for a fixed job list.
        """
        jobs = list(jobs)
        started = time.perf_counter()
        if not jobs or self.config.executor == "serial":
            results = [run_recording(job, self.config) for job in jobs]
        else:
            with self._make_executor(len(jobs)) as executor:
                futures = [
                    executor.submit(run_recording, job, self.config) for job in jobs
                ]
                results = [future.result() for future in futures]
        wall_time_s = time.perf_counter() - started
        return BatchResult(recordings=results, wall_time_s=wall_time_s)

    def with_executor(self, executor: str) -> "StreamRunner":
        """A runner identical to this one but with a different executor."""
        return StreamRunner(replace(self.config, executor=executor))

    def _make_executor(self, num_jobs: int) -> Executor:
        workers = self.config.resolved_max_workers(num_jobs)
        if self.config.executor == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)
