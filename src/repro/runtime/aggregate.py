"""Fleet-level aggregation of per-recording pipeline results.

A surveillance deployment runs one EBBIOT pipeline per stationary sensor;
what the operator monitors is the fleet: total event throughput, the mean
activity statistics that drive the paper's resource models (``alpha``,
events per frame ``n``, active trackers ``NT``), and tracking quality over
all sites.  :class:`RecordingResult` is the compact per-recording summary a
:class:`~repro.runtime.runner.StreamRunner` worker returns (it is
pickle-friendly so results can cross process boundaries), and
:class:`BatchResult` merges many of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.evaluation.mot_metrics import MotSummary
from repro.sensor.duty_cycle import DutyCycleSummary


def merge_mot_summaries(summaries: Sequence[MotSummary]) -> Optional[MotSummary]:
    """Merge per-recording MOT summaries into one fleet-level summary.

    Error counts (misses, false positives, identity switches) and box
    counts add across recordings; MOTA is recomputed from the pooled counts
    and MOTP is the match-weighted mean IoU, exactly what evaluating the
    concatenation of all recordings would give.
    """
    if not summaries:
        return None
    misses = sum(s.num_misses for s in summaries)
    false_positives = sum(s.num_false_positives for s in summaries)
    id_switches = sum(s.num_id_switches for s in summaries)
    ground_truth = sum(s.num_ground_truth_boxes for s in summaries)
    matches = sum(s.num_matches for s in summaries)
    if ground_truth > 0:
        mota = 1.0 - (misses + false_positives + id_switches) / ground_truth
    else:
        mota = 0.0
    if matches > 0:
        motp = sum(s.motp * s.num_matches for s in summaries) / matches
    else:
        motp = 0.0
    return MotSummary(
        mota=mota,
        motp=motp,
        num_misses=misses,
        num_false_positives=false_positives,
        num_id_switches=id_switches,
        num_ground_truth_boxes=ground_truth,
        num_matches=matches,
    )


@dataclass(frozen=True)
class RecordingResult:
    """Summary of one recording processed by the runtime.

    Attributes
    ----------
    name:
        Recording identifier (site name, file stem, ...).
    num_events, num_frames:
        Raw event and frame counts of the recording.
    duration_s:
        Recording duration in (sensor) seconds.
    wall_time_s:
        Wall-clock time the pipeline spent on this recording.
    mean_active_pixel_fraction, mean_events_per_frame, mean_active_trackers:
        The paper's ``alpha``, ``n`` and ``NT`` statistics.
    num_tracks, num_track_observations, num_proposals:
        Tracker output volume.
    mot:
        CLEAR-MOT summary against ground truth, when the job carried
        annotations.
    tracker:
        Registry name of the tracker backend that produced the recording
        (``"overlap"``, ``"kalman"``, ``"ebms"``, ...); the fleet summary
        groups by it.
    duty:
        Wake/sleep/energy summary of the duty-cycled processor, when the
        job's pipeline config carried a
        :class:`~repro.sensor.duty_cycle.DutyCycleModel`.
    stage_seconds:
        Cumulative wall-clock seconds per pipeline stage (``ebbi`` /
        ``median`` / ``rpn`` / ``roe`` / ``tracker``), present only when the
        runner was instrumented.  A plain dict so it survives pickling
        across process executors.
    trace_events:
        Chrome trace-event dicts for this recording, present only when the
        runner ran with tracing; deliberately excluded from
        :meth:`to_dict` (traces are written as their own artifact, not
        embedded in result JSON).
    """

    name: str
    num_events: int
    num_frames: int
    duration_s: float
    wall_time_s: float
    mean_active_pixel_fraction: float
    mean_events_per_frame: float
    mean_active_trackers: float
    num_tracks: int
    num_track_observations: int
    num_proposals: int
    mot: Optional[MotSummary] = None
    tracker: str = "overlap"
    duty: Optional[DutyCycleSummary] = None
    stage_seconds: Optional[Dict[str, float]] = None
    trace_events: Optional[List[dict]] = None

    @property
    def events_per_second(self) -> float:
        """Processing throughput in events per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.num_events / self.wall_time_s

    @property
    def realtime_factor(self) -> float:
        """Sensor seconds processed per wall-clock second (>1 is realtime)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.duration_s / self.wall_time_s

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        payload = {
            "name": self.name,
            "tracker": self.tracker,
            "num_events": self.num_events,
            "num_frames": self.num_frames,
            "duration_s": self.duration_s,
            "wall_time_s": self.wall_time_s,
            "events_per_second": self.events_per_second,
            "realtime_factor": self.realtime_factor,
            "mean_active_pixel_fraction": self.mean_active_pixel_fraction,
            "mean_events_per_frame": self.mean_events_per_frame,
            "mean_active_trackers": self.mean_active_trackers,
            "num_tracks": self.num_tracks,
            "num_track_observations": self.num_track_observations,
            "num_proposals": self.num_proposals,
            "mot": self.mot.to_dict() if self.mot is not None else None,
            "duty": self.duty.to_dict() if self.duty is not None else None,
        }
        # Only instrumented runs grow the document — uninstrumented result
        # JSON stays byte-compatible with earlier releases.
        if self.stage_seconds is not None:
            payload["stage_seconds"] = dict(sorted(self.stage_seconds.items()))
        return payload


@dataclass
class BatchResult:
    """Merged result of running the pipeline over a fleet of recordings."""

    recordings: List[RecordingResult] = field(default_factory=list)
    wall_time_s: float = 0.0

    def __len__(self) -> int:
        return len(self.recordings)

    # -- fleet totals -------------------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Events processed across all recordings."""
        return sum(r.num_events for r in self.recordings)

    @property
    def total_frames(self) -> int:
        """Frames processed across all recordings."""
        return sum(r.num_frames for r in self.recordings)

    @property
    def total_duration_s(self) -> float:
        """Total sensor time across all recordings."""
        return sum(r.duration_s for r in self.recordings)

    @property
    def total_tracks(self) -> int:
        """Distinct tracks summed over recordings."""
        return sum(r.num_tracks for r in self.recordings)

    @property
    def events_per_second(self) -> float:
        """Aggregate throughput: total events over batch wall-clock time.

        With concurrent execution this exceeds the per-recording rates'
        harmonic combination — it is the number the 1-vs-N scaling
        benchmark tracks.
        """
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_events / self.wall_time_s

    # -- fleet means --------------------------------------------------------------------

    def _frame_weighted_mean(self, values: Sequence[float]) -> float:
        weights = [r.num_frames for r in self.recordings]
        total = sum(weights)
        if total == 0:
            return 0.0
        return sum(v * w for v, w in zip(values, weights)) / total

    @property
    def mean_active_pixel_fraction(self) -> float:
        """Fleet ``alpha``: frame-weighted mean over recordings."""
        return self._frame_weighted_mean(
            [r.mean_active_pixel_fraction for r in self.recordings]
        )

    @property
    def mean_events_per_frame(self) -> float:
        """Fleet ``n``: total events over total frames."""
        if self.total_frames == 0:
            return 0.0
        return self.total_events / self.total_frames

    @property
    def mean_active_trackers(self) -> float:
        """Fleet ``NT``: frame-weighted mean over recordings."""
        return self._frame_weighted_mean(
            [r.mean_active_trackers for r in self.recordings]
        )

    @property
    def mot(self) -> Optional[MotSummary]:
        """Pooled CLEAR-MOT summary over the recordings that carried GT."""
        return merge_mot_summaries(
            [r.mot for r in self.recordings if r.mot is not None]
        )

    @property
    def mean_duty_active_fraction(self) -> Optional[float]:
        """Frame-weighted mean processor wake fraction over duty-cycled
        recordings; ``None`` when no recording carried a duty model."""
        with_duty = [r for r in self.recordings if r.duty is not None]
        if not with_duty:
            return None
        total = sum(r.duty.num_frames for r in with_duty)
        if total == 0:
            return 0.0
        return (
            sum(r.duty.active_fraction * r.duty.num_frames for r in with_duty)
            / total
        )

    # -- observability ------------------------------------------------------------------

    def stage_seconds(self) -> Dict[str, float]:
        """Fleet-wide per-stage wall-clock seconds (instrumented runs only).

        Sums the ``stage_seconds`` of every recording that carries one;
        empty when the runner was not instrumented.
        """
        totals: Dict[str, float] = {}
        for recording in self.recordings:
            if recording.stage_seconds:
                for stage, seconds in recording.stage_seconds.items():
                    totals[stage] = totals.get(stage, 0.0) + seconds
        return dict(sorted(totals.items()))

    def chrome_trace(self) -> Optional[dict]:
        """Merged Chrome trace over all traced recordings (one pid each).

        ``None`` when no recording carries trace events (untraced run).
        """
        tracks = [
            (r.name, r.trace_events)
            for r in self.recordings
            if r.trace_events is not None
        ]
        if not tracks:
            return None
        from repro.obs import merge_chrome_traces

        return merge_chrome_traces(tracks)

    def metrics_registry(self):
        """A :class:`repro.obs.MetricsRegistry` snapshot of this batch.

        Per-recording event/frame/track counters and wall-clock gauges,
        plus — for instrumented runs — the per-stage seconds counter under
        its standard ``repro_pipeline_stage_seconds_total`` name.  Built on
        demand so uninstrumented callers never touch :mod:`repro.obs`.
        """
        from repro.obs import STAGE_SECONDS_METRIC, MetricsRegistry

        registry = MetricsRegistry()
        events = registry.counter(
            "repro_recording_events_total",
            "Events processed per recording.",
            labelnames=("recording", "tracker"),
        )
        frames = registry.counter(
            "repro_recording_frames_total",
            "Frame windows processed per recording.",
            labelnames=("recording", "tracker"),
        )
        tracks = registry.counter(
            "repro_recording_tracks_total",
            "Distinct tracks reported per recording.",
            labelnames=("recording", "tracker"),
        )
        wall = registry.gauge(
            "repro_recording_wall_seconds",
            "Pipeline wall-clock seconds per recording.",
            labelnames=("recording", "tracker"),
        )
        stage_counter = None
        for recording in self.recordings:
            labels = {"recording": recording.name, "tracker": recording.tracker}
            events.labels(**labels).inc(recording.num_events)
            frames.labels(**labels).inc(recording.num_frames)
            tracks.labels(**labels).inc(recording.num_tracks)
            wall.labels(**labels).set(recording.wall_time_s)
            if recording.stage_seconds:
                if stage_counter is None:
                    stage_counter = registry.counter(
                        STAGE_SECONDS_METRIC,
                        "Cumulative wall-clock seconds spent per pipeline stage.",
                        labelnames=("recording", "stage"),
                    )
                for stage, seconds in recording.stage_seconds.items():
                    stage_counter.labels(
                        recording=recording.name, stage=stage
                    ).inc(seconds)
        return registry

    def format_stage_table(self) -> str:
        """Per-stage cost breakdown table (instrumented runs only)."""
        totals = self.stage_seconds()
        if not totals:
            return "no stage breakdown (run with --trace or instrument=True)"
        grand_total = sum(totals.values()) or 1.0
        header = f"{'stage':<10} {'seconds':>10} {'share':>7}"
        lines = [header, "-" * len(header)]
        for stage, seconds in sorted(
            totals.items(), key=lambda item: item[1], reverse=True
        ):
            lines.append(
                f"{stage:<10} {seconds:>10.4f} {seconds / grand_total:>6.1%}"
            )
        return "\n".join(lines)

    # -- per-backend aggregation --------------------------------------------------------

    @property
    def trackers(self) -> List[str]:
        """Distinct tracker backends present, sorted."""
        return sorted({r.tracker for r in self.recordings})

    def by_tracker(self) -> Dict[str, "BatchResult"]:
        """The fleet result split per tracker backend.

        Each sub-result carries the whole batch's wall-clock time (the
        backends ran interleaved on the same executor, so per-backend wall
        time is not separable); the per-backend fleet *quality* statistics
        (pooled MOT, ``alpha``/``n``/``NT``) are exact.
        """
        groups: Dict[str, List[RecordingResult]] = {}
        for recording in self.recordings:
            groups.setdefault(recording.tracker, []).append(recording)
        return {
            tracker: BatchResult(recordings=recordings, wall_time_s=self.wall_time_s)
            for tracker, recordings in sorted(groups.items())
        }

    # -- reporting ----------------------------------------------------------------------

    def fleet_summary(self) -> Dict[str, object]:
        """JSON-serialisable fleet-level statistics.

        Instrumented runs additionally carry a ``stage_seconds`` map;
        uninstrumented output keeps the historical key set exactly.
        """
        mot = self.mot
        summary = {
            "num_recordings": len(self.recordings),
            "trackers": self.trackers,
            "total_events": self.total_events,
            "total_frames": self.total_frames,
            "total_duration_s": self.total_duration_s,
            "total_tracks": self.total_tracks,
            "wall_time_s": self.wall_time_s,
            "events_per_second": self.events_per_second,
            "mean_active_pixel_fraction": self.mean_active_pixel_fraction,
            "mean_events_per_frame": self.mean_events_per_frame,
            "mean_active_trackers": self.mean_active_trackers,
            "mean_duty_active_fraction": self.mean_duty_active_fraction,
            "mot": mot.to_dict() if mot is not None else None,
        }
        stage_totals = self.stage_seconds()
        if stage_totals:
            summary["stage_seconds"] = stage_totals
        return summary

    def to_dict(self) -> dict:
        """JSON-serialisable representation (per-recording + fleet + backends).

        ``by_tracker`` holds one fleet summary per backend so a mixed-backend
        fleet (or a shoot-out run) can be diffed without re-grouping.  The
        wall-clock-derived fields are nulled there: backends run interleaved
        on one executor, so per-backend wall time is not separable and a
        whole-batch number would read as (wrong) per-backend throughput.
        """
        by_tracker = {}
        for tracker, sub in self.by_tracker().items():
            summary = sub.fleet_summary()
            summary["wall_time_s"] = None
            summary["events_per_second"] = None
            by_tracker[tracker] = summary
        return {
            "recordings": [r.to_dict() for r in self.recordings],
            "fleet": self.fleet_summary(),
            "by_tracker": by_tracker,
        }

    def format_table(self) -> str:
        """Human-readable per-recording table plus fleet summary lines."""
        header = (
            f"{'recording':<12} {'tracker':<8} {'events':>10} {'frames':>7} "
            f"{'ev/s':>10} {'alpha':>8} {'n':>8} {'NT':>5} {'tracks':>7} {'MOTA':>7}"
        )
        lines = [header, "-" * len(header)]
        for r in self.recordings:
            mota = f"{r.mot.mota:7.3f}" if r.mot is not None else "      -"
            lines.append(
                f"{r.name:<12} {r.tracker:<8} {r.num_events:>10} {r.num_frames:>7} "
                f"{r.events_per_second:>10.0f} {r.mean_active_pixel_fraction:>8.4f} "
                f"{r.mean_events_per_frame:>8.1f} {r.mean_active_trackers:>5.2f} "
                f"{r.num_tracks:>7} {mota}"
            )
        lines.append("-" * len(header))
        mot = self.mot
        lines.append(
            f"fleet: {len(self.recordings)} recordings, "
            f"{self.total_events} events in {self.total_frames} frames "
            f"({self.total_duration_s:.1f} s of sensor time)"
        )
        lines.append(
            f"fleet: {self.events_per_second:.0f} ev/s over {self.wall_time_s:.2f} s "
            f"wall clock, alpha={self.mean_active_pixel_fraction:.4f}, "
            f"n={self.mean_events_per_frame:.1f}, NT={self.mean_active_trackers:.2f}"
        )
        if mot is not None:
            lines.append(
                f"fleet: MOTA={mot.mota:.3f} MOTP={mot.motp:.3f} "
                f"(misses={mot.num_misses}, false positives={mot.num_false_positives}, "
                f"id switches={mot.num_id_switches})"
            )
        if len(self.trackers) > 1:
            for tracker, sub in self.by_tracker().items():
                sub_mot = sub.mot
                mota = f"MOTA={sub_mot.mota:.3f} MOTP={sub_mot.motp:.3f}" if sub_mot else "no GT"
                lines.append(
                    f"  {tracker:<8} {len(sub)} recording(s), "
                    f"NT={sub.mean_active_trackers:.2f}, {mota}"
                )
        return "\n".join(lines)
