"""Synthetic fleet construction for the runtime layer.

A "fleet" here is N stationary sensors watching N independent traffic
scenes.  :func:`build_scene_jobs` renders them with the Table I site
specifications (alternating the busy ENG-like and quiet LT4-like sites) and
wraps each recording as a :class:`~repro.runtime.runner.RecordingJob`
complete with ground truth and a site-specific region of exclusion, ready
for :class:`~repro.runtime.runner.StreamRunner`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.core.config import EbbiotConfig
from repro.datasets.synthetic import (
    DatasetSpec,
    ENG_LIKE_SPEC,
    LT4_LIKE_SPEC,
    SyntheticRecording,
    build_recording,
)
from repro.runtime.runner import RecordingJob

#: Offset between per-scene seeds; any constant works, it only has to keep
#: the scenes' traffic draws distinct.
_SEED_STRIDE = 101


def build_scene_recordings(
    num_scenes: int,
    duration_s: float = 6.0,
    base_seed: int = 0,
    site_specs: Optional[Sequence[DatasetSpec]] = None,
) -> List[SyntheticRecording]:
    """Render ``num_scenes`` independent synthetic traffic recordings.

    Parameters
    ----------
    num_scenes:
        Number of scenes (sensors) in the fleet.
    duration_s:
        Length of each recording in seconds.
    base_seed:
        Shifts every scene's seed, so two fleets with different base seeds
        share no traffic draws.
    site_specs:
        Site specifications to cycle through; defaults to the ENG-like and
        LT4-like Table I sites.
    """
    if num_scenes <= 0:
        raise ValueError(f"num_scenes must be positive, got {num_scenes}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    specs = list(site_specs) if site_specs else [ENG_LIKE_SPEC, LT4_LIKE_SPEC]
    recordings = []
    for scene_index in range(num_scenes):
        spec = specs[scene_index % len(specs)]
        spec = replace(
            spec,
            name=f"{spec.name}-{scene_index:02d}",
            seed=spec.seed + base_seed + _SEED_STRIDE * scene_index,
        )
        recordings.append(build_recording(spec, duration_override_s=duration_s))
    return recordings


def jobs_from_recordings(
    recordings: Sequence[SyntheticRecording],
    pipeline_config: Optional[EbbiotConfig] = None,
) -> List[RecordingJob]:
    """Wrap rendered recordings as runner jobs.

    Each job carries the recording's ground truth and a pipeline config
    whose region of exclusion covers the recording's static distractors
    (what a site operator would draw over the foliage).
    """
    base = pipeline_config or EbbiotConfig()
    jobs = []
    for recording in recordings:
        config = replace(base, roe_boxes=recording.roe_boxes())
        jobs.append(
            RecordingJob(
                name=recording.name,
                stream=recording.stream,
                ground_truth=list(recording.annotations.frames),
                config=config,
            )
        )
    return jobs


def build_scene_jobs(
    num_scenes: int,
    duration_s: float = 6.0,
    base_seed: int = 0,
    pipeline_config: Optional[EbbiotConfig] = None,
) -> List[RecordingJob]:
    """Render a synthetic fleet and wrap it as runner jobs in one call."""
    recordings = build_scene_recordings(num_scenes, duration_s, base_seed)
    return jobs_from_recordings(recordings, pipeline_config)
