"""Synthetic fleet construction for the runtime layer.

A "fleet" here is N stationary sensors watching N independent scenes.
:func:`build_scene_jobs` renders them by cycling through a mix of site
types — the busy ENG-like and quiet LT4-like Table I sites, a high-noise
"rain" site, and a scripted crossing-objects occlusion site — and wraps
each recording as a :class:`~repro.runtime.runner.RecordingJob` complete
with ground truth and a site-specific region of exclusion, ready for
:class:`~repro.runtime.runner.StreamRunner` (or, streamed batch by batch,
for the live serving layer).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Union

from repro.core.config import EbbiotConfig
from repro.datasets.annotations import RecordingAnnotations
from repro.datasets.recorded import DatasetManifest
from repro.datasets.synthetic import (
    DatasetSpec,
    ENG_LIKE_SPEC,
    LT4_LIKE_SPEC,
    SyntheticRecording,
    build_recording,
)
from repro.events.noise import BackgroundActivityNoise, HotPixelNoise
from repro.runtime.runner import RecordingJob
from repro.sensor.davis import SensorGeometry
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.scene import Scene, SceneConfig
from repro.simulation.traffic import TrafficScenarioConfig, build_traffic_scene
from repro.simulation.trajectories import crossing_trajectory
from repro.utils.geometry import BoundingBox

#: Offset between per-scene seeds; any constant works, it only has to keep
#: the scenes' traffic draws distinct.
_SEED_STRIDE = 101

#: EBBI frame duration used for annotation sampling, matching the pipeline.
_FRAME_DURATION_US = 66_000

#: RAIN: an LT4-like quiet site in heavy rain — background activity several
#: times the Table I sites' plus a population of hot pixels.  Stresses the
#: median filter and the RPN's noise rejection.
RAIN_LIKE_SPEC = replace(
    LT4_LIKE_SPEC,
    name="RAIN",
    noise_rate_hz_per_pixel=3.0,
    seed=77,
)

#: CROSS: two scripted vehicles crossing mid-scene in adjacent lanes — a
#: deterministic dynamic-occlusion stressor for the overlap tracker's
#: lookahead.  Built by :func:`build_crossing_recording`, not the Poisson
#: traffic generator, so the occlusion happens in every rendering.
CROSSING_SPEC = DatasetSpec(
    name="CROSS",
    lens_focal_length_mm=12.0,
    paper_duration_s=0.0,
    paper_num_events=0.0,
    simulated_duration_s=6.0,
    arrival_rate_per_s=0.0,
    noise_rate_hz_per_pixel=0.3,
    include_foliage=False,
    seed=33,
)


def build_rain_recording(
    duration_s: float = 6.0,
    seed: int = 0,
    name: str = "RAIN",
    spec: Optional[DatasetSpec] = None,
    num_hot_pixels: int = 30,
    hot_pixel_rate_hz: float = 150.0,
) -> SyntheticRecording:
    """Render the high-noise "rain" site.

    Regular Poisson traffic under heavy background activity
    (:class:`~repro.events.noise.BackgroundActivityNoise` at several Hz per
    pixel) plus rain-drop-on-lens hot pixels
    (:class:`~repro.events.noise.HotPixelNoise`).  Pass ``spec`` to override
    the base :data:`RAIN_LIKE_SPEC` fields (noise rate, arrival rate, lens)
    and ``num_hot_pixels`` / ``hot_pixel_rate_hz`` to size the hot-pixel
    population (the scenario library sweeps these per noise regime).
    """
    spec = replace(
        spec or RAIN_LIKE_SPEC, name=name, simulated_duration_s=duration_s, seed=seed
    )
    geometry = SensorGeometry(
        width=240, height=180, lens_focal_length_mm=spec.lens_focal_length_mm
    )
    config = TrafficScenarioConfig(
        duration_s=duration_s,
        geometry=geometry,
        arrival_rate_per_s=spec.arrival_rate_per_s,
        noise_rate_hz_per_pixel=spec.noise_rate_hz_per_pixel,
        seed=seed,
    )
    scene = build_traffic_scene(config)
    if num_hot_pixels > 0:
        scene.config.hot_pixels = HotPixelNoise(
            num_hot_pixels=num_hot_pixels, rate_hz=hot_pixel_rate_hz, seed=seed
        )
    result = scene.render(
        duration_us=int(duration_s * 1e6),
        ground_truth_interval_us=_FRAME_DURATION_US,
    )
    annotations = RecordingAnnotations(
        frames=result.ground_truth, annotation_interval_us=_FRAME_DURATION_US
    )
    return SyntheticRecording(spec=spec, result=result, annotations=annotations)


def build_crossing_recording(
    duration_s: float = 6.0,
    seed: int = 0,
    name: str = "CROSS",
    spec: Optional[DatasetSpec] = None,
) -> SyntheticRecording:
    """Render the scripted crossing-objects occlusion scene.

    A car enters from the left and a van from the right in adjacent lanes;
    speeds are chosen so they cross near mid-recording, producing a
    guaranteed dynamic occlusion (the Sec. II-C case the tracker resolves
    with its ``n = 2`` frame lookahead).  Pass ``spec`` to override the base
    :data:`CROSSING_SPEC` fields.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    spec = replace(
        spec or CROSSING_SPEC, name=name, simulated_duration_s=duration_s, seed=seed
    )
    geometry = SensorGeometry(
        width=240, height=180, lens_focal_length_mm=spec.lens_focal_length_mm
    )
    scene = Scene(
        SceneConfig(
            geometry=geometry,
            noise=BackgroundActivityNoise(
                rate_hz_per_pixel=spec.noise_rate_hz_per_pixel
            ),
            seed=seed + 1,
        )
    )
    car = OBJECT_TEMPLATES[ObjectClass.CAR]
    van = OBJECT_TEMPLATES[ObjectClass.VAN]
    lane_y = 80.0
    # Speeds such that the silhouettes meet at ~45% of the recording.
    t_meet_s = max(0.45 * duration_s, 0.2)
    closing_speed = (geometry.width + car.width_px) / t_meet_s
    speed_car = 0.55 * closing_speed
    speed_van = closing_speed - speed_car
    scene.add_object(
        SceneObject(
            object_id=scene.allocate_object_id(),
            template=car,
            trajectory=crossing_trajectory(
                width=geometry.width,
                y=lane_y,
                speed_px_per_s=speed_car,
                t_enter_us=0,
                object_width=car.width_px,
                direction=1,
            ),
        )
    )
    scene.add_object(
        SceneObject(
            object_id=scene.allocate_object_id(),
            template=van,
            trajectory=crossing_trajectory(
                width=geometry.width,
                y=lane_y + 4.0,
                speed_px_per_s=speed_van,
                t_enter_us=0,
                object_width=van.width_px,
                direction=-1,
            ),
        )
    )
    result = scene.render(
        duration_us=int(duration_s * 1e6),
        ground_truth_interval_us=_FRAME_DURATION_US,
    )
    annotations = RecordingAnnotations(
        frames=result.ground_truth, annotation_interval_us=_FRAME_DURATION_US
    )
    return SyntheticRecording(spec=spec, result=result, annotations=annotations)


#: Builders for specs that are not plain Table I traffic renders.
_SPECIAL_BUILDERS = {
    RAIN_LIKE_SPEC.name: build_rain_recording,
    CROSSING_SPEC.name: build_crossing_recording,
}

#: Default site mix cycled by :func:`build_scene_recordings`.
DEFAULT_SITE_SPECS = (ENG_LIKE_SPEC, LT4_LIKE_SPEC, RAIN_LIKE_SPEC, CROSSING_SPEC)


def build_scene_recordings(
    num_scenes: int,
    duration_s: float = 6.0,
    base_seed: int = 0,
    site_specs: Optional[Sequence[DatasetSpec]] = None,
) -> List[SyntheticRecording]:
    """Render ``num_scenes`` independent synthetic traffic recordings.

    Parameters
    ----------
    num_scenes:
        Number of scenes (sensors) in the fleet.
    duration_s:
        Length of each recording in seconds.
    base_seed:
        Shifts every scene's seed, so two fleets with different base seeds
        share no traffic draws.
    site_specs:
        Site specifications to cycle through; defaults to
        :data:`DEFAULT_SITE_SPECS` (ENG-like, LT4-like, rain, crossing).
    """
    if num_scenes <= 0:
        raise ValueError(f"num_scenes must be positive, got {num_scenes}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    specs = list(site_specs) if site_specs else list(DEFAULT_SITE_SPECS)
    recordings = []
    for scene_index in range(num_scenes):
        spec = specs[scene_index % len(specs)]
        name = f"{spec.name}-{scene_index:02d}"
        seed = spec.seed + base_seed + _SEED_STRIDE * scene_index
        builder = _SPECIAL_BUILDERS.get(spec.name)
        if builder is not None:
            recordings.append(
                builder(duration_s=duration_s, seed=seed, name=name, spec=spec)
            )
        else:
            spec = replace(spec, name=name, seed=seed)
            recordings.append(build_recording(spec, duration_override_s=duration_s))
    return recordings


def jobs_from_recordings(
    recordings: Sequence[SyntheticRecording],
    pipeline_config: Optional[EbbiotConfig] = None,
    trackers: Optional[Union[str, Sequence[str]]] = None,
    extra_roe_boxes: Optional[Sequence[BoundingBox]] = None,
) -> List[RecordingJob]:
    """Wrap rendered recordings as runner jobs.

    Each job carries the recording's ground truth and a pipeline config
    whose region of exclusion covers the recording's static distractors
    (what a site operator would draw over the foliage).

    ``trackers`` selects the tracker backend per recording: one registry
    name applies to the whole fleet, a sequence of names is cycled across
    the recordings (a mixed-backend fleet — the shoot-out and A/B configs),
    and ``None`` keeps whatever ``pipeline_config`` carries.

    ``extra_roe_boxes`` are appended to every recording's derived ROE —
    the declared exclusion zones of a scenario spec (e.g. the complement of
    a duty-cycled sensor's ROE wake-up window), layered on top of whatever
    the site's distractors require.  Everything else a scenario declares
    (duty-cycle model, ROE overlap threshold, tracker parameters) rides in
    on ``pipeline_config`` and is preserved by the per-recording
    ``replace`` here.
    """
    base = pipeline_config or EbbiotConfig()
    if isinstance(trackers, str):
        trackers = [trackers]
    extra = list(extra_roe_boxes) if extra_roe_boxes else []
    jobs = []
    for index, recording in enumerate(recordings):
        config = replace(base, roe_boxes=recording.roe_boxes() + extra)
        if trackers:
            config = replace(config, tracker=trackers[index % len(trackers)])
        jobs.append(
            RecordingJob(
                name=recording.name,
                stream=recording.stream,
                ground_truth=list(recording.annotations.frames),
                config=config,
            )
        )
    return jobs


def jobs_from_manifest(
    dataset: Union[str, "DatasetManifest"],
    pipeline_config: Optional[EbbiotConfig] = None,
    trackers: Optional[Union[str, Sequence[str]]] = None,
) -> List[RecordingJob]:
    """Load a manifest-backed on-disk dataset as runner jobs.

    The disk counterpart of :func:`jobs_from_recordings`: each manifest
    entry's events become the job's stream, its annotations (when present)
    the ground truth, and its stored regions of exclusion the pipeline
    config — so replaying an exported fleet reproduces the source run's
    evaluation exactly.

    Parameters
    ----------
    dataset:
        A dataset directory / manifest path, or an already-loaded
        :class:`~repro.datasets.recorded.DatasetManifest`.
    pipeline_config:
        Shared pipeline configuration (the manifest's per-recording ROE
        boxes are layered on top).
    trackers:
        Tracker backend name(s), cycled across recordings exactly like
        :func:`jobs_from_recordings`.
    """
    manifest = (
        dataset
        if isinstance(dataset, DatasetManifest)
        else DatasetManifest.load(dataset)
    )
    base = pipeline_config or EbbiotConfig()
    if isinstance(trackers, str):
        trackers = [trackers]
    jobs = []
    for index, entry in enumerate(manifest.recordings):
        loaded = manifest.load_entry(entry)
        config = replace(
            base,
            width=loaded.stream.width,
            height=loaded.stream.height,
            roe_boxes=loaded.roe_boxes,
        )
        if trackers:
            config = replace(config, tracker=trackers[index % len(trackers)])
        jobs.append(
            RecordingJob(
                name=loaded.name,
                stream=loaded.stream,
                ground_truth=loaded.ground_truth,
                config=config,
            )
        )
    return jobs


def build_scene_jobs(
    num_scenes: int,
    duration_s: float = 6.0,
    base_seed: int = 0,
    pipeline_config: Optional[EbbiotConfig] = None,
    trackers: Optional[Union[str, Sequence[str]]] = None,
) -> List[RecordingJob]:
    """Render a synthetic fleet and wrap it as runner jobs in one call."""
    recordings = build_scene_recordings(num_scenes, duration_s, base_seed)
    return jobs_from_recordings(recordings, pipeline_config, trackers=trackers)
