"""Command-line entry point: ``python -m repro.runtime``.

Renders a synthetic fleet of traffic scenes, runs the full EBBI →
histogram-RPN → overlap-tracker pipeline over all of them concurrently and
prints the merged fleet statistics (optionally as JSON for scripting).

Examples
--------
Run four scenes on the default thread executor::

    PYTHONPATH=src python -m repro.runtime --scenes 4

Longer recordings, explicit worker count, JSON to a file::

    PYTHONPATH=src python -m repro.runtime --scenes 8 --duration 10 \\
        --workers 4 --json fleet.json

Run the same fleet on a baseline tracker, or A/B two backends across the
fleet's sites (comma-separated names are cycled per scene)::

    PYTHONPATH=src python -m repro.runtime --scenes 4 --tracker kalman
    PYTHONPATH=src python -m repro.runtime --scenes 8 --tracker overlap,ebms

Replay a recorded, manifest-backed dataset from disk instead of rendering
(export one with ``python -m repro.datasets export``)::

    PYTHONPATH=src python -m repro.runtime --dataset dataset/

Profile where the budget goes — write a Chrome trace (open it in
``chrome://tracing`` or https://ui.perfetto.dev) and a Prometheus metrics
snapshot, and print the per-stage cost table::

    PYTHONPATH=src python -m repro.runtime --scenes 2 --trace trace.json \\
        --metrics metrics.prom
"""

from __future__ import annotations

import argparse
import json
import logging
from typing import List, Optional

from repro.obs import add_log_level_argument, logging_setup
from repro.runtime.runner import EXECUTORS, RunnerConfig, StreamRunner
from repro.runtime.scenes import build_scene_jobs, jobs_from_manifest
from repro.trackers.registry import available_backends, parse_backend_list

logger = logging.getLogger("repro.runtime")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (separate so tests can introspect it)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description=(
            "Run the EBBIOT pipeline over N synthetic traffic scenes "
            "concurrently and report fleet statistics."
        ),
    )
    parser.add_argument(
        "--scenes", type=int, default=4, help="number of scenes in the fleet (default 4)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=6.0,
        help="length of each recording in seconds (default 6)",
    )
    parser.add_argument(
        "--executor",
        choices=EXECUTORS,
        default="thread",
        help="how to run the recordings (default thread)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the concurrent executors (default: CPU count)",
    )
    parser.add_argument(
        "--chunk-frames",
        type=int,
        default=256,
        help="frames per vectorised EBBI batch (default 256)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed for the fleet's traffic draws"
    )
    parser.add_argument(
        "--dataset",
        metavar="DIR",
        default=None,
        help=(
            "replay a recorded manifest-backed dataset from this directory "
            "instead of rendering synthetic scenes (--scenes/--duration/"
            "--seed are ignored)"
        ),
    )
    parser.add_argument(
        "--tracker",
        default="overlap",
        metavar="NAME[,NAME...]",
        help=(
            "tracker backend(s) for the fleet; one of "
            f"{', '.join(available_backends())}, or a comma-separated list "
            "cycled across the scenes (default overlap)"
        ),
    )
    parser.add_argument(
        "--json",
        "--output",
        dest="json",
        metavar="PATH",
        default=None,
        help="also write the full result as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "write a Chrome trace-event JSON (one span per pipeline stage "
            "per frame window, one pid per recording; open in "
            "chrome://tracing or Perfetto); implies --instrument"
        ),
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "write a Prometheus text-exposition metrics snapshot of the "
            "run ('-' for stdout)"
        ),
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="trace every Nth frame window (default 1 = all windows)",
    )
    parser.add_argument(
        "--instrument",
        action="store_true",
        help=(
            "collect the per-stage wall-clock breakdown (printed as a table "
            "and added to the JSON result) without writing a trace"
        ),
    )
    add_log_level_argument(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Render the fleet, run it, print the report.  Returns the exit code."""
    args = build_parser().parse_args(argv)
    logging_setup(args.log_level)
    if args.dataset is None and args.scenes <= 0:
        logger.error("error: --scenes must be positive")
        return 2
    if args.dataset is None and args.duration <= 0:
        logger.error("error: --duration must be positive")
        return 2
    try:
        trackers = parse_backend_list(args.tracker)
        runner_config = RunnerConfig(
            executor=args.executor,
            max_workers=args.workers,
            chunk_frames=args.chunk_frames,
            instrument=args.instrument or args.metrics is not None,
            trace=args.trace is not None,
            trace_sample_every=args.trace_sample,
        )
    except ValueError as error:
        logger.error("error: %s", error)
        return 2

    if args.dataset is not None:
        try:
            jobs = jobs_from_manifest(args.dataset, trackers=trackers)
        except (FileNotFoundError, ValueError) as error:
            logger.error("error: %s", error)
            return 2
        total_events = sum(len(job.stream) for job in jobs)
        print(
            f"loaded {len(jobs)} recording(s) ({total_events} events) from "
            f"{args.dataset}; processing on '{args.executor}' executor "
            f"with tracker(s) {', '.join(trackers)} ..."
        )
    else:
        print(
            f"rendering {args.scenes} synthetic traffic scene(s) "
            f"of {args.duration:.1f} s each ...",
            flush=True,
        )
        jobs = build_scene_jobs(
            args.scenes,
            duration_s=args.duration,
            base_seed=args.seed,
            trackers=trackers,
        )
        total_events = sum(len(job.stream) for job in jobs)
        print(
            f"rendered {total_events} events; processing on '{args.executor}' executor "
            f"with tracker(s) {', '.join(trackers)} ..."
        )

    batch = StreamRunner(runner_config).run(jobs)

    print()
    print(batch.format_table())
    if runner_config.instrument or runner_config.trace:
        print()
        print(batch.format_stage_table())

    if args.trace is not None:
        trace = batch.chrome_trace()
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(trace, handle)
            handle.write("\n")
        num_spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
        print(f"wrote Chrome trace ({num_spans} spans) to {args.trace}")

    if args.metrics is not None:
        exposition = batch.metrics_registry().to_prometheus_text()
        if args.metrics == "-":
            print(exposition, end="")
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(exposition)
            print(f"wrote metrics exposition to {args.metrics}")

    if args.json is not None:
        payload = json.dumps(batch.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote JSON result to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
