"""In-tree lint rule (LINT001: unused module-level imports).

Ruff covers far more in CI (see ``pyproject.toml``), but it is an external
tool and is not guaranteed to exist in every environment this repository
runs in.  This rule keeps the single most common hygiene violation —
imports left behind by refactors — enforceable by ``python -m
repro.analysis`` alone, with the same structured findings and baseline
machinery as the semantic rules.

A module-level import counts as used when its bound name appears anywhere
else in the module (including inside strings is *not* checked — doctests
don't keep imports alive), or when it is re-exported via ``__all__``.
``__init__.py`` modules are skipped entirely: their imports exist to
shape the package namespace.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set

from repro.analysis.engine import rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import CodeIndex


def _module_exports(tree: ast.Module) -> Set[str]:
    """Names listed in a literal module-level ``__all__``."""
    exports: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for element in ast.walk(node.value):
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exports.add(element.value)
    return exports


@rule(
    "LINT001",
    "unused module-level import",
    "no dead imports accumulate in the tree (hygiene floor under ruff)",
)
def check_unused_imports(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in index.iter_modules():
        if module.rel.endswith("__init__.py"):
            continue
        imported: Dict[str, int] = {}
        import_nodes: Set[int] = set()
        for node in module.tree.body:
            if isinstance(node, ast.Import):
                import_nodes.add(id(node))
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    imported.setdefault(bound, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                import_nodes.add(id(node))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    imported.setdefault(bound, node.lineno)
        if not imported:
            continue
        exports = _module_exports(module.tree)
        used: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)) and id(
                node
            ) in import_nodes:
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
        for name, line in sorted(imported.items(), key=lambda item: item[1]):
            if name in used or name in exports or name.startswith("_"):
                continue
            # ``from __future__ import annotations`` binds no usable name.
            if name == "annotations":
                continue
            findings.append(
                Finding(
                    rule="LINT001",
                    severity=Severity.WARNING,
                    file=module.rel,
                    line=line,
                    message=(
                        f"import '{name}' in {module.name} is never used"
                    ),
                    suggestion=f"delete the unused import of '{name}'",
                )
            )
    return findings
