"""Snapshot/restore completeness checker (rule SNAP001).

Session migration (PR 8) and the scenario-matrix determinism gates (PR 6)
both depend on the same convention: every piece of mutable per-instance
state that evolves while events flow must round-trip through the class's
snapshot/restore pair.  A field added to ``step()`` but forgotten in
``snapshot()`` does not fail any unit test — it silently changes results
after a migration, which is exactly the class of bug a human reviewer
misses.

The rule finds classes that expose a snapshot-style method
(``snapshot``/``state_snapshot``/``export_migration``) *and* a
restore-style method (``restore``/``restore_state``/``restore_migration``)
and reports every mutable attribute — one assigned, augmented,
subscript-stored, or mutated via a known container method (``append``,
``update``, ...) outside ``__init__`` — that is not mentioned in at least
one method of each side.  One level of local aliasing is tracked, so
``stamps = self._last_timestamp; stamps[y, x] = t`` still counts as a
mutation of ``_last_timestamp`` (the nearest-neighbour filter's idiom).

Attributes whose names mark them as non-state (locks, callbacks,
configuration captured in ``__init__``) are skipped by construction: only
attributes mutated *after* construction are considered state.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.engine import rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import CodeIndex

SNAPSHOT_METHODS = {"snapshot", "state_snapshot", "export_migration"}
RESTORE_METHODS = {"restore", "restore_state", "restore_migration"}

#: Methods whose attribute writes are construction, not evolving state.
CONSTRUCTION_METHODS = {"__init__", "__post_init__"}

#: Container methods that mutate their receiver.
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "remove",
    "setdefault",
    "update",
    "fill",
}

#: Default scan scope on the real tree: the stateful pipeline layers.
STATEFUL_PREFIXES = ("repro.events", "repro.trackers", "repro.serving")


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mentioned_attrs(funcs: Sequence[ast.AST]) -> Set[str]:
    """Every ``self.X`` reference (any context) in the given methods."""
    found: Set[str] = set()
    for func in funcs:
        for node in ast.walk(func):
            attr = _self_attr(node)
            if attr is not None:
                found.add(attr)
    return found


def _mutated_attrs(
    func: ast.AST, aliases: Dict[str, str]
) -> Dict[str, int]:
    """Attributes this method mutates, with the first mutation line."""
    mutated: Dict[str, int] = {}

    def note(attr: Optional[str], line: int) -> None:
        if attr is not None and attr not in mutated:
            mutated[attr] = line

    def target_attr(target: ast.expr) -> Optional[str]:
        attr = _self_attr(target)
        if attr is not None:
            return attr
        if isinstance(target, ast.Subscript):
            inner = _self_attr(target.value)
            if inner is not None:
                return inner
            if isinstance(target.value, ast.Name):
                return aliases.get(target.value.id)
        return None

    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            # First pass of alias collection happens before this walk, but
            # re-binding inside loops is caught here too.
            for target in node.targets:
                if isinstance(target, (ast.Tuple, ast.List)):
                    for element in target.elts:
                        note(target_attr(element), node.lineno)
                else:
                    note(target_attr(target), node.lineno)
        elif isinstance(node, ast.AugAssign):
            note(target_attr(node.target), node.lineno)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                attr = _self_attr(node.func.value)
                if attr is None and isinstance(node.func.value, ast.Name):
                    attr = aliases.get(node.func.value.id)
                note(attr, node.lineno)
    return mutated


def _local_aliases(func: ast.AST) -> Dict[str, str]:
    """One-level ``local = self.attr`` bindings in a method."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            attr = _self_attr(node.value)
            if attr is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases[target.id] = attr
    return aliases


@rule(
    "SNAP001",
    "snapshot/restore completeness",
    "mutable pipeline state round-trips through snapshot/restore (PR 6/8)",
)
def check_snapshot_completeness(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    modules: List = []
    for prefix in STATEFUL_PREFIXES:
        modules.extend(index.iter_modules(prefix))
    if not modules:
        modules = list(index.iter_modules())
    for module in modules:
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            methods = {
                node.name: node
                for node in cls.body
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            snap_side = [methods[m] for m in SNAPSHOT_METHODS if m in methods]
            restore_side = [methods[m] for m in RESTORE_METHODS if m in methods]
            if not snap_side or not restore_side:
                continue
            snap_mentions = _mentioned_attrs(snap_side)
            restore_mentions = _mentioned_attrs(restore_side)
            skip = (
                SNAPSHOT_METHODS
                | RESTORE_METHODS
                | CONSTRUCTION_METHODS
            )
            mutable: Dict[str, int] = {}
            for name, func in methods.items():
                if name in skip:
                    continue
                aliases = _local_aliases(func)
                for attr, line in _mutated_attrs(func, aliases).items():
                    if attr.startswith("__"):
                        continue
                    mutable.setdefault(attr, line)
            for attr in sorted(mutable):
                in_snap = attr in snap_mentions
                in_restore = attr in restore_mentions
                if in_snap and in_restore:
                    continue
                if not in_snap and not in_restore:
                    missing = "snapshot and restore"
                elif not in_snap:
                    missing = "snapshot"
                else:
                    missing = "restore"
                findings.append(
                    Finding(
                        rule="SNAP001",
                        severity=Severity.ERROR,
                        file=module.rel,
                        line=mutable[attr],
                        message=(
                            f"mutable attribute '{attr}' of {cls.name} is "
                            f"missing from the {missing} side of the "
                            "snapshot/restore pair"
                        ),
                        suggestion=(
                            f"carry '{attr}' through "
                            f"{'/'.join(sorted(m.name for m in snap_side))} and "
                            f"{'/'.join(sorted(m.name for m in restore_side))}, "
                            "or baseline it with the reason it is excluded"
                        ),
                    )
                )
    return findings
