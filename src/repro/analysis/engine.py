"""Rule registry and runner.

A rule is a named check over the :class:`~repro.analysis.index.CodeIndex`
returning :class:`~repro.analysis.findings.Finding` objects.  Rules
register themselves at import time through :func:`rule`; the CLI and the
tests both go through :func:`run_rules`, so an analyzer behaves
identically against the real tree and against fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.index import CodeIndex

RuleCheck = Callable[[CodeIndex], List[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered analyzer."""

    id: str
    title: str
    invariant: str
    check: RuleCheck


#: All registered rules, id -> :class:`Rule` (populated on package import).
RULES: Dict[str, Rule] = {}


def rule(id: str, title: str, invariant: str) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering an analyzer under a stable rule id."""

    def register(check: RuleCheck) -> RuleCheck:
        if id in RULES:
            raise ValueError(f"duplicate rule id {id!r}")
        RULES[id] = Rule(id=id, title=title, invariant=invariant, check=check)
        return check

    return register


def run_rules(
    index: CodeIndex, rule_ids: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Run the selected rules (default: all) and return sorted findings."""
    if rule_ids is None:
        selected = list(RULES.values())
    else:
        selected = []
        for rule_id in rule_ids:
            if rule_id not in RULES:
                known = ", ".join(sorted(RULES))
                raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
            selected.append(RULES[rule_id])
    findings: List[Finding] = []
    for entry in selected:
        findings.extend(entry.check(index))
    return sorted(findings, key=Finding.sort_key)
