"""Concurrency analyzers for the serving layer (rules CONC001–CONC004).

The serving layer's threading discipline is conventions, not types: locks
are plain attributes, lock *scopes* are ``with`` blocks or
``acquire``/``release`` pairs, and the rules of PR 8's hardening pass
(map flips only under both shard locks, no migration evaluation on the
submit path, cursor publication under the ring lock) live in docstrings.
These analyzers recover enough of that structure from the ASTs to check
the mechanical parts:

* **CONC001** — lock-order inversions: a per-class lock-acquisition graph
  (edges "acquired B while holding A", including one level of
  interprocedural summaries for helpers like ``_acquire_queue`` that
  return a held lock) must be cycle-free.  Acquiring two locks from the
  same lock *list* is reported as a warning — it is deadlock-free only
  when the acquisition order is canonical (the hubs sort shard indices).
* **CONC002** — unguarded shared state: an attribute mutated outside any
  lock scope while the same attribute is read or written under a lock
  elsewhere in the class, plus read-modify-write (``+=``) of attributes
  outside any lock in classes that spawn threads or processes.
* **CONC003** — blocking calls (``put``/``join``/``recv``/``sleep``/
  ``select``/``wait``/``send``) made while holding a lock: every such
  call extends the lock's critical section by an unbounded wait and must
  be a deliberate, documented decision (baseline) or a bug.
* **CONC004** — known-blocking hub calls reachable from ``async def``
  coroutines: the asyncio front door's event loop must never park in
  ``close_sensor``/``register``/``metrics_text``-class hub calls; they
  belong behind ``asyncio.to_thread``.

The lock-scope model is linear (statements in source order, ``with``
nesting, ``acquire`` held until a ``release`` statement) — deliberately
simpler than real control flow, and accurate for the straight-line
critical sections this codebase writes.  Rules scan ``repro.serving`` when
present and the whole tree otherwise (which is how the fixture tests
drive them).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import CodeIndex, ModuleInfo

#: Constructors whose result makes an attribute a lock.
LOCK_FACTORIES = {"Lock", "RLock"}

#: Constructors that make a class a thread/process spawner.
SPAWN_FACTORIES = {"Thread", "Process"}

#: Method names treated as potentially blocking when called under a lock.
BLOCKING_METHODS = {
    "put",
    "join",
    "recv",
    "recv_bytes",
    "sleep",
    "select",
    "wait",
    "send",
    "accept",
    "connect",
}

#: Attribute-mutating method names (``self.x.append(...)`` counts as a
#: mutation of ``x``).
MUTATOR_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "remove",
    "setdefault",
    "update",
}

#: Hub API calls an asyncio coroutine must not make directly: each one can
#: block on queue drain, worker round trips, or a migration hand-off.
HUB_BLOCKING_METHODS = {
    "close_sensor",
    "register",
    "submit",
    "migrate_sensor",
    "maybe_rebalance",
    "metrics_text",
    "telemetry_dict",
    "chrome_trace",
    "merged_metrics",
    "merged_telemetry",
    "stop",
}

#: Methods whose attribute mutations are not treated as "shared state
#: mutated outside a lock": they run before the worker threads exist or
#: after they are joined.
LIFECYCLE_METHODS = {"__init__", "__post_init__", "__del__", "start", "stop"}


def _calls_factory(node: ast.AST, names: Set[str]) -> bool:
    """Whether any call in ``node`` constructs one of ``names``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name) and func.id in names:
                return True
            if isinstance(func, ast.Attribute) and func.attr in names:
                return True
    return False


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class LockUse:
    """One resolved lock expression: which attribute, and whether it came
    through a subscript (an element of a lock list)."""

    attr: str
    group: bool
    line: int


@dataclass
class MethodSummary:
    """What one method does with the class's locks (interprocedural seed)."""

    acquired: Set[str] = field(default_factory=set)
    leaked: Set[str] = field(default_factory=set)  # held at some return


@dataclass
class ClassReport:
    """Everything the rules need about one class's lock behaviour."""

    name: str
    lock_attrs: Set[str]
    spawns: bool
    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    double_acquires: List[LockUse] = field(default_factory=list)
    blocking_under_lock: List[Tuple[str, str, int]] = field(default_factory=list)
    mutations: List[Tuple[str, bool, int, str, str]] = field(default_factory=list)
    loads_under_lock: Set[str] = field(default_factory=set)
    load_lines: Dict[str, int] = field(default_factory=dict)


class _FunctionWalker:
    """Linear lock-scope walk of one method body."""

    def __init__(
        self,
        report: ClassReport,
        method: str,
        summaries: Optional[Dict[str, MethodSummary]],
    ) -> None:
        self.report = report
        self.method = method
        self.summaries = summaries or {}
        self.held: List[str] = []
        self.aliases: Dict[str, str] = {}  # local name -> self attribute
        self.summary = MethodSummary()

    # -- lock expression resolution ------------------------------------------------------

    def _resolve_lock(self, node: ast.expr) -> Optional[LockUse]:
        attr = _self_attr(node)
        if attr is not None and attr in self.report.lock_attrs:
            return LockUse(attr=attr, group=False, line=node.lineno)
        if isinstance(node, ast.Subscript):
            attr = _self_attr(node.value)
            if attr is not None and attr in self.report.lock_attrs:
                return LockUse(attr=attr, group=True, line=node.lineno)
        if isinstance(node, ast.Name) and node.id in self.aliases:
            aliased = self.aliases[node.id]
            if aliased in self.report.lock_attrs:
                return LockUse(attr=aliased, group=True, line=node.lineno)
        return None

    def _acquire(self, use: LockUse) -> None:
        if use.attr in self.held:
            self.report.double_acquires.append(use)
        for holding in self.held:
            if holding != use.attr:
                self.report.edges.append((holding, use.attr, use.line))
        self.held.append(use.attr)
        self.summary.acquired.add(use.attr)

    def _release(self, attr: str) -> None:
        if attr in self.held:
            self.held.remove(attr)

    # -- per-statement bookkeeping -------------------------------------------------------

    def _record_accesses(self, stmt: ast.stmt) -> None:
        """Scan a statement for attribute loads, mutations and blocking calls."""
        in_lifecycle = self.method in LIFECYCLE_METHODS
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                kind = "augassign" if isinstance(node, ast.AugAssign) else "assign"
                targets = (
                    [node.target] if isinstance(node, ast.AugAssign) else node.targets
                )
                for target in targets:
                    self._record_target(target, kind, node.lineno, in_lifecycle)
            elif isinstance(node, ast.Call):
                self._record_call(node, in_lifecycle)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                attr = _self_attr(node)
                if attr is not None and self.held:
                    self.report.loads_under_lock.add(attr)
                    self.report.load_lines.setdefault(attr, node.lineno)

    def _mutated_attr(self, node: ast.expr) -> Optional[str]:
        """The self attribute a store target (or receiver) mutates, if any."""
        attr = _self_attr(node)
        if attr is not None:
            return attr
        if isinstance(node, ast.Subscript):
            inner = _self_attr(node.value)
            if inner is not None:
                return inner
            if isinstance(node.value, ast.Name) and node.value.id in self.aliases:
                return self.aliases[node.value.id]
        if isinstance(node, (ast.Tuple, ast.List)):
            return None
        return None

    def _record_target(
        self, target: ast.expr, kind: str, line: int, in_lifecycle: bool
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, kind, line, in_lifecycle)
            return
        attr = self._mutated_attr(target)
        if attr is None or in_lifecycle:
            return
        self.report.mutations.append(
            (attr, bool(self.held), line, kind, self.method)
        )

    def _record_call(self, call: ast.Call, in_lifecycle: bool) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in ("acquire", "release"):
            return  # handled structurally
        if func.attr in MUTATOR_METHODS and not in_lifecycle:
            attr = _self_attr(func.value)
            if attr is None and isinstance(func.value, ast.Name):
                attr = self.aliases.get(func.value.id)
            if attr is not None:
                self.report.mutations.append(
                    (attr, bool(self.held), call.lineno, "call", self.method)
                )
        if func.attr in BLOCKING_METHODS and self.held:
            self.report.blocking_under_lock.append(
                (
                    "+".join(dict.fromkeys(self.held)),
                    f"{ast.unparse(func)}() in {self.report.name}.{self.method}",
                    call.lineno,
                )
            )

    # -- statement dispatch --------------------------------------------------------------

    def walk(self, body: Sequence[ast.stmt]) -> MethodSummary:
        self._walk_stmts(body)
        self.summary.leaked.update(self.held)
        return self.summary

    def _walk_stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._walk_stmt(stmt)

    def _called_summary(self, value: ast.expr) -> Optional[MethodSummary]:
        """Summary of a directly-called same-class method, if we have one."""
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            name = _self_attr(value.func)
            if name is not None:
                return self.summaries.get(name)
        return None

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                carrier = ast.Expr(value=item.context_expr)
                ast.copy_location(carrier, item.context_expr)
                self._record_accesses(carrier)
            uses = []
            for item in stmt.items:
                use = self._resolve_lock(item.context_expr)
                if use is not None:
                    self._acquire(use)
                    uses.append(use)
            self._walk_stmts(stmt.body)
            for use in reversed(uses):
                self._release(use.attr)
            return
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            # Alias tracking: ``lock = self._queue_locks[shard]`` and
            # ``stamps = self._last_timestamp`` both bind a local to an attr.
            alias_source: Optional[str] = None
            if isinstance(value, ast.Subscript):
                alias_source = _self_attr(value.value)
            else:
                alias_source = _self_attr(value)
            if alias_source is not None:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.aliases[target.id] = alias_source
            summary = self._called_summary(value)
            if summary is not None and summary.leaked:
                # ``shard, lock = self._acquire_queue(...)`` hands back a
                # held lock: model it as acquired here, released by the
                # later ``lock.release()``.
                for attr in sorted(summary.leaked):
                    self._acquire(LockUse(attr=attr, group=True, line=stmt.lineno))
                for target in stmt.targets:
                    names = (
                        [element for element in target.elts]
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for name in names:
                        if isinstance(name, ast.Name):
                            for attr in summary.leaked:
                                self.aliases[name.id] = attr
            self._interprocedural_edges(stmt)
            self._record_accesses(stmt)
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute):
                if call.func.attr == "acquire":
                    use = self._resolve_lock(call.func.value)
                    if use is not None:
                        self._acquire(use)
                        return
                if call.func.attr == "release":
                    use = self._resolve_lock(call.func.value)
                    if use is not None:
                        self._release(use.attr)
                        return
            summary = self._called_summary(call)
            if summary is not None and summary.leaked:
                for attr in sorted(summary.leaked):
                    self._acquire(LockUse(attr=attr, group=True, line=stmt.lineno))
            self._interprocedural_edges(stmt)
            self._record_accesses(stmt)
            return
        if isinstance(stmt, ast.Return):
            self.summary.leaked.update(self.held)
            self._record_accesses(stmt)
            return
        if isinstance(stmt, (ast.If,)):
            self._record_accesses_shallow(stmt)
            self._walk_stmts(stmt.body)
            self._walk_stmts(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.While)):
            self._record_accesses_shallow(stmt)
            self._walk_stmts(stmt.body)
            self._walk_stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._walk_stmts(stmt.body)
            for handler in stmt.handlers:
                self._walk_stmts(handler.body)
            self._walk_stmts(stmt.orelse)
            self._walk_stmts(stmt.finalbody)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions run later, under their own scopes
        self._record_accesses(stmt)

    def _record_accesses_shallow(self, stmt: ast.stmt) -> None:
        """Record only the header expression of a compound statement."""
        header: Optional[ast.expr] = None
        if isinstance(stmt, (ast.If, ast.While)):
            header = stmt.test
        elif isinstance(stmt, ast.For):
            header = stmt.iter
        if header is None:
            return
        carrier = ast.Expr(value=header)
        ast.copy_location(carrier, stmt)
        self._record_accesses(carrier)

    def _interprocedural_edges(self, stmt: ast.stmt) -> None:
        """Edges from held locks to locks a called same-class method takes."""
        if not self.held:
            return
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                name = _self_attr(node.func)
                if name is None:
                    continue
                summary = self.summaries.get(name)
                if summary is None:
                    continue
                for acquired in summary.acquired:
                    for holding in self.held:
                        if holding != acquired:
                            self.report.edges.append(
                                (holding, acquired, node.lineno)
                            )


def analyze_class(cls: ast.ClassDef) -> ClassReport:
    """Two-pass lock analysis of one class."""
    lock_attrs: Set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and _calls_factory(node.value, LOCK_FACTORIES):
            targets = node.targets
        elif (
            isinstance(node, ast.AnnAssign)
            and node.value is not None
            and _calls_factory(node.value, LOCK_FACTORIES)
        ):
            targets = [node.target]
        else:
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                lock_attrs.add(attr)
    report = ClassReport(
        name=cls.name,
        lock_attrs=lock_attrs,
        spawns=_calls_factory(cls, SPAWN_FACTORIES),
    )
    methods = [
        node
        for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    summaries: Dict[str, MethodSummary] = {}
    for method in methods:
        walker = _FunctionWalker(ClassReport(cls.name, lock_attrs, False), method.name, None)
        summaries[method.name] = walker.walk(method.body)
    for method in methods:
        walker = _FunctionWalker(report, method.name, summaries)
        walker.walk(method.body)
    return report


def _iter_target_modules(index: CodeIndex) -> List[ModuleInfo]:
    serving = list(index.iter_modules("repro.serving"))
    return serving if serving else list(index.iter_modules())


def _iter_classes(module: ModuleInfo) -> List[ast.ClassDef]:
    return [node for node in module.tree.body if isinstance(node, ast.ClassDef)]


@rule(
    "CONC001",
    "lock-order inversion",
    "per-class lock acquisition order is a DAG (PR 8 migration interlock)",
)
def check_lock_order(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in _iter_target_modules(index):
        for cls in _iter_classes(module):
            report = analyze_class(cls)
            if not report.lock_attrs:
                continue
            edges: Dict[Tuple[str, str], int] = {}
            for source, target, line in report.edges:
                edges.setdefault((source, target), line)
            for (source, target), line in sorted(edges.items()):
                reverse = edges.get((target, source))
                if reverse is not None and source < target:
                    findings.append(
                        Finding(
                            rule="CONC001",
                            severity=Severity.ERROR,
                            file=module.rel,
                            line=line,
                            message=(
                                f"lock-order inversion in {cls.name}: "
                                f"'{source}' is taken before '{target}' "
                                f"(line {line}) but '{target}' before "
                                f"'{source}' (line {reverse})"
                            ),
                            suggestion=(
                                "pick one global order for the two locks and "
                                "acquire them in that order on every path"
                            ),
                        )
                    )
            for use in report.double_acquires:
                findings.append(
                    Finding(
                        rule="CONC001",
                        severity=Severity.WARNING if use.group else Severity.ERROR,
                        file=module.rel,
                        line=use.line,
                        message=(
                            f"{cls.name} acquires lock '{use.attr}' while "
                            "already holding it"
                            + (
                                " (two members of the same lock list — "
                                "deadlock-free only if acquisition order is "
                                "canonical)"
                                if use.group
                                else " (self-deadlock for a non-reentrant Lock)"
                            )
                        ),
                        suggestion=(
                            "sort the lock indices before acquiring"
                            if use.group
                            else "use an RLock or restructure the critical section"
                        ),
                    )
                )
    return findings


@rule(
    "CONC002",
    "unguarded shared state",
    "state touched under a lock is never mutated outside one (PR 2/8 hubs)",
)
def check_unguarded_state(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in _iter_target_modules(index):
        for cls in _iter_classes(module):
            report = analyze_class(cls)
            if not report.lock_attrs:
                continue
            mutated_under: Set[str] = set()
            reported: Set[str] = set()
            for attr, under, _, _, _ in report.mutations:
                if under:
                    mutated_under.add(attr)
            guarded = mutated_under | report.loads_under_lock
            for attr, under, line, kind, method in report.mutations:
                if under or attr in reported or attr in report.lock_attrs:
                    continue
                if attr in guarded:
                    reported.add(attr)
                    findings.append(
                        Finding(
                            rule="CONC002",
                            severity=Severity.ERROR,
                            file=module.rel,
                            line=line,
                            message=(
                                f"attribute '{attr}' of {cls.name} is mutated "
                                f"outside any lock in {method}() but accessed "
                                "under a lock elsewhere in the class"
                            ),
                            suggestion=(
                                "take the same lock around this mutation, or "
                                "document the single-writer ownership in the "
                                "analysis baseline"
                            ),
                        )
                    )
                elif kind == "augassign" and report.spawns:
                    reported.add(attr)
                    findings.append(
                        Finding(
                            rule="CONC002",
                            severity=Severity.ERROR,
                            file=module.rel,
                            line=line,
                            message=(
                                f"read-modify-write of '{attr}' in "
                                f"{cls.name}.{method}() outside any lock in a "
                                "class that spawns workers (lost-update race)"
                            ),
                            suggestion="guard the increment with an existing lock",
                        )
                    )
    return findings


@rule(
    "CONC003",
    "blocking call under lock",
    "critical sections never wait on queues/pipes/sleeps (PR 8 submit path)",
)
def check_blocking_under_lock(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in _iter_target_modules(index):
        for cls in _iter_classes(module):
            report = analyze_class(cls)
            if not report.lock_attrs:
                continue
            for held, call, line in report.blocking_under_lock:
                findings.append(
                    Finding(
                        rule="CONC003",
                        severity=Severity.ERROR,
                        file=module.rel,
                        line=line,
                        message=(
                            f"potentially blocking call {call} while holding "
                            f"lock '{held}'"
                        ),
                        suggestion=(
                            "move the call outside the critical section, or "
                            "baseline it with the reason the wait is bounded"
                        ),
                    )
                )
    return findings


def _mentions_hub(node: ast.expr) -> bool:
    """Whether a call receiver expression refers to a hub object."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == "hub":
            return True
        if isinstance(child, ast.Attribute) and child.attr == "hub":
            return True
    return False


@rule(
    "CONC004",
    "blocking hub call in coroutine",
    "the asyncio front door never blocks its event loop (PR 8 aioserver)",
)
def check_async_blocking(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in _iter_target_modules(index):
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            awaited = {
                id(node.value)
                for node in ast.walk(func)
                if isinstance(node, ast.Await)
            }
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                attr = node.func.attr
                receiver = node.func.value
                if attr in HUB_BLOCKING_METHODS and _mentions_hub(receiver):
                    findings.append(
                        Finding(
                            rule="CONC004",
                            severity=Severity.ERROR,
                            file=module.rel,
                            line=node.lineno,
                            message=(
                                f"coroutine {func.name}() calls blocking hub "
                                f"method {ast.unparse(node.func)}() on the "
                                "event loop"
                            ),
                            suggestion=(
                                "wrap it: await asyncio.to_thread("
                                f"{ast.unparse(node.func)}, ...)"
                            ),
                        )
                    )
                elif (
                    attr == "sleep"
                    and isinstance(receiver, ast.Name)
                    and receiver.id == "time"
                ):
                    findings.append(
                        Finding(
                            rule="CONC004",
                            severity=Severity.ERROR,
                            file=module.rel,
                            line=node.lineno,
                            message=(
                                f"coroutine {func.name}() calls time.sleep() "
                                "on the event loop"
                            ),
                            suggestion="use await asyncio.sleep(...)",
                        )
                    )
                elif (
                    attr in ("wait", "join", "get")
                    and id(node) not in awaited
                    and _mentions_hub(receiver)
                ):
                    findings.append(
                        Finding(
                            rule="CONC004",
                            severity=Severity.ERROR,
                            file=module.rel,
                            line=node.lineno,
                            message=(
                                f"coroutine {func.name}() makes un-awaited "
                                f"blocking call {ast.unparse(node.func)}()"
                            ),
                            suggestion="hand it to a worker thread",
                        )
                    )
    return findings
