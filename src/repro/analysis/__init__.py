"""Codebase-aware static analysis (`python -m repro.analysis`).

This package is correctness tooling *for this repository*: every analyzer
encodes an invariant some earlier PR established by convention and review —
lock ordering and publication discipline in the serving layer (PR 2/8),
snapshot/restore completeness of the per-backend state envelopes (PR 2/3),
the scalar-reference parity contract behind ``utils/fastpath.py`` (PR 4),
and the CLI/metrics documentation surface (PR 1/7).  Instead of trusting
each future PR's reviewer to re-check those invariants by hand, the rules
here walk the real tree's ASTs and fail CI when one breaks.

The pieces:

* :mod:`repro.analysis.index` — :class:`CodeIndex`, the parsed view of the
  tree (module ASTs, doc text, the parity-test source) every rule reads.
* :mod:`repro.analysis.engine` — the rule registry and runner; rules
  return structured :class:`~repro.analysis.findings.Finding` objects.
* :mod:`repro.analysis.findings` — findings, severities, and the committed
  suppression baseline (``ANALYSIS_baseline.json``; every entry carries a
  human reason).
* rule families: :mod:`~repro.analysis.concurrency` (CONC*),
  :mod:`~repro.analysis.snapshots` (SNAP*), :mod:`~repro.analysis.parity`
  (PARITY*), :mod:`~repro.analysis.drift` (DRIFT*), and
  :mod:`~repro.analysis.lint` (LINT*).

Typical use::

    PYTHONPATH=src python -m repro.analysis --check      # CI gate
    PYTHONPATH=src python -m repro.analysis --rule CONC003
"""

from repro.analysis.engine import RULES, Rule, run_rules
from repro.analysis.findings import (
    Baseline,
    BaselineError,
    Finding,
    Severity,
    Suppression,
    load_baseline,
)
from repro.analysis.index import CodeIndex, ModuleInfo

# Importing the rule modules registers their rules.
from repro.analysis import concurrency as _concurrency  # noqa: F401
from repro.analysis import drift as _drift  # noqa: F401
from repro.analysis import lint as _lint  # noqa: F401
from repro.analysis import parity as _parity  # noqa: F401
from repro.analysis import snapshots as _snapshots  # noqa: F401

__all__ = [
    "Baseline",
    "BaselineError",
    "CodeIndex",
    "Finding",
    "ModuleInfo",
    "RULES",
    "Rule",
    "Severity",
    "Suppression",
    "load_baseline",
    "run_rules",
]
