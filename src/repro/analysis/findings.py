"""Structured findings and the committed suppression baseline.

A finding is the analyzer's unit of output: rule id, severity, location,
message, and (when the rule knows one) a suggested fix.  The baseline
(``ANALYSIS_baseline.json``) is the repository's explicit list of findings
that are *intentional* — every entry must carry a reason string, so the
file doubles as documentation of the patterns the serving layer relies on
(producer-owned ring cursors, ordered multi-lock acquisition, enqueue
under the shard lock, ...).  Deleting an entry whose pattern still exists
re-surfaces the finding and fails ``--check``.

Baseline entries match findings structurally (rule + file + a message
substring) rather than by line number, so routine edits that shift lines
do not invalidate the baseline, while moving the pattern to another file
or changing its shape does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple


class Severity:
    """Finding severities (plain constants keep the JSON form obvious)."""

    ERROR = "error"
    WARNING = "warning"

    ALL = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    severity: str
    file: str
    line: int
    message: str
    suggestion: Optional[str] = None

    def describe(self) -> str:
        """The one-line human rendering (``file:line: RULE severity: ...``)."""
        text = f"{self.file}:{self.line}: {self.rule} {self.severity}: {self.message}"
        if self.suggestion:
            text += f" (suggested fix: {self.suggestion})"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "suggestion": self.suggestion,
        }

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.file, self.line, self.rule, self.message)


class BaselineError(ValueError):
    """Raised for a malformed baseline file (missing reason, bad JSON...)."""


@dataclass(frozen=True)
class Suppression:
    """One baseline entry: which findings it silences, and why."""

    rule: str
    file: str
    contains: str
    reason: str

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.file == finding.file
            and self.contains in finding.message
        )

    def describe(self) -> str:
        return f"{self.rule} @ {self.file} (contains {self.contains!r})"


@dataclass
class Baseline:
    """The suppression set plus bookkeeping of which entries were used."""

    suppressions: List[Suppression] = field(default_factory=list)
    path: Optional[Path] = None

    def partition(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Suppression]]:
        """Split findings into (unsuppressed, suppressed); report stale entries.

        A suppression is *stale* when no finding matched it — usually the
        suppressed pattern was fixed and the entry should be deleted.
        """
        used = [False] * len(self.suppressions)
        unsuppressed: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            matched = False
            for position, suppression in enumerate(self.suppressions):
                if suppression.matches(finding):
                    used[position] = True
                    matched = True
            (suppressed if matched else unsuppressed).append(finding)
        stale = [
            suppression
            for position, suppression in enumerate(self.suppressions)
            if not used[position]
        ]
        return unsuppressed, suppressed, stale


def load_baseline(path: Path) -> Baseline:
    """Load and validate a baseline file.

    Every entry must carry non-empty ``rule``, ``file`` and ``reason``
    strings — a suppression without a recorded reason defeats the point of
    the file and is rejected outright.
    """
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(raw, dict) or not isinstance(raw.get("suppressions"), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'suppressions' list"
        )
    suppressions: List[Suppression] = []
    for position, entry in enumerate(raw["suppressions"]):
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline entry {position} is not an object")
        rule = entry.get("rule")
        file = entry.get("file")
        reason = entry.get("reason")
        contains = entry.get("contains", "")
        if not (isinstance(rule, str) and rule):
            raise BaselineError(f"baseline entry {position} lacks a 'rule'")
        if not (isinstance(file, str) and file):
            raise BaselineError(f"baseline entry {position} lacks a 'file'")
        if not (isinstance(reason, str) and reason.strip()):
            raise BaselineError(
                f"baseline entry {position} ({rule} @ {file}) lacks a 'reason' — "
                "every suppression must document why the pattern is intentional"
            )
        if not isinstance(contains, str):
            raise BaselineError(
                f"baseline entry {position} ({rule} @ {file}): 'contains' "
                "must be a string"
            )
        suppressions.append(
            Suppression(rule=rule, file=file, contains=contains, reason=reason)
        )
    return Baseline(suppressions=suppressions, path=path)
