"""Fast-path parity contract checker (rules PARITY001/PARITY002).

PR 4's optimization contract: every vectorized hot path keeps the scalar
reference implementation alive behind the ``repro.utils.fastpath`` gate,
and the equivalence of the two is asserted bit-for-bit by
``tests/test_event_path_parity.py``.  The contract has two mechanical
halves this rule pair checks:

* **PARITY001** — a module that consults :func:`scalar_forced` (i.e. one
  that *has* a gated fast path) must be exercised by the parity harness:
  its dotted module name has to appear in the committed parity test file.
  A new gated module that nobody wired into the harness is a fast path
  with no equivalence proof.
* **PARITY002** — a class that exposes a ``vectorized`` switch (the
  repository's naming convention for dual-path implementations, e.g.
  ``NearestNeighbourFilter(vectorized=False)``) must live in a module
  that consults :func:`scalar_forced`.  A ``vectorized`` flag without the
  global gate means ``REPRO_FORCE_SCALAR=1`` silently stops covering that
  class, breaking the bench suite's ``speedup_vs_scalar`` methodology.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.engine import rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import CodeIndex, ModuleInfo

GATE_FUNCTION = "scalar_forced"
SWITCH_ATTRIBUTE = "vectorized"


def _defines_gate(module: ModuleInfo) -> bool:
    return any(
        isinstance(node, ast.FunctionDef) and node.name == GATE_FUNCTION
        for node in module.tree.body
    )


def _calls_gate(module: ModuleInfo) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == GATE_FUNCTION:
                return True
            if isinstance(func, ast.Attribute) and func.attr == GATE_FUNCTION:
                return True
    return False


def _vectorized_switch_line(cls: ast.ClassDef) -> Optional[int]:
    """Line where the class declares a ``vectorized`` switch, if it does."""
    for node in ast.walk(cls):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if node.target.id == SWITCH_ATTRIBUTE:
                return node.lineno
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == SWITCH_ATTRIBUTE
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return node.lineno
    return None


@rule(
    "PARITY001",
    "gated fast path without parity coverage",
    "every scalar_forced() caller is exercised by the parity harness (PR 4)",
)
def check_parity_coverage(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    parity_text = index.parity_test_text
    for module in index.iter_modules():
        if _defines_gate(module) or not _calls_gate(module):
            continue
        if parity_text is None:
            findings.append(
                Finding(
                    rule="PARITY001",
                    severity=Severity.ERROR,
                    file=module.rel,
                    line=1,
                    message=(
                        f"module {module.name} gates a fast path on "
                        f"{GATE_FUNCTION}() but the tree has no parity "
                        "harness (tests/test_event_path_parity.py)"
                    ),
                    suggestion="add the parity test file and cover the module",
                )
            )
            continue
        if module.name not in parity_text:
            findings.append(
                Finding(
                    rule="PARITY001",
                    severity=Severity.ERROR,
                    file=module.rel,
                    line=1,
                    message=(
                        f"module {module.name} gates a fast path on "
                        f"{GATE_FUNCTION}() but is never referenced by "
                        "tests/test_event_path_parity.py"
                    ),
                    suggestion=(
                        "add a scalar-vs-vectorized equivalence case for it "
                        "to the parity harness"
                    ),
                )
            )
    return findings


@rule(
    "PARITY002",
    "vectorized switch without scalar gate",
    "every 'vectorized' dual-path class honours REPRO_FORCE_SCALAR (PR 4)",
)
def check_vectorized_gate(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    for module in index.iter_modules():
        if _defines_gate(module):
            continue
        gated = _calls_gate(module)
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            line = _vectorized_switch_line(node)
            if line is not None and not gated:
                findings.append(
                    Finding(
                        rule="PARITY002",
                        severity=Severity.ERROR,
                        file=module.rel,
                        line=line,
                        message=(
                            f"class {node.name} exposes a '{SWITCH_ATTRIBUTE}' "
                            f"switch but its module never consults "
                            f"{GATE_FUNCTION}(), so REPRO_FORCE_SCALAR cannot "
                            "pin it to the reference path"
                        ),
                        suggestion=(
                            "include scalar_forced() in the dispatch condition "
                            "next to the instance switch"
                        ),
                    )
                )
    return findings
