"""The parsed view of the repository every analyzer rule reads.

A :class:`CodeIndex` is built once per run from a *root* directory (the
repository checkout, or a fixture tree in the analyzer's own tests).  It
parses every Python module under ``root/src`` (falling back to ``root``
itself when there is no ``src`` layout), and lazily loads the text files
some rules diff against: the documentation set (``README.md`` and
``docs/ARCHITECTURE.md``) for the drift rules, and the fast-path parity
test (``tests/test_event_path_parity.py``) for the parity contract.

Keeping all file access here means a rule never touches the filesystem —
which is what lets the test suite point the whole engine at small fixture
trees with known-good and known-bad twins.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: Documentation files the drift rules treat as the published surface.
DOC_FILES = ("README.md", "docs/ARCHITECTURE.md")

#: The committed parity harness the fast-path contract points at.
PARITY_TEST_FILE = "tests/test_event_path_parity.py"


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed Python module.

    ``rel`` is the root-relative POSIX path (what findings report), and
    ``name`` the dotted module name relative to the source root (what the
    parity rule matches against test imports).
    """

    path: Path
    rel: str
    name: str
    source: str
    tree: ast.Module


@dataclass
class CodeIndex:
    """Parsed modules plus the text surfaces rules compare against."""

    root: Path
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    _doc_text: Optional[str] = None
    _parity_text: Optional[str] = None

    @classmethod
    def build(cls, root: Path) -> "CodeIndex":
        """Parse every module under ``root/src`` (or ``root``)."""
        root = root.resolve()
        index = cls(root=root)
        src = root / "src"
        scan = src if src.is_dir() else root
        for path in sorted(scan.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            dotted = ".".join(path.relative_to(scan).with_suffix("").parts)
            if dotted.endswith(".__init__"):
                dotted = dotted[: -len(".__init__")]
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=rel)
            except (OSError, SyntaxError) as error:
                index.errors.append(f"{rel}: {error}")
                continue
            index.modules[dotted] = ModuleInfo(
                path=path, rel=rel, name=dotted, source=source, tree=tree
            )
        return index

    def get(self, name: str) -> Optional[ModuleInfo]:
        """The module with this dotted name, or ``None``."""
        return self.modules.get(name)

    def iter_modules(self, prefix: str = "") -> Iterator[ModuleInfo]:
        """All modules whose dotted name starts with ``prefix``."""
        for name in sorted(self.modules):
            if not prefix or name == prefix or name.startswith(prefix + "."):
                yield self.modules[name]

    def read_text(self, rel: str) -> Optional[str]:
        """Root-relative text file contents, or ``None`` when absent."""
        path = self.root / rel
        try:
            return path.read_text(encoding="utf-8")
        except OSError:
            return None

    @property
    def doc_text(self) -> str:
        """Concatenated documentation surface (drift-rule reference)."""
        if self._doc_text is None:
            parts = [self.read_text(rel) or "" for rel in DOC_FILES]
            self._doc_text = "\n".join(parts)
        return self._doc_text

    @property
    def parity_test_text(self) -> Optional[str]:
        """Source of the parity harness, or ``None`` when the tree has none."""
        if self._parity_text is None:
            self._parity_text = self.read_text(PARITY_TEST_FILE)
        return self._parity_text
