"""``python -m repro.analysis`` — run the repository's analyzers.

Exit codes follow the ``repro.bench`` convention:

* ``0`` — analysis ran; without ``--check`` findings are informational,
  with ``--check`` it additionally means no unsuppressed findings.
* ``1`` — ``--check`` and at least one unsuppressed finding (or a module
  that failed to parse).
* ``2`` — configuration/usage error: unknown rule id, malformed baseline
  (including a suppression without a reason), missing root.

Typical invocations::

    PYTHONPATH=src python -m repro.analysis                 # report
    PYTHONPATH=src python -m repro.analysis --check         # CI gate
    PYTHONPATH=src python -m repro.analysis --rule CONC003 --json
    PYTHONPATH=src python -m repro.analysis --baseline other.json --root /tree
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import RULES, run_rules
from repro.analysis.findings import Baseline, BaselineError, load_baseline
from repro.analysis.index import CodeIndex

DEFAULT_BASELINE = "ANALYSIS_baseline.json"


def _default_root() -> Path:
    """The repository checkout: cwd when it has the src layout, else the
    tree this package was imported from."""
    cwd = Path.cwd()
    if (cwd / "src" / "repro").is_dir():
        return cwd
    package_root = Path(__file__).resolve().parents[3]
    if (package_root / "src" / "repro").is_dir():
        return package_root
    return cwd


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based static analysis for this repository.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any unsuppressed finding remains (CI gate)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable, or comma-separated)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "suppression baseline to apply (default: ANALYSIS_baseline.json "
            "under the root when present)"
        ),
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="tree to analyze (default: this repository checkout)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list registered rules and their invariants, then exit",
    )
    return parser


def _selected_rules(raw: Optional[List[str]]) -> Optional[List[str]]:
    if raw is None:
        return None
    selected: List[str] = []
    for chunk in raw:
        selected.extend(part.strip() for part in chunk.split(",") if part.strip())
    return selected or None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list:
        for rule_id in sorted(RULES):
            entry = RULES[rule_id]
            print(f"{rule_id}  {entry.title}")
            print(f"        invariant: {entry.invariant}")
        return 0

    root = Path(args.root) if args.root else _default_root()
    if not root.is_dir():
        print(f"error: root {root} is not a directory", file=sys.stderr)
        return 2

    index = CodeIndex.build(root)
    try:
        findings = run_rules(index, _selected_rules(args.rule))
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    baseline = Baseline()
    baseline_path: Optional[Path] = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    elif (root / DEFAULT_BASELINE).is_file():
        baseline_path = root / DEFAULT_BASELINE
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    unsuppressed, suppressed, stale = baseline.partition(findings)
    if args.rule is not None:
        # A partial run only exercises some rules; the other rules'
        # suppressions legitimately match nothing, so staleness is only
        # meaningful on a full run.
        stale = []

    if args.json:
        report = {
            "root": str(root),
            "baseline": str(baseline_path) if baseline_path else None,
            "findings": [finding.to_dict() for finding in unsuppressed],
            "suppressed": [finding.to_dict() for finding in suppressed],
            "stale_suppressions": [
                {
                    "rule": entry.rule,
                    "file": entry.file,
                    "contains": entry.contains,
                    "reason": entry.reason,
                }
                for entry in stale
            ],
            "parse_errors": list(index.errors),
        }
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for finding in unsuppressed:
            print(finding.describe())
        for error in index.errors:
            print(f"parse error: {error}")
        for entry in stale:
            print(
                f"stale suppression: {entry.describe()} matched nothing — "
                "delete it or re-check the pattern"
            )
        print(
            f"{len(unsuppressed)} finding(s), {len(suppressed)} suppressed "
            f"by baseline, {len(stale)} stale suppression(s), "
            f"{len(index.errors)} parse error(s)"
        )

    if args.check and (unsuppressed or index.errors):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
