"""Docs drift checkers (rules DRIFT001/DRIFT002).

The repository's published operational surface is small and explicit: the
CLI flags of the ``repro.*`` entry points, and the Prometheus metric
names the observability layer (PR 7) exports.  Both are the kind of
surface that silently drifts — a new ``--flag`` or ``repro_*`` counter
ships in code, the docs never mention it, and an operator discovers it by
reading source.  These rules diff the code-side inventory against the
documentation set (``README.md`` + ``docs/ARCHITECTURE.md``):

* **DRIFT001** — every ``add_argument("--flag", ...)`` literal must
  appear somewhere in the docs.
* **DRIFT002** — every ``repro_*`` metric-name string literal must appear
  somewhere in the docs.

Matching is deliberately coarse (substring over the concatenated doc
text): the rules demand the name be *mentioned*, not documented in any
particular format, which keeps false positives near zero while still
catching the ship-and-forget case.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List

from repro.analysis.engine import rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.index import CodeIndex

#: Prometheus-style metric names the observability layer exports.
METRIC_NAME = re.compile(r"^repro_[a-z0-9_]+$")


@rule(
    "DRIFT001",
    "undocumented CLI flag",
    "every argparse flag of the repro.* CLIs is mentioned in the docs (PR 1+)",
)
def check_flag_drift(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    docs = index.doc_text
    for module in index.iter_modules():
        seen: Dict[str, int] = {}
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    seen.setdefault(arg.value, node.lineno)
        for flag, line in sorted(seen.items()):
            if flag not in docs:
                findings.append(
                    Finding(
                        rule="DRIFT001",
                        severity=Severity.ERROR,
                        file=module.rel,
                        line=line,
                        message=(
                            f"CLI flag '{flag}' ({module.name}) is not "
                            "mentioned in README.md or docs/ARCHITECTURE.md"
                        ),
                        suggestion=(
                            f"document '{flag}' in the relevant CLI section"
                        ),
                    )
                )
    return findings


@rule(
    "DRIFT002",
    "undocumented metric name",
    "every exported repro_* metric is mentioned in the docs (PR 7)",
)
def check_metric_drift(index: CodeIndex) -> List[Finding]:
    findings: List[Finding] = []
    docs = index.doc_text
    for module in index.iter_modules():
        seen: Dict[str, int] = {}
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and METRIC_NAME.match(node.value)
            ):
                seen.setdefault(node.value, node.lineno)
        for name, line in sorted(seen.items()):
            if name not in docs:
                findings.append(
                    Finding(
                        rule="DRIFT002",
                        severity=Severity.ERROR,
                        file=module.rel,
                        line=line,
                        message=(
                            f"metric name '{name}' ({module.name}) is not "
                            "mentioned in README.md or docs/ARCHITECTURE.md"
                        ),
                        suggestion=(
                            f"add '{name}' to the metrics table in the docs"
                        ),
                    )
                )
    return findings
