"""EBBIOT reproduction: low-complexity event-based tracking for IoVT surveillance.

This library reproduces "EBBIOT: A Low-complexity Tracking Algorithm for
Surveillance in IoVT using Stationary Neuromorphic Vision Sensors"
(Acharya et al., SOCC 2019):

* :mod:`repro.core` — the EBBIOT pipeline (EBBI, histogram RPN, overlap tracker).
* :mod:`repro.events`, :mod:`repro.sensor` — the event-camera substrate.
* :mod:`repro.simulation`, :mod:`repro.datasets` — the synthetic traffic
  recordings that stand in for the paper's DAVIS data.
* :mod:`repro.trackers` — the EBMS and Kalman-filter baselines.
* :mod:`repro.evaluation` — IoU-based precision/recall evaluation.
* :mod:`repro.resources` — the analytic compute/memory models of Eq. (1)-(8).
* :mod:`repro.runtime` — multi-recording streaming runtime
  (``python -m repro.runtime`` runs a synthetic fleet end to end).

Quickstart::

    from repro import EbbiotPipeline, EbbiotConfig
    from repro.datasets import build_recording, LT4_LIKE_SPEC
    from repro.evaluation import evaluate_recording

    recording = build_recording(LT4_LIKE_SPEC, duration_override_s=10.0)
    pipeline = EbbiotPipeline(EbbiotConfig())
    result = pipeline.process_stream(recording.stream)
    evaluation = evaluate_recording(
        result.track_history.observations, recording.annotations.frames
    )
"""

from repro.core import EbbiotConfig, EbbiotPipeline
from repro.events import EventStream
from repro.trackers import EbmsTracker, KalmanFilterTracker

__version__ = "1.0.0"

__all__ = [
    "EbbiotConfig",
    "EbbiotPipeline",
    "EventStream",
    "EbmsTracker",
    "KalmanFilterTracker",
    "__version__",
]
