"""ASCII renderers for binary frames, box overlays, histograms and curves."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from repro.utils.geometry import BoundingBox


def render_frame_ascii(
    frame: np.ndarray,
    boxes: Sequence[BoundingBox] = (),
    max_width: int = 80,
    max_height: int = 36,
) -> str:
    """Render a binary frame (origin bottom-left) as ASCII art.

    Active pixels are ``#`` (or ``@`` inside a box), inactive pixels are
    ``.`` (or ``+`` inside a box), so box overlays remain visible on both
    foreground and background.

    Parameters
    ----------
    frame:
        ``(height, width)`` binary array.
    boxes:
        Boxes to overlay (tracker or proposal boxes), in pixel coordinates.
    max_width, max_height:
        Output size in characters; the frame is block-downsampled to fit.
    """
    if frame.ndim != 2:
        raise ValueError(f"frame must be 2-D, got shape {frame.shape}")
    if max_width < 2 or max_height < 2:
        raise ValueError("output size must be at least 2x2 characters")
    height, width = frame.shape
    step_x = max(1, int(np.ceil(width / max_width)))
    step_y = max(1, int(np.ceil(height / max_height)))

    lines = []
    # Render top row first so the output reads with y increasing upwards.
    for y in range(height - step_y, -1, -step_y):
        characters = []
        for x in range(0, width, step_x):
            block_active = frame[y : y + step_y, x : x + step_x].sum() > 0
            in_box = any(box.contains_point(x + step_x / 2, y + step_y / 2) for box in boxes)
            if block_active:
                characters.append("@" if in_box else "#")
            else:
                characters.append("+" if in_box else ".")
        lines.append("".join(characters))
    return "\n".join(lines)


def render_histogram_ascii(
    histogram: np.ndarray, height: int = 8, label: str = ""
) -> str:
    """Render a 1-D histogram as a column chart of ``height`` text rows."""
    if histogram.ndim != 1:
        raise ValueError("histogram must be 1-D")
    if height < 1:
        raise ValueError("height must be >= 1")
    maximum = float(histogram.max()) if len(histogram) else 0.0
    lines = []
    if label:
        lines.append(f"{label} (max = {maximum:g})")
    if maximum <= 0:
        lines.append("(empty histogram)")
        return "\n".join(lines)
    for level in range(height, 0, -1):
        threshold = maximum * level / height
        row = "".join("|" if value >= threshold else " " for value in histogram)
        lines.append(row)
    lines.append("-" * len(histogram))
    return "\n".join(lines)


def render_precision_recall_curves(
    results_by_tracker: Mapping[str, Mapping[float, object]],
    metric: str = "precision",
    width: int = 50,
) -> str:
    """Render Fig. 4-style curves (metric vs IoU threshold) as text bars.

    Parameters
    ----------
    results_by_tracker:
        ``{tracker: {iou_threshold: PrecisionRecall}}`` as produced by
        :func:`repro.evaluation.sweep_iou_thresholds`.
    metric:
        ``"precision"`` or ``"recall"``.
    width:
        Bar width corresponding to a value of 1.0.
    """
    if metric not in ("precision", "recall"):
        raise ValueError(f"metric must be precision or recall, got {metric!r}")
    if not results_by_tracker:
        return "(no results)"
    lines = [f"{metric} vs IoU threshold (bar = {width} chars at 1.0)"]
    for tracker_name, by_threshold in results_by_tracker.items():
        lines.append(f"{tracker_name}:")
        for threshold in sorted(by_threshold):
            value = float(getattr(by_threshold[threshold], metric))
            bar = "#" * int(round(max(0.0, min(1.0, value)) * width))
            lines.append(f"  IoU>{threshold:.1f} {value:5.3f} |{bar}")
    return "\n".join(lines)


def render_track_trajectories(
    observations,
    width: int = 240,
    height: int = 180,
    max_width: int = 80,
    max_height: int = 24,
) -> str:
    """Plot track centroids over time on an ASCII canvas.

    Each track id is drawn with a distinct character (cycling through 0-9 and
    A-Z), so crossing trajectories remain distinguishable.
    """
    if max_width < 2 or max_height < 2:
        raise ValueError("output size must be at least 2x2 characters")
    canvas = [["." for _ in range(max_width)] for _ in range(max_height)]
    symbols = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    symbol_by_track: Dict[int, str] = {}
    for observation in observations:
        track_id = observation.track_id
        if track_id not in symbol_by_track:
            symbol_by_track[track_id] = symbols[len(symbol_by_track) % len(symbols)]
        cx, cy = observation.box.center
        column = int(np.clip(cx / width * (max_width - 1), 0, max_width - 1))
        row = int(np.clip(cy / height * (max_height - 1), 0, max_height - 1))
        # Row 0 of the canvas is the top of the output; y grows upwards.
        canvas[max_height - 1 - row][column] = symbol_by_track[track_id]
    legend = ", ".join(
        f"{symbol} = track {track_id}" for track_id, symbol in sorted(symbol_by_track.items())
    )
    body = "\n".join("".join(row) for row in canvas)
    return body + ("\n" + legend if legend else "")
