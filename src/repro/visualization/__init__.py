"""Terminal-friendly visualisation of EBBI frames, tracks and metric curves.

The paper's figures are images; in a headless reproduction the closest
useful equivalents are ASCII renderings (frames with box overlays,
histograms, precision/recall curves) that can be printed from the examples
and benchmarks and diffed in CI.
"""

from repro.visualization.ascii import (
    render_frame_ascii,
    render_histogram_ascii,
    render_precision_recall_curves,
    render_track_trajectories,
)

__all__ = [
    "render_frame_ascii",
    "render_histogram_ascii",
    "render_precision_recall_curves",
    "render_track_trajectories",
]
