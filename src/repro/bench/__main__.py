"""CLI for the benchmark harness: event-path scenarios and serving scale.

Examples::

    PYTHONPATH=src python -m repro.bench                      # full run, write baseline artifact
    PYTHONPATH=src python -m repro.bench --quick              # CI smoke sizes
    PYTHONPATH=src python -m repro.bench --scenarios nn_filter,ebms_pipeline
    PYTHONPATH=src python -m repro.bench --quick --check \\
        --baseline BENCH_event_path.json --tolerance 0.30     # regression gate
    PYTHONPATH=src python -m repro.bench --suite serving_scale  # thread vs process hub
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.harness import (
    FULL_PROFILE,
    QUICK_PROFILE,
    build_report,
    calibrate,
    compare_reports,
    dump_report,
    load_report,
)
from repro.bench.scenarios import SCENARIOS, parse_scenario_list

#: Suite name -> (full-profile default output, quick-profile default output).
SUITES = {
    "event_path": ("BENCH_event_path.json", "BENCH_event_path_quick.json"),
    "serving_scale": ("BENCH_serving_scale.json", "BENCH_serving_scale_quick.json"),
}


def format_scenarios(report: dict) -> str:
    """Human-readable per-scenario summary table."""
    header = f"{'scenario':<18} {'primary':>16} {'value':>12} {'speedup':>9}"
    lines = [header, "-" * len(header)]
    for name, metrics in report["scenarios"].items():
        primary = metrics.get("primary", "")
        value = metrics.get(primary, 0.0)
        speedup = next(
            (
                metrics[key]
                for key in sorted(metrics)
                if key.startswith("speedup_vs_")
            ),
            None,
        )
        speedup_text = f"{speedup:8.1f}x" if speedup is not None else f"{'—':>9}"
        lines.append(f"{name:<18} {primary:>16} {value:>12.1f} {speedup_text}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--suite",
        choices=tuple(SUITES),
        default="event_path",
        help="benchmark suite: 'event_path' (filter/pipeline/session "
        "scenarios) or 'serving_scale' (thread vs process hub across "
        "fleet sizes)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke sizes instead of the full committed-baseline workload",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        metavar="NAME[,NAME...]",
        help="event_path scenarios to run (default: all; "
        "not applicable to --suite serving_scale)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report ('-' for stdout only; default: "
        "the suite's committed artifact name, e.g. BENCH_event_path.json or "
        "BENCH_serving_scale.json, with a _quick variant under --quick, "
        "so each profile round-trips against its own committed baseline)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="baseline report to compare against (default: the --output path, "
        "read before it is overwritten)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero when any compared metric regresses beyond the tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop vs the baseline (default 0.30)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in SCENARIOS.items():
            print(f"{name:<18} {fn.__doc__.splitlines()[0]}")
        print(f"{'serving_scale':<18} thread vs process hub scaling suite (--suite serving_scale)")
        return 0

    if args.suite == "serving_scale" and args.scenarios is not None:
        print(
            "error: --scenarios applies to the event_path suite only",
            file=sys.stderr,
        )
        return 2

    if args.output is None:
        full_output, quick_output = SUITES[args.suite]
        args.output = quick_output if args.quick else full_output
    baseline_path = args.baseline or (args.output if args.output != "-" else None)
    baseline = load_report(baseline_path) if baseline_path else None

    calibration = calibrate()

    if args.suite == "serving_scale":
        from repro.bench.serving_scale import (
            FULL_SERVING_PROFILE,
            QUICK_SERVING_PROFILE,
            run_suite,
        )

        profile = QUICK_SERVING_PROFILE if args.quick else FULL_SERVING_PROFILE
        print(
            f"profile {profile.name}: sensors {profile.sensor_counts}, "
            f"{profile.scenes} scene(s) x {profile.duration_s:.1f} s, "
            f"{profile.batch_us} us batches, {profile.workers} workers",
            flush=True,
        )
        print(f"calibration score: {calibration['score']:.2f}", flush=True)
        results = run_suite(profile, log=lambda line: print(line, flush=True))
    else:
        try:
            names = parse_scenario_list(args.scenarios or ",".join(SCENARIOS))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        profile = QUICK_PROFILE if args.quick else FULL_PROFILE
        print(
            f"profile {profile.name}: {profile.scenes} scene(s) x "
            f"{profile.duration_s:.1f} s, {len(names)} scenario(s)",
            flush=True,
        )
        print(f"calibration score: {calibration['score']:.2f}", flush=True)
        results = {}
        for name in names:
            print(f"  running {name} ...", flush=True)
            results[name] = SCENARIOS[name](profile)
    report = build_report(profile, results, calibration, benchmark=args.suite)

    print()
    print(format_scenarios(report))

    exit_code = 0
    if baseline is not None:
        if baseline.get("profile") != report["profile"]:
            print(
                f"note: comparing a {report['profile']!r} run against a "
                f"{baseline.get('profile')!r} baseline — short runs carry "
                "extra warm-up overhead, so prefer a matching-profile "
                "baseline for tight tolerances"
            )
        comparisons = compare_reports(report, baseline, tolerance=args.tolerance)
        if comparisons:
            print()
            print(f"baseline: {baseline_path} (tolerance {args.tolerance:.0%})")
            for comparison in comparisons:
                print(f"  {comparison.describe()}")
            if args.check and any(c.regressed for c in comparisons):
                exit_code = 1
        elif args.check:
            # A gate that has nothing to compare is not a passing gate:
            # a renamed baseline or scenario would otherwise silently
            # disable the regression check while CI stays green.
            print(
                f"error: --check found nothing comparable in baseline "
                f"{baseline_path}",
                file=sys.stderr,
            )
            exit_code = 2
    elif args.check:
        print(
            f"error: --check requested but no baseline found at {baseline_path}",
            file=sys.stderr,
        )
        exit_code = 2

    if args.output == "-":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        dump_report(report, args.output)
        print(f"\nwrote JSON report to {args.output}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
