"""Serving-scale benchmark: thread hub vs process hub across fleet sizes.

``python -m repro.bench --suite serving_scale`` drives both hub flavours
with the *same* deterministic synthetic fleet and reports, per sensor
count, aggregate throughput, per-sensor scaling efficiency and pooled
tail latency.  The committed ``BENCH_serving_scale.json`` artifact is the
regression gate for the process-per-shard re-architecture: its headline
``speedup_vs_thread`` metric (process-hub aggregate fps over thread-hub
aggregate fps at the 16-sensor cell) is a same-machine ratio, so the
harness compares it raw across machines.

Measurement methodology — the parts that tame single-box variance:

* **merged single-feeder submission**: every sensor's batches are merged
  into one stream-time-sorted list and submitted from the bench thread,
  the way a gateway would multiplex a fleet onto the hub.  One feeder
  thread per sensor (what ``loadgen`` does for pacing realism) adds
  GIL/scheduler churn that swamps the hub-architecture signal at small
  batch sizes;
* **fine batches** (default 500 us of stream time, ~tens of events) keep
  the workload in the regime the re-architecture targets — per-batch
  overhead dominating per-event compute — which is where the thread
  hub's GIL serialization hurts;
* **warm-up + median-of-N**: each hub flavour gets one discarded warm-up
  run (allocator, fork, and import effects), then every cell runs
  ``trials`` times and the median-throughput trial is reported.

Live-vs-batch parity is asserted on every run: a small fleet is replayed
through each hub with the same merged driver and every sensor's closing
``RecordingResult`` must match a batch ``process_stream`` of its source
recording frame-for-frame (frames *and* track observations).  A mismatch
raises — a fast wrong hub must never look like a speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.pipeline import EbbiotPipeline
from repro.runtime.scenes import build_scene_recordings
from repro.serving.hub import HubConfig
from repro.serving.loadgen import HUB_KINDS, _pooled_latency_ms, make_hub, split_batches

#: Close-side drain allowance per cell; generous because the 64-sensor
#: thread cell legitimately queues seconds of work behind the GIL.
CLOSE_TIMEOUT_S = 180.0


@dataclass(frozen=True)
class ServingScaleProfile:
    """Workload sizes for one serving-scale run.

    ``full`` is the committed-baseline configuration; ``quick`` trims the
    fleet for CI smoke.  ``queue_capacity`` (thread hub) and ``ring_kib``
    (process hub) are sized so neither transport stalls the feeder on the
    largest cell — the cells measure the hubs' processing architecture,
    not their buffer tuning.
    """

    name: str = "full"
    sensor_counts: Tuple[int, ...] = (1, 4, 16, 64)
    scenes: int = 4
    duration_s: float = 2.0
    batch_us: int = 500
    workers: int = 4
    trials: int = 3
    warmup_batches: int = 4_000
    queue_capacity: int = 1_024
    ring_kib: int = 8_192
    parity_sensors: int = 4
    seed: int = 0

    #: The cell the headline thread-vs-process ratio is taken at (falls
    #: back to the largest cell when absent from ``sensor_counts``).
    speedup_cell: int = 16


FULL_SERVING_PROFILE = ServingScaleProfile()
QUICK_SERVING_PROFILE = ServingScaleProfile(
    name="quick",
    sensor_counts=(1, 4, 16),
    scenes=3,
    duration_s=1.0,
    trials=2,
    warmup_batches=2_000,
)


def _hub_config(kind: str, profile: ServingScaleProfile) -> HubConfig:
    """Per-flavour hub configuration for one cell.

    Both hubs block on backpressure so no batch is ever shed — parity and
    fairness require every cell to process the identical workload.
    """
    if kind == "thread":
        return HubConfig(
            num_workers=profile.workers,
            queue_capacity=profile.queue_capacity,
            backpressure="block",
        )
    return HubConfig(
        num_workers=profile.workers,
        backpressure="block",
        ring_capacity_bytes=profile.ring_kib * 1024,
    )


def _build_fleet(profile: ServingScaleProfile):
    """Render the scene fleet once and pre-split every scene's batches.

    Sensors cycle the distinct scenes (as :func:`repro.serving.loadgen.
    build_workload` does), so the per-scene batch lists are shared across
    sensors — batches are read-only views and ``submit`` copies on the
    way in, making the sharing safe and the workload build O(scenes).
    """
    recordings = build_scene_recordings(
        profile.scenes, duration_s=profile.duration_s, base_seed=profile.seed
    )
    scene_batches = [
        split_batches(recording.stream.events, profile.batch_us)
        for recording in recordings
    ]
    return recordings, scene_batches


def _workload_for(profile, recordings, scene_batches, sensors: int):
    """``(sensor_id, scene_index, batches)`` rows for a ``sensors``-wide cell."""
    workload = []
    for index in range(sensors):
        scene = index % len(recordings)
        workload.append(
            (f"{recordings[scene].name}#{index:03d}", scene, scene_batches[scene])
        )
    return workload


def _merge_submissions(workload) -> List[Tuple[str, np.ndarray]]:
    """Interleave every sensor's batches into one stream-time-sorted feed.

    The sort is stable, so batches sharing a start time keep sensor
    registration order — per-sensor batch order (the only order the hubs
    guarantee) is preserved exactly.
    """
    merged = [
        (t_start_us, sensor_id, batch)
        for sensor_id, _, batches in workload
        for t_start_us, batch in batches
    ]
    merged.sort(key=lambda item: item[0])
    return [(sensor_id, batch) for _, sensor_id, batch in merged]


def _run_cell(kind: str, profile, workload, merged) -> Dict[str, float]:
    """One timed replay of a cell through a fresh hub.

    The timed window covers the submit loop plus the close-side drain of
    every sensor — aggregate throughput counts the work until the last
    frame is actually produced, not until the feeder's queue empties.
    """
    hub = make_hub(kind, _hub_config(kind, profile))
    with hub:
        for sensor_id, _, _ in workload:
            hub.register(sensor_id)
        started = time.perf_counter()
        for sensor_id, batch in merged:
            hub.submit(sensor_id, batch)
        for sensor_id, _, _ in workload:
            hub.close_sensor(sensor_id, timeout=CLOSE_TIMEOUT_S)
        wall_s = time.perf_counter() - started
        totals = hub.telemetry_dict()["totals"]
        latency = _pooled_latency_ms(hub.merged_metrics().state_dict())
    return {
        "wall_s": wall_s,
        "frames": float(totals["frames_emitted"]),
        "events": float(totals["events_received"]),
        "frames_per_s": totals["frames_emitted"] / wall_s if wall_s > 0 else 0.0,
        "events_per_s": totals["events_received"] / wall_s if wall_s > 0 else 0.0,
        "p50_ms": latency["p50_ms"],
        "p99_ms": latency["p99_ms"],
    }


def _assert_parity(kind: str, profile, recordings, scene_batches) -> int:
    """Replay a small fleet and require frame-for-frame batch parity.

    Every sensor's closing :class:`RecordingResult` must match a batch
    ``process_stream`` of its source recording on event count, frame
    count and track observations — the live path may coalesce batches
    but must never change the output.  Raises ``RuntimeError`` on any
    divergence so a broken hub can never post a benchmark number.
    """
    sensors = min(profile.parity_sensors, max(profile.sensor_counts))
    workload = _workload_for(profile, recordings, scene_batches, sensors)
    merged = _merge_submissions(workload)
    config = _hub_config(kind, profile)

    expected = {}
    for _, scene, _ in workload:
        if scene not in expected:
            expected[scene] = EbbiotPipeline(config.pipeline_config).process_stream(
                recordings[scene].stream, collect_frames=False
            )

    hub = make_hub(kind, config)
    with hub:
        for sensor_id, _, _ in workload:
            hub.register(sensor_id)
        for sensor_id, batch in merged:
            hub.submit(sensor_id, batch)
        results = {
            sensor_id: hub.close_sensor(sensor_id, timeout=CLOSE_TIMEOUT_S)
            for sensor_id, _, _ in workload
        }

    for sensor_id, scene, _ in workload:
        result = results[sensor_id]
        reference = expected[scene]
        stream = recordings[scene].stream
        live = (
            result.num_events,
            result.num_frames,
            result.num_track_observations,
        )
        batch = (
            len(stream),
            reference.num_frames,
            reference.total_track_observations(),
        )
        if live != batch:
            raise RuntimeError(
                f"{kind} hub diverged from batch replay for {sensor_id!r}: "
                f"live (events, frames, observations) = {live}, batch = {batch}"
            )
    return sensors


def run_suite(
    profile: ServingScaleProfile, log: Callable[[str], None] = lambda line: None
) -> Dict[str, Dict[str, float]]:
    """Run every cell for both hub flavours; returns the scenario dict.

    The returned mapping has one scenario per hub flavour
    (``thread_hub`` / ``process_hub``) so the harness gates each hub's
    absolute throughput independently, plus the machine-independent
    ``speedup_vs_thread`` ratio on the process scenario.
    """
    recordings, scene_batches = _build_fleet(profile)
    counts = sorted(set(profile.sensor_counts))
    max_n = counts[-1]
    speedup_cell = (
        profile.speedup_cell if profile.speedup_cell in counts else max_n
    )

    cells: Dict[str, Dict[int, Dict[str, float]]] = {}
    for kind in HUB_KINDS:
        warm_workload = _workload_for(profile, recordings, scene_batches, max_n)
        warm_merged = _merge_submissions(warm_workload)[: profile.warmup_batches]
        log(f"  {kind} hub: warm-up ({len(warm_merged)} batches)")
        _run_cell(kind, profile, warm_workload, warm_merged)

        cells[kind] = {}
        for sensors in counts:
            workload = _workload_for(profile, recordings, scene_batches, sensors)
            merged = _merge_submissions(workload)
            trials = [
                _run_cell(kind, profile, workload, merged)
                for _ in range(profile.trials)
            ]
            trials.sort(key=lambda trial: trial["frames_per_s"])
            median = trials[len(trials) // 2]
            cells[kind][sensors] = median
            log(
                f"  {kind} hub, {sensors:>2} sensor(s): "
                f"{median['frames_per_s']:8.1f} fps aggregate "
                f"(p99 {median['p99_ms']:.1f} ms, "
                f"{profile.trials} trial(s))"
            )

    scenarios: Dict[str, Dict[str, float]] = {}
    for kind in HUB_KINDS:
        parity_sensors = _assert_parity(kind, profile, recordings, scene_batches)
        metrics: Dict[str, float] = {
            "primary": f"frames_per_s_{max_n}",
            "workers": float(profile.workers),
            "batch_us": float(profile.batch_us),
            "trials": float(profile.trials),
            "parity_sensors": float(parity_sensors),
            "parity_ok": 1.0,
        }
        fps_1 = cells[kind][counts[0]]["frames_per_s"] if counts[0] == 1 else 0.0
        for sensors in counts:
            cell = cells[kind][sensors]
            metrics[f"frames_per_s_{sensors}"] = cell["frames_per_s"]
            metrics[f"events_per_s_{sensors}"] = cell["events_per_s"]
            metrics[f"p99_ms_{sensors}"] = cell["p99_ms"]
            if sensors > 1 and fps_1 > 0:
                metrics[f"scaling_efficiency_{sensors}"] = cell[
                    "frames_per_s"
                ] / (sensors * fps_1)
        scenarios[f"{kind}_hub"] = metrics

    process = scenarios["process_hub"]
    thread = scenarios["thread_hub"]
    process["speedup_cell_sensors"] = float(speedup_cell)
    thread_fps = thread[f"frames_per_s_{speedup_cell}"]
    process["speedup_vs_thread"] = (
        process[f"frames_per_s_{speedup_cell}"] / thread_fps if thread_fps else 0.0
    )
    # Informational (not harness-gated): the full ratio curve.
    for sensors in counts:
        thread_fps = thread[f"frames_per_s_{sensors}"]
        process[f"ratio_vs_thread_{sensors}"] = (
            process[f"frames_per_s_{sensors}"] / thread_fps if thread_fps else 0.0
        )
    return scenarios
