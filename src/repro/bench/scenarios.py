"""Named timed scenarios for ``python -m repro.bench``.

Every scenario runs against deterministic synthetic-fleet data (the same
:func:`repro.runtime.scenes.build_scene_recordings` fleet as the tracker
shoot-out) and returns a flat metric dict.  Scenarios with a scalar
reference report ``speedup_vs_scalar`` — the vectorized and forced-scalar
paths are timed back to back in one process via
:func:`repro.utils.fastpath.force_scalar`, making the ratio machine-
independent.  The ``primary`` key names the scenario's headline throughput
metric, which the harness normalizes by the calibration score when
comparing against a committed baseline.

The scalar legs deliberately run on a *slice* of the workload (they are
5–15x slower) and are scaled up; the measured quantity is a throughput, so
the slice only trades a little variance for a lot of wall time.
"""

from __future__ import annotations

import tempfile
import time
from functools import lru_cache
from typing import Callable, Dict, List

import numpy as np

from repro.bench.harness import BenchProfile
from repro.core.config import EbbiotConfig
from repro.core.pipeline import EbbiotPipeline
from repro.datasets.recorded import export_fleet
from repro.events.filters import NearestNeighbourFilter, RefractoryFilter
from repro.runtime.runner import RunnerConfig, StreamRunner
from repro.runtime.scenes import build_scene_recordings, jobs_from_manifest
from repro.serving.session import SensorSession
from repro.utils.fastpath import force_scalar

#: Events per packet when replaying a recording through the filters —
#: matches the order of magnitude of one busy 66 ms window.
FILTER_PACKET_EVENTS = 5_000


@lru_cache(maxsize=4)
def _fleet(profile: BenchProfile):
    """Render the profile's fleet once per process.

    Every scenario uses the identical deterministic fleet (frozen profile
    → fixed seeds), and rendering costs seconds; caching it shaves ~10 s
    off a five-scenario run without changing any measurement (scenarios
    time only their own processing, never the rendering).
    """
    return build_scene_recordings(
        profile.scenes, duration_s=profile.duration_s, base_seed=profile.seed
    )


def _fleet_events(profile: BenchProfile, limit: int) -> np.ndarray:
    """First ``limit`` events of the fleet's busiest recording."""
    recordings = _fleet(profile)
    busiest = max(recordings, key=lambda recording: len(recording.stream))
    return busiest.stream.events[:limit]


def _time_filter(filter_obj, events: np.ndarray) -> float:
    """Seconds to stream ``events`` through a filter in window-sized packets."""
    started = time.perf_counter()
    for start in range(0, len(events), FILTER_PACKET_EVENTS):
        filter_obj.process(events[start : start + FILTER_PACKET_EVENTS])
    return time.perf_counter() - started


def _filter_scenario(
    profile: BenchProfile, make_filter: Callable[[], object]
) -> Dict[str, float]:
    events = _fleet_events(profile, profile.filter_events)
    scalar_events = events[: profile.filter_scalar_events]
    with force_scalar(False):
        vector_s = _time_filter(make_filter(), events)
    with force_scalar(True):
        scalar_s = _time_filter(make_filter(), scalar_events)
    vector_throughput = len(events) / vector_s if vector_s > 0 else 0.0
    scalar_throughput = len(scalar_events) / scalar_s if scalar_s > 0 else 0.0
    return {
        "primary": "events_per_s",
        "num_events": float(len(events)),
        "events_per_s": vector_throughput,
        "scalar_events_per_s": scalar_throughput,
        "speedup_vs_scalar": (
            vector_throughput / scalar_throughput if scalar_throughput else 0.0
        ),
    }


def scenario_nn_filter(profile: BenchProfile) -> Dict[str, float]:
    """NN-filt packet throughput, vectorized vs scalar reference."""
    return _filter_scenario(profile, lambda: NearestNeighbourFilter(240, 180))


def scenario_refractory(profile: BenchProfile) -> Dict[str, float]:
    """Refractory-filter packet throughput, vectorized vs scalar reference."""
    return _filter_scenario(profile, lambda: RefractoryFilter(240, 180))


def _run_pipeline_fleet(recordings, tracker: str) -> Dict[str, float]:
    """Run every recording through a fresh pipeline; aggregate rates."""
    total_frames = 0
    total_events = 0
    wall_s = 0.0
    for recording in recordings:
        pipeline = EbbiotPipeline(EbbiotConfig(tracker=tracker))
        started = time.perf_counter()
        result = pipeline.process_stream(recording.stream, collect_frames=False)
        wall_s += time.perf_counter() - started
        total_frames += result.num_frames
        total_events += len(recording.stream)
    return {
        "frames": float(total_frames),
        "events": float(total_events),
        "wall_s": wall_s,
    }


def scenario_ebms_pipeline(profile: BenchProfile) -> Dict[str, float]:
    """End-to-end NN-filt+EBMS pipeline, vectorized vs scalar reference.

    This is the paper's event-driven baseline measured the way the
    shoot-out measures it — whole recordings through ``process_stream`` —
    so the ``frames_per_s`` speedup here is the honest-comparison number
    the tracker-backend benchmark inherits.
    """
    recordings = _fleet(profile)
    with force_scalar(False):
        vector = _run_pipeline_fleet(recordings, "ebms")
    # The scalar reference runs the *identical* fleet: the ~10x ratio is
    # the headline number, so it gets the honest (slow) measurement —
    # truncating the scalar leg would over-weight cheap cold-start frames.
    with force_scalar(True):
        scalar = _run_pipeline_fleet(recordings, "ebms")
    vector_fps = vector["frames"] / vector["wall_s"] if vector["wall_s"] else 0.0
    scalar_fps = scalar["frames"] / scalar["wall_s"] if scalar["wall_s"] else 0.0
    return {
        "primary": "frames_per_s",
        "num_events": vector["events"],
        "num_frames": vector["frames"],
        "frames_per_s": vector_fps,
        "events_per_s": (
            vector["events"] / vector["wall_s"] if vector["wall_s"] else 0.0
        ),
        "scalar_frames_per_s": scalar_fps,
        "speedup_vs_scalar": vector_fps / scalar_fps if scalar_fps else 0.0,
    }


def scenario_overlap_pipeline(profile: BenchProfile) -> Dict[str, float]:
    """End-to-end EBBIOT (overlap) pipeline throughput.

    The paper's own tracker has been vectorized since PR 1, so there is no
    scalar reference leg; the committed number guards the whole
    EBBI → RPN → overlap path against regressions.
    """
    recordings = _fleet(profile)
    result = _run_pipeline_fleet(recordings, "overlap")
    return {
        "primary": "events_per_s",
        "num_events": result["events"],
        "num_frames": result["frames"],
        "frames_per_s": result["frames"] / result["wall_s"] if result["wall_s"] else 0.0,
        "events_per_s": result["events"] / result["wall_s"] if result["wall_s"] else 0.0,
    }


def scenario_stage_breakdown(profile: BenchProfile) -> Dict[str, float]:
    """Instrumented pipeline run: where the wall clock actually goes.

    Runs the standard fleet through an *instrumented* overlap pipeline
    (metrics accumulation only, no tracer) and reports each stage's share
    of the total stage time plus the instrumented throughput.  The
    ``overhead_vs_plain`` ratio — instrumented wall time over a back-to-
    back uninstrumented run — guards the "zero cost when disabled, cheap
    when enabled" contract; the per-stage shares make hot-spot drift
    visible in bench artifacts over time.
    """
    from repro.obs import Instrumentation

    recordings = _fleet(profile)
    plain = _run_pipeline_fleet(recordings, "overlap")

    stage_seconds: Dict[str, float] = {}
    instrumented_wall_s = 0.0
    total_frames = 0
    total_events = 0
    for recording in recordings:
        instrumentation = Instrumentation()
        pipeline = EbbiotPipeline(
            EbbiotConfig(tracker="overlap"), instrumentation=instrumentation
        )
        started = time.perf_counter()
        result = pipeline.process_stream(recording.stream, collect_frames=False)
        instrumented_wall_s += time.perf_counter() - started
        total_frames += result.num_frames
        total_events += len(recording.stream)
        for stage, seconds in instrumentation.stage_seconds.items():
            stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds

    total_stage_s = sum(stage_seconds.values())
    metrics: Dict[str, float] = {
        "primary": "events_per_s",
        "num_events": float(total_events),
        "num_frames": float(total_frames),
        "events_per_s": (
            total_events / instrumented_wall_s if instrumented_wall_s else 0.0
        ),
        "frames_per_s": (
            total_frames / instrumented_wall_s if instrumented_wall_s else 0.0
        ),
        "overhead_vs_plain": (
            instrumented_wall_s / plain["wall_s"] if plain["wall_s"] else 0.0
        ),
    }
    for stage, seconds in sorted(stage_seconds.items()):
        metrics[f"stage_{stage}_s"] = seconds
        metrics[f"stage_{stage}_share"] = (
            seconds / total_stage_s if total_stage_s else 0.0
        )
    return metrics


def _drive_sessions(recordings, batch_events: int = 20_000) -> Dict[str, float]:
    """Feed each recording through its own live session; aggregate rates."""
    sessions = [
        SensorSession(f"bench-{index}", keep_history=False)
        for index in range(len(recordings))
    ]
    total_frames = 0
    total_events = 0
    started = time.perf_counter()
    for session, recording in zip(sessions, recordings):
        events = recording.stream.events
        for start in range(0, len(events), batch_events):
            session.ingest(events[start : start + batch_events])
        session.finish()
        total_frames += session.frames_processed
        total_events += session.events_ingested
    wall_s = time.perf_counter() - started
    return {
        "frames": float(total_frames),
        "events": float(total_events),
        "wall_s": wall_s,
    }


def scenario_serving(profile: BenchProfile) -> Dict[str, float]:
    """Live-session framing+pipeline throughput, one sensor vs N.

    Uses in-process :class:`SensorSession` objects (no TCP, no threads) so
    the number isolates the serving layer's per-window work — online
    framing plus the incremental pipeline — from transport noise.

    ``scaling_efficiency`` is aggregate fps over ``N x`` single-sensor
    fps.  The serial driver pins it near ``1/N`` by construction — that
    committed anchor is the "no parallelism" floor the hub-level
    ``serving_scale`` suite's efficiency numbers are read against.
    """
    recordings = _fleet(profile)
    single = _drive_sessions(recordings[:1])
    multi_recordings = [
        recordings[index % len(recordings)]
        for index in range(profile.serving_sensors)
    ]
    multi = _drive_sessions(multi_recordings)
    fps_1 = single["frames"] / single["wall_s"] if single["wall_s"] else 0.0
    fps_n = multi["frames"] / multi["wall_s"] if multi["wall_s"] else 0.0
    return {
        "primary": "events_per_s_1",
        "sensors": float(profile.serving_sensors),
        "frames_per_s_1": fps_1,
        "events_per_s_1": single["events"] / single["wall_s"] if single["wall_s"] else 0.0,
        "frames_per_s_n": fps_n,
        "events_per_s_n": multi["events"] / multi["wall_s"] if multi["wall_s"] else 0.0,
        "scaling_efficiency": (
            fps_n / (profile.serving_sensors * fps_1) if fps_1 else 0.0
        ),
    }


def scenario_dataset_replay(profile: BenchProfile) -> Dict[str, float]:
    """Recorded-dataset workload: manifest load + full-fleet replay from disk.

    Exports the standard fleet to a temporary manifest-backed dataset
    (export cost is *not* timed — it is a one-off corpus-build step), then
    times the recorded path end to end: manifest parse, per-recording event
    file decode and annotation load, and the serial replay of every
    recording through the pipeline.  Guards the I/O layer the same way
    ``overlap_pipeline`` guards the compute path.
    """
    recordings = _fleet(profile)
    with tempfile.TemporaryDirectory(prefix="repro-bench-dataset-") as tmp:
        export_fleet(recordings, tmp, format="npz", name="bench")

        started = time.perf_counter()
        jobs = jobs_from_manifest(tmp)
        load_s = time.perf_counter() - started

        started = time.perf_counter()
        batch = StreamRunner(RunnerConfig(executor="serial")).run(jobs)
        replay_s = time.perf_counter() - started
    total_events = float(batch.total_events)
    total_s = load_s + replay_s
    return {
        "primary": "events_per_s",
        "num_recordings": float(len(batch)),
        "num_events": total_events,
        "num_frames": float(batch.total_frames),
        "load_s": load_s,
        "load_events_per_s": total_events / load_s if load_s > 0 else 0.0,
        "replay_events_per_s": total_events / replay_s if replay_s > 0 else 0.0,
        "events_per_s": total_events / total_s if total_s > 0 else 0.0,
    }


#: Registry of scenario name → callable, in default execution order.
SCENARIOS: Dict[str, Callable[[BenchProfile], Dict[str, float]]] = {
    "nn_filter": scenario_nn_filter,
    "refractory": scenario_refractory,
    "ebms_pipeline": scenario_ebms_pipeline,
    "overlap_pipeline": scenario_overlap_pipeline,
    "stage_breakdown": scenario_stage_breakdown,
    "serving": scenario_serving,
    "dataset_replay": scenario_dataset_replay,
}


def parse_scenario_list(spec: str) -> List[str]:
    """Validate a CLI ``NAME[,NAME...]`` scenario list."""
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise ValueError("expected at least one scenario name")
    for name in names:
        if name not in SCENARIOS:
            raise ValueError(
                f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
            )
    return names
