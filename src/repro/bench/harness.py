"""Micro-benchmark harness: profiles, timing, calibration, regression check.

``python -m repro.bench`` runs named scenarios (:mod:`repro.bench.scenarios`)
against the standard synthetic fleet, emits a ``BENCH_event_path.json``-style
artifact, and — given a committed baseline — flags throughput regressions.

Two kinds of metric make the cross-machine comparison meaningful:

* ``speedup_vs_scalar`` ratios (vectorized vs the ``REPRO_FORCE_SCALAR``
  reference on the *same* machine) are machine-independent and compared
  directly;
* absolute throughputs are normalized by a :func:`calibrate` score — a
  fixed NumPy + Python-interpreter workload timed at report time — so a
  slower CI runner does not read as a regression of the code.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.bench.compare import Comparison, compare_metric

#: Report schema version; bump when the JSON layout changes incompatibly.
REPORT_VERSION = 1


@dataclass(frozen=True)
class BenchProfile:
    """Workload sizes for one harness run.

    ``full`` is the committed-baseline configuration (the same 4-scene /
    4-second fleet the tracker-backend shoot-out uses); ``quick`` is the CI
    smoke configuration; tests construct tiny ad-hoc profiles directly.
    """

    name: str = "full"
    scenes: int = 4
    duration_s: float = 4.0
    filter_events: int = 200_000
    filter_scalar_events: int = 20_000
    serving_sensors: int = 4
    seed: int = 0


FULL_PROFILE = BenchProfile()
QUICK_PROFILE = BenchProfile(
    name="quick",
    scenes=3,
    duration_s=1.5,
    filter_events=60_000,
    filter_scalar_events=8_000,
    serving_sensors=2,
)


def timed(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of one call (the scenarios size their own work)."""
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def calibrate() -> Dict[str, float]:
    """Machine-speed score from a fixed NumPy + interpreter workload.

    The event path spends its time in exactly these two regimes — NumPy
    kernels over ~1M-element arrays and tight Python loops — so the summed
    time of a fixed dose of each is a serviceable single-number proxy for
    "how fast would this machine run the benchmark".  ``score`` is the
    reciprocal: higher is faster.  Throughputs divided by ``score`` are
    comparable across machines to well within the regression tolerance.
    """
    array = np.arange(1_000_000, dtype=np.float64)
    started = time.perf_counter()
    for _ in range(5):
        float((array * 1.000001 + 0.5).sum())
    numpy_s = time.perf_counter() - started

    started = time.perf_counter()
    accumulator = 0
    for value in range(300_000):
        accumulator += value & 7
    python_s = time.perf_counter() - started
    return {
        "numpy_s": numpy_s,
        "python_s": python_s,
        "score": 1.0 / (numpy_s + python_s),
    }


def build_report(
    profile,
    scenario_results: Dict[str, Dict[str, float]],
    calibration: Dict[str, float],
    benchmark: str = "event_path",
) -> dict:
    """Assemble the JSON-serializable report document.

    ``profile`` is any frozen dataclass of workload sizes (the event-path
    :class:`BenchProfile` or the serving-scale profile) — only its
    ``name`` and field dict enter the report.
    """
    return {
        "benchmark": benchmark,
        "version": REPORT_VERSION,
        "profile": profile.name,
        "config": asdict(profile),
        "calibration": calibration,
        "scenarios": scenario_results,
    }


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> List[Comparison]:
    """Compare a fresh report against a committed baseline.

    For every scenario present in both reports:

    * every ``speedup_vs_*`` metric (``speedup_vs_scalar``,
      ``speedup_vs_thread``, ...) is compared raw (each is a same-machine
      ratio of two legs timed back to back) — but gated at *twice* the
      tolerance, because the two legs weight interpreter, NumPy and
      scheduler time differently and that balance shifts between CPUs;
      the doubled margin still catches an architectural regression
      (de-vectorization, a process hub degrading to thread-hub behaviour
      — both drop the ratio several-fold) without flaking on hardware
      differences;
    * the scenario's ``primary`` throughput metric is compared after
      normalizing both sides by their own calibration score.

    A metric regresses when it falls below ``baseline * (1 - tolerance)``
    (throughput) or ``baseline * (1 - min(0.9, 2 * tolerance))``
    (speedups) — both are the shared
    :func:`~repro.bench.compare.compare_metric` with direction ``"up"``
    and a purely relative margin.  Scenarios or metrics missing from
    either side are skipped — the check gates regressions, not coverage
    (the CLI treats an empty comparison under ``--check`` as an error).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    speedup_tolerance = min(0.9, 2.0 * tolerance)
    current_score = float(current.get("calibration", {}).get("score", 0.0))
    baseline_score = float(baseline.get("calibration", {}).get("score", 0.0))
    comparisons: List[Comparison] = []
    for name, metrics in current.get("scenarios", {}).items():
        base_metrics = baseline.get("scenarios", {}).get(name)
        if not base_metrics:
            continue
        for metric_name in sorted(metrics):
            if not metric_name.startswith("speedup_vs_"):
                continue
            if metric_name not in base_metrics:
                continue
            base = float(base_metrics[metric_name])
            if base > 0:
                comparisons.append(
                    compare_metric(
                        scenario=name,
                        metric=metric_name,
                        current=float(metrics[metric_name]),
                        baseline=base,
                        tolerance=speedup_tolerance,
                        direction="up",
                    )
                )
        primary = metrics.get("primary")
        if (
            primary
            and primary in metrics
            and primary in base_metrics
            and current_score > 0
            and baseline_score > 0
        ):
            base = float(base_metrics[primary]) / baseline_score
            if base > 0:
                comparisons.append(
                    compare_metric(
                        scenario=name,
                        metric=primary,
                        current=float(metrics[primary]) / current_score,
                        baseline=base,
                        tolerance=tolerance,
                        direction="up",
                        normalized=True,
                    )
                )
    return comparisons


def load_report(path: str) -> Optional[dict]:
    """Load a baseline report, or ``None`` when the file does not exist."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None


def dump_report(report: dict, path: str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
