"""Direction-aware metric comparison shared by the perf and quality gates.

Both committed-baseline gates — ``python -m repro.bench`` (throughput) and
``python -m repro.scenarios`` (tracking quality) — reduce to the same
question: given a current value, a baseline value and a tolerance, did this
metric get *worse*?  The answer depends on the metric's direction:

* ``"up"`` — higher is better (throughput, speedup ratios, MOTA, MOTP,
  precision, recall).  A regression is a drop below the baseline by more
  than the margin.
* ``"down"`` — lower is better (latency, processor wake fraction).  A
  regression is a rise above the baseline by more than the margin.

The margin is ``tolerance * max(abs(baseline), floor)``.  A plain relative
margin (``floor=0``) matches the historical throughput semantics — a value
regresses when it falls below ``baseline * (1 - tolerance)`` — but breaks
down for quality metrics: MOTA is negative for a diverging tracker (the
inequality would flip under a naive ``baseline * (1 - tolerance)``), and a
baseline near zero would make any relative margin vanishingly strict.
Passing ``floor=1.0`` for ``[-inf, 1]``-scaled quality metrics makes the
tolerance an *absolute* budget in metric units (e.g. 0.1 MOTA) whenever
``abs(baseline) <= 1``, while still scaling up for large-magnitude negative
baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Allowed metric directions.
DIRECTIONS = ("up", "down")


@dataclass(frozen=True)
class Comparison:
    """One metric compared against the committed baseline."""

    scenario: str
    metric: str
    current: float
    baseline: float
    ratio: float
    regressed: bool
    normalized: bool
    direction: str = "up"

    def describe(self) -> str:
        status = "REGRESSED" if self.regressed else "ok"
        kind = "normalized" if self.normalized else "raw"
        arrow = "higher-is-better" if self.direction == "up" else "lower-is-better"
        return (
            f"{self.scenario}.{self.metric} ({kind}, {arrow}): "
            f"{self.current:.3g} vs baseline {self.baseline:.3g} "
            f"(x{self.ratio:.2f}) {status}"
        )


def compare_metric(
    scenario: str,
    metric: str,
    current: float,
    baseline: float,
    tolerance: float,
    direction: str = "up",
    floor: float = 0.0,
    normalized: bool = False,
) -> Comparison:
    """Compare one metric value against its baseline, direction-aware.

    Parameters
    ----------
    scenario, metric:
        Names carried into the :class:`Comparison` for reporting.
    current, baseline:
        The values to compare (already normalized by the caller when
        machine-speed normalization applies).
    tolerance:
        Fractional margin; must be in ``[0, 1)`` for relative use, but any
        non-negative value is accepted (quality gates may want > 1 margins
        on wildly negative baselines).
    direction:
        ``"up"`` (higher is better) or ``"down"`` (lower is better).
    floor:
        Minimum magnitude the margin is scaled by — see the module
        docstring.  ``0.0`` keeps the margin purely relative.
    normalized:
        Reporting flag only: marks the values as machine-normalized.
    """
    if direction not in DIRECTIONS:
        raise ValueError(f"direction must be one of {DIRECTIONS}, got {direction!r}")
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    current = float(current)
    baseline = float(baseline)
    margin = tolerance * max(abs(baseline), floor)
    if direction == "up":
        regressed = (baseline - current) > margin
    else:
        regressed = (current - baseline) > margin
    if baseline != 0:
        ratio = current / baseline
    elif current == 0:
        ratio = 1.0
    else:
        ratio = math.inf if current > 0 else -math.inf
    return Comparison(
        scenario=scenario,
        metric=metric,
        current=current,
        baseline=baseline,
        ratio=ratio,
        regressed=regressed,
        normalized=normalized,
        direction=direction,
    )
