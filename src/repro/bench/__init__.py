"""Event-path micro-benchmark harness (``python -m repro.bench``).

Runs named timed scenarios — the NN-filt and refractory filters, the
NN-filt+EBMS and EBBIOT end-to-end pipelines, and the live serving
sessions — against the standard synthetic fleet, reports throughput and
speedup-vs-scalar for each, and compares the numbers against a committed
baseline (``BENCH_event_path.json`` at the repo root), flagging
regressions beyond a tolerance.  See :mod:`repro.bench.harness` for the
report/consistency machinery and :mod:`repro.bench.scenarios` for the
individual workloads.
"""

from repro.bench.compare import Comparison, compare_metric
from repro.bench.harness import (
    FULL_PROFILE,
    QUICK_PROFILE,
    BenchProfile,
    build_report,
    calibrate,
    compare_reports,
    dump_report,
    load_report,
)
from repro.bench.scenarios import SCENARIOS, parse_scenario_list

__all__ = [
    "BenchProfile",
    "Comparison",
    "FULL_PROFILE",
    "QUICK_PROFILE",
    "SCENARIOS",
    "build_report",
    "calibrate",
    "compare_metric",
    "compare_reports",
    "dump_report",
    "load_report",
    "parse_scenario_list",
]
