"""Benchmark harness (``python -m repro.bench``): two gated suites.

The **event_path** suite runs named timed scenarios — the NN-filt and
refractory filters, the NN-filt+EBMS and EBBIOT end-to-end pipelines,
and the live serving sessions — against the standard synthetic fleet,
reporting throughput and speedup-vs-scalar for each.  The
**serving_scale** suite replays the same fleet through the thread and
process tracking hubs across sensor counts, reporting aggregate fps,
per-sensor scaling efficiency, tail latency and the headline
``speedup_vs_thread`` ratio.  Each suite compares its numbers against a
committed baseline (``BENCH_event_path.json`` / ``BENCH_serving_scale.
json`` at the repo root), flagging regressions beyond a tolerance.  See
:mod:`repro.bench.harness` for the report/consistency machinery and
:mod:`repro.bench.scenarios` / :mod:`repro.bench.serving_scale` for the
individual workloads.
"""

from repro.bench.compare import Comparison, compare_metric
from repro.bench.harness import (
    FULL_PROFILE,
    QUICK_PROFILE,
    BenchProfile,
    build_report,
    calibrate,
    compare_reports,
    dump_report,
    load_report,
)
from repro.bench.scenarios import SCENARIOS, parse_scenario_list
from repro.bench.serving_scale import (
    FULL_SERVING_PROFILE,
    QUICK_SERVING_PROFILE,
    ServingScaleProfile,
    run_suite,
)

__all__ = [
    "BenchProfile",
    "Comparison",
    "FULL_PROFILE",
    "FULL_SERVING_PROFILE",
    "QUICK_PROFILE",
    "QUICK_SERVING_PROFILE",
    "SCENARIOS",
    "ServingScaleProfile",
    "build_report",
    "calibrate",
    "compare_metric",
    "compare_reports",
    "dump_report",
    "load_report",
    "parse_scenario_list",
    "run_suite",
]
