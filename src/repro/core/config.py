"""Top-level EBBIOT pipeline configuration.

All paper parameters live here with their published default values:
``A x B = 240 x 180``, ``tF = 66 ms``, median patch ``p = 3``, downsampling
factors ``(s1, s2) = (6, 3)``, histogram threshold 1, and up to ``NT = 8``
simultaneous trackers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sensor.duty_cycle import DutyCycleModel
from repro.utils.geometry import BoundingBox
from repro.utils.validation import ensure_positive, ensure_positive_int


@dataclass
class EbbiotConfig:
    """Configuration of the full EBBIOT pipeline.

    Parameters
    ----------
    width, height:
        Sensor resolution ``A x B`` (DAVIS240: 240 x 180).
    frame_duration_us:
        EBBI accumulation window ``tF`` in microseconds (66 ms).
    median_patch_size:
        Median-filter patch size ``p`` (odd, default 3).
    downsample_x, downsample_y:
        Histogram downsampling factors ``s1`` (x) and ``s2`` (y).
    histogram_threshold:
        Minimum downsampled histogram value for a bin to belong to a region
        (the paper uses 1).
    max_trackers:
        Maximum number of simultaneous trackers ``NT`` (8).
    overlap_threshold:
        Fraction of tracker or proposal area that must overlap for a match.
    prediction_weight:
        Weight of the prediction when blending prediction and proposal into
        the corrected tracker state.
    occlusion_lookahead_frames:
        Number of future frames ``n`` over which predicted trajectories are
        checked for overlap when deciding dynamic occlusion (2).
    min_track_age_frames:
        A tracker must survive this many frames before its box is reported;
        suppresses single-frame noise tracks.
    max_missed_frames:
        Frames a tracker may go unmatched before it is freed.
    min_proposal_area:
        Region proposals smaller than this (in px^2) are discarded.
    roe_boxes:
        Regions of exclusion (static distractors and occluders).
    roe_max_overlap_fraction:
        A region proposal is dropped when more than this fraction of its
        area lies inside the union of the ROE boxes (the
        :class:`~repro.core.roe.RegionOfExclusion` threshold).  Scenario
        specs declare it alongside their ROE boxes instead of hand-wiring a
        custom ``RegionOfExclusion`` into the pipeline.
    duty_cycle:
        Optional :class:`~repro.sensor.duty_cycle.DutyCycleModel` describing
        the duty-cycled processor running this pipeline (Fig. 2).  The
        pipeline's compute is unaffected — the model's ``frame_duration_us``
        must match the pipeline's, and fleet runs use it to report per-
        recording wake/sleep fractions and energy
        (:class:`~repro.sensor.duty_cycle.DutyCycleSummary`).
    min_region_side_px:
        Minimum side length (in full-resolution pixels) of a proposed region.
    tracker:
        Name of the tracker backend in the registry of
        :mod:`repro.trackers.registry` — ``"overlap"`` (the paper's tracker,
        default), ``"kalman"`` (the EBBI+KF baseline) or ``"ebms"`` (the
        event-driven NN-filt+EBMS baseline).  Threaded through every layer:
        core pipeline, batch runtime and live serving.
    """

    width: int = 240
    height: int = 180
    frame_duration_us: int = 66_000
    median_patch_size: int = 3
    downsample_x: int = 6
    downsample_y: int = 3
    histogram_threshold: int = 1
    max_trackers: int = 8
    overlap_threshold: float = 0.25
    prediction_weight: float = 0.5
    occlusion_lookahead_frames: int = 2
    min_track_age_frames: int = 2
    max_missed_frames: int = 3
    min_proposal_area: float = 16.0
    roe_boxes: List[BoundingBox] = field(default_factory=list)
    roe_max_overlap_fraction: float = 0.5
    duty_cycle: Optional[DutyCycleModel] = None
    min_region_side_px: float = 2.0
    tracker: str = "overlap"

    def __post_init__(self) -> None:
        ensure_positive_int("width", self.width)
        ensure_positive_int("height", self.height)
        ensure_positive_int("frame_duration_us", self.frame_duration_us)
        ensure_positive_int("median_patch_size", self.median_patch_size)
        if self.median_patch_size % 2 == 0:
            raise ValueError(
                f"median_patch_size must be odd, got {self.median_patch_size}"
            )
        ensure_positive_int("downsample_x", self.downsample_x)
        ensure_positive_int("downsample_y", self.downsample_y)
        if self.downsample_x > self.width or self.downsample_y > self.height:
            raise ValueError("downsampling factors cannot exceed the frame size")
        ensure_positive_int("max_trackers", self.max_trackers)
        ensure_positive("overlap_threshold", self.overlap_threshold)
        if not 0.0 < self.overlap_threshold <= 1.0:
            raise ValueError(
                f"overlap_threshold must be in (0, 1], got {self.overlap_threshold}"
            )
        if not 0.0 <= self.prediction_weight <= 1.0:
            raise ValueError(
                f"prediction_weight must be in [0, 1], got {self.prediction_weight}"
            )
        if self.occlusion_lookahead_frames < 0:
            raise ValueError("occlusion_lookahead_frames must be non-negative")
        if self.min_track_age_frames < 0:
            raise ValueError("min_track_age_frames must be non-negative")
        if self.max_missed_frames < 0:
            raise ValueError("max_missed_frames must be non-negative")
        if self.histogram_threshold < 1:
            raise ValueError(
                f"histogram_threshold must be >= 1, got {self.histogram_threshold}"
            )
        if not 0.0 <= self.roe_max_overlap_fraction <= 1.0:
            raise ValueError(
                "roe_max_overlap_fraction must be in [0, 1], got "
                f"{self.roe_max_overlap_fraction}"
            )
        if (
            self.duty_cycle is not None
            and self.duty_cycle.frame_duration_us != self.frame_duration_us
        ):
            raise ValueError(
                "duty_cycle.frame_duration_us "
                f"({self.duty_cycle.frame_duration_us}) must match the "
                f"pipeline frame_duration_us ({self.frame_duration_us}); "
                "the duty-cycled processor wakes exactly once per EBBI frame"
            )
        # Deferred import: the registry's backends transitively import the
        # core package, which imports this module.
        from repro.trackers.registry import ensure_backend_name

        ensure_backend_name(self.tracker)

    @property
    def frame_rate_hz(self) -> float:
        """Frame rate implied by ``frame_duration_us`` (~15 Hz for 66 ms)."""
        return 1e6 / self.frame_duration_us

    @property
    def downsampled_width(self) -> int:
        """Width of the downsampled image, ``floor(A / s1)``."""
        return self.width // self.downsample_x

    @property
    def downsampled_height(self) -> int:
        """Height of the downsampled image, ``floor(B / s2)``."""
        return self.height // self.downsample_y

    @classmethod
    def paper_defaults(cls) -> "EbbiotConfig":
        """The exact configuration used in the paper's evaluation."""
        return cls()
