"""Event-based binary image (EBBI) generation.

The EBBI is simply the per-pixel OR of all events accumulated during one
``tF`` window, ignoring polarity (Section II-A).  In hardware the sensor
array itself stores this image while the processor sleeps; in software we
reproduce the same frame from an event packet with
:func:`events_to_binary_frame` and keep both the raw and median-filtered
frames, exactly the two-frame memory budget of Eq. (1)
(``M_EBBI = 2 * A * B`` bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.median_filter import (
    MedianScratch,
    binary_median_filter,
    binary_median_filter_stack,
)
from repro.events.types import EVENT_DTYPE


class EbbiScratch:
    """Reusable raw/filtered frame stacks for steady-state EBBI building.

    ``process_stream`` and the live serving sessions build one frame stack
    per chunk (or per window) forever; with a scratch the stacks — and the
    median filter's work arrays — are allocated once and recycled, removing
    every per-frame allocation from the hot path.  Frames handed out by the
    builder are then *views* into these buffers, valid until the next
    build; ``EbbiFrames.detached()`` copies one out when it must outlive
    the chunk (and callers that retain frames, like ``keep_frames``
    pipelines, already detach).
    """

    def __init__(self) -> None:
        self._raw: Optional[np.ndarray] = None
        self._filtered: Optional[np.ndarray] = None
        self.median = MedianScratch()

    def stacks(
        self, num_frames: int, height: int, width: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Raw + filtered uint8 stacks with at least ``num_frames`` slots."""
        if (
            self._raw is None
            or self._raw.shape[0] < num_frames
            or self._raw.shape[1:] != (height, width)
        ):
            capacity = num_frames
            if self._raw is not None and self._raw.shape[1:] == (height, width):
                capacity = max(num_frames, 2 * self._raw.shape[0])
            self._raw = np.zeros((capacity, height, width), dtype=np.uint8)
            self._filtered = np.zeros((capacity, height, width), dtype=np.uint8)
        return self._raw[:num_frames], self._filtered[:num_frames]


def events_to_binary_frame(
    events: np.ndarray, width: int, height: int
) -> np.ndarray:
    """Accumulate an event packet into a binary frame.

    Parameters
    ----------
    events:
        Structured event array; polarity is ignored.
    width, height:
        Sensor resolution ``A x B``.

    Returns
    -------
    numpy.ndarray
        ``(height, width)`` uint8 array with 1 where at least one event
        occurred.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"events must have dtype {EVENT_DTYPE}, got {events.dtype}")
    frame = np.zeros((height, width), dtype=np.uint8)
    if len(events) == 0:
        return frame
    x = events["x"]
    y = events["y"]
    if x.min() < 0 or x.max() >= width or y.min() < 0 or y.max() >= height:
        raise ValueError("event coordinates fall outside the frame")
    frame[y, x] = 1
    return frame


def events_to_binary_frame_batch(
    events: np.ndarray,
    splits: np.ndarray,
    width: int,
    height: int,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Accumulate consecutive event slices into a stack of binary frames.

    Window ``i`` covers ``events[splits[i]:splits[i + 1]]`` (the split
    points come from :func:`repro.events.stream.frame_boundaries`).  All
    windows are scattered into the output stack with one flat index
    assignment instead of one :func:`events_to_binary_frame` call per
    window.

    Parameters
    ----------
    events:
        Structured event array; polarity is ignored.
    splits:
        ``num_frames + 1`` monotonically non-decreasing split indices into
        ``events``.
    width, height:
        Sensor resolution ``A x B``.
    out:
        Optional ``(num_frames, height, width)`` uint8 stack to fill in
        place (zeroed first) and return — the buffer-reuse path.

    Returns
    -------
    numpy.ndarray
        ``(num_frames, height, width)`` uint8 stack with 1 where at least
        one event occurred in that window (``out`` if it was given).
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"events must have dtype {EVENT_DTYPE}, got {events.dtype}")
    splits = np.asarray(splits, dtype=np.int64)
    if splits.ndim != 1 or len(splits) < 1:
        raise ValueError("splits must be a 1-D array with at least one entry")
    num_frames = len(splits) - 1
    if out is None:
        frames = np.zeros((num_frames, height, width), dtype=np.uint8)
    else:
        if out.shape != (num_frames, height, width) or out.dtype != np.uint8:
            raise ValueError(
                f"out must be a uint8 array of shape {(num_frames, height, width)}, "
                f"got {out.dtype} {out.shape}"
            )
        frames = out
        frames[:] = 0
    window_events = events[splits[0] : splits[-1]]
    if len(window_events) == 0:
        return frames
    x = window_events["x"].astype(np.int64)
    y = window_events["y"].astype(np.int64)
    if x.min() < 0 or x.max() >= width or y.min() < 0 or y.max() >= height:
        raise ValueError("event coordinates fall outside the frame")
    frame_of_event = np.repeat(np.arange(num_frames, dtype=np.int64), np.diff(splits))
    flat = (frame_of_event * height + y) * width + x
    frames.reshape(-1)[flat] = 1
    return frames


@dataclass
class EbbiFrames:
    """The raw and filtered binary frames for one ``tF`` window."""

    raw: np.ndarray
    filtered: np.ndarray
    t_start_us: int
    t_end_us: int
    num_events: int

    @property
    def t_mid_us(self) -> int:
        """Midpoint of the accumulation window."""
        return (self.t_start_us + self.t_end_us) // 2

    def detached(self) -> "EbbiFrames":
        """A copy that owns its frames.

        Frames built by :meth:`EbbiBuilder.build_batch` are views into the
        chunk's frame stack; retaining one would pin the whole stack.  Call
        this before keeping a frame beyond the chunk's lifetime.
        """
        if self.raw.base is None and self.filtered.base is None:
            return self
        return EbbiFrames(
            raw=self.raw.copy(),
            filtered=self.filtered.copy(),
            t_start_us=self.t_start_us,
            t_end_us=self.t_end_us,
            num_events=self.num_events,
        )

    @property
    def active_pixel_count(self) -> int:
        """Number of active pixels in the raw frame."""
        return int(self.raw.sum())

    @property
    def active_pixel_fraction(self) -> float:
        """Fraction of active pixels in the raw frame (the paper's ``alpha``)."""
        return self.active_pixel_count / self.raw.size


class EbbiBuilder:
    """Builds raw + median-filtered EBBI frames from event packets.

    Parameters
    ----------
    width, height:
        Sensor resolution.
    median_patch_size:
        Median-filter patch size ``p`` (the paper uses 3); ``0`` or ``1``
        disables filtering (the filtered frame is then the raw frame).
    reuse_buffers:
        Build frames into a persistent :class:`EbbiScratch` instead of
        fresh arrays.  Returned frames are then views valid only until the
        next ``build``/``build_batch`` call — callers that retain a frame
        must take ``EbbiFrames.detached()`` first.  The pipeline (which
        consumes each frame before building the next and detaches anything
        it keeps) turns this on; the default stays allocate-per-call for
        API compatibility.

    An optional :class:`repro.obs.Instrumentation` can be attached as the
    ``instrumentation`` attribute; :meth:`build` then times accumulation
    and filtering as the ``ebbi`` and ``median`` stages.  With the default
    ``None`` the build path is untouched.
    """

    def __init__(
        self,
        width: int,
        height: int,
        median_patch_size: int = 3,
        reuse_buffers: bool = False,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"frame size must be positive, got {width}x{height}")
        if median_patch_size not in (0, 1) and median_patch_size % 2 == 0:
            raise ValueError(
                f"median_patch_size must be odd (or 0/1 to disable), got {median_patch_size}"
            )
        self.width = width
        self.height = height
        self.median_patch_size = median_patch_size
        self.reuse_buffers = reuse_buffers
        self.instrumentation = None
        self._scratch = EbbiScratch() if reuse_buffers else None
        self._frames_built = 0
        self._total_active_fraction = 0.0

    def _accumulate_window(self, events: np.ndarray) -> np.ndarray:
        """Raw accumulation for one window (the ``ebbi`` stage)."""
        if self._scratch is not None:
            raw_stack, _ = self._scratch.stacks(1, self.height, self.width)
            return events_to_binary_frame_batch(
                events,
                np.array([0, len(events)], dtype=np.int64),
                self.width,
                self.height,
                out=raw_stack,
            )[0]
        return events_to_binary_frame(events, self.width, self.height)

    def _filter_window(self, raw: np.ndarray) -> np.ndarray:
        """Median filtering for one window (the ``median`` stage)."""
        if self._scratch is not None:
            raw_stack, filtered_stack = self._scratch.stacks(
                1, self.height, self.width
            )
            if self.median_patch_size in (0, 1):
                np.greater(raw_stack, 0, out=filtered_stack)
            else:
                binary_median_filter_stack(
                    raw_stack,
                    self.median_patch_size,
                    out=filtered_stack,
                    scratch=self._scratch.median,
                )
            return filtered_stack[0]
        if self.median_patch_size in (0, 1):
            return raw.copy()
        return binary_median_filter(raw, self.median_patch_size)

    def build(
        self, events: np.ndarray, t_start_us: int, t_end_us: int
    ) -> EbbiFrames:
        """Accumulate one window of events into raw and filtered EBBI frames.

        With ``reuse_buffers`` the window is built as a one-frame batch into
        the persistent stacks, so a live session's per-window processing
        allocates nothing; the returned frames are views into the scratch
        (their ``base`` is set, so ``detached()`` knows to copy).
        """
        instrumentation = self.instrumentation
        if instrumentation is None:
            raw = self._accumulate_window(events)
            filtered = self._filter_window(raw)
        else:
            with instrumentation.stage("ebbi"):
                raw = self._accumulate_window(events)
            with instrumentation.stage("median"):
                filtered = self._filter_window(raw)
        self._frames_built += 1
        self._total_active_fraction += raw.sum() / raw.size
        return EbbiFrames(
            raw=raw,
            filtered=filtered,
            t_start_us=t_start_us,
            t_end_us=t_end_us,
            num_events=len(events),
        )

    def build_batch(
        self,
        events: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        splits: np.ndarray,
    ) -> List[EbbiFrames]:
        """Accumulate a whole chunk of windows in one vectorised pass.

        Equivalent to calling :meth:`build` once per window but the raw
        accumulation (:func:`events_to_binary_frame_batch`) and the median
        filter (:func:`binary_median_filter_stack`) both run over the full
        stack at once.

        Parameters
        ----------
        events:
            Structured event array; window ``i`` is
            ``events[splits[i]:splits[i + 1]]``.
        starts, ends:
            Window bounds in microseconds (length ``num_frames``).
        splits:
            ``num_frames + 1`` split indices into ``events`` (see
            :func:`repro.events.stream.frame_boundaries`).
        """
        if len(starts) != len(ends) or len(splits) != len(starts) + 1:
            raise ValueError(
                f"inconsistent batch shapes: {len(starts)} starts, "
                f"{len(ends)} ends, {len(splits)} splits"
            )
        if self._scratch is not None:
            raw_out, filtered_out = self._scratch.stacks(
                len(starts), self.height, self.width
            )
            median_scratch = self._scratch.median
        else:
            raw_out = filtered_out = median_scratch = None
        raw_stack = events_to_binary_frame_batch(
            events, splits, self.width, self.height, out=raw_out
        )
        if self.median_patch_size in (0, 1):
            if filtered_out is None:
                filtered_stack = raw_stack.copy()
            else:
                np.greater(raw_stack, 0, out=filtered_out)
                filtered_stack = filtered_out
        else:
            filtered_stack = binary_median_filter_stack(
                raw_stack,
                self.median_patch_size,
                out=filtered_out,
                scratch=median_scratch,
            )
        counts = np.diff(np.asarray(splits, dtype=np.int64))
        num_frames = len(starts)
        self._frames_built += num_frames
        self._total_active_fraction += float(
            raw_stack.sum(dtype=np.int64)
        ) / (self.width * self.height)
        return [
            EbbiFrames(
                raw=raw_stack[i],
                filtered=filtered_stack[i],
                t_start_us=int(starts[i]),
                t_end_us=int(ends[i]),
                num_events=int(counts[i]),
            )
            for i in range(num_frames)
        ]

    @property
    def frames_built(self) -> int:
        """Number of frames built so far."""
        return self._frames_built

    @property
    def mean_active_pixel_fraction(self) -> float:
        """Mean active-pixel fraction ``alpha`` observed over all frames."""
        if self._frames_built == 0:
            return 0.0
        return self._total_active_fraction / self._frames_built

    def stats_snapshot(self) -> Tuple[int, float]:
        """Capture the running statistics (frame count, summed alpha)."""
        return (self._frames_built, self._total_active_fraction)

    def restore_stats(self, snapshot: Tuple[int, float]) -> None:
        """Reinstate statistics captured by :meth:`stats_snapshot`."""
        self._frames_built, self._total_active_fraction = snapshot

    def memory_bits(self) -> int:
        """Memory required by the EBBI stage: two binary frames (Eq. (1))."""
        return 2 * self.width * self.height
