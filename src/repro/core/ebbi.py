"""Event-based binary image (EBBI) generation.

The EBBI is simply the per-pixel OR of all events accumulated during one
``tF`` window, ignoring polarity (Section II-A).  In hardware the sensor
array itself stores this image while the processor sleeps; in software we
reproduce the same frame from an event packet with
:func:`events_to_binary_frame` and keep both the raw and median-filtered
frames, exactly the two-frame memory budget of Eq. (1)
(``M_EBBI = 2 * A * B`` bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.median_filter import binary_median_filter
from repro.events.types import EVENT_DTYPE


def events_to_binary_frame(
    events: np.ndarray, width: int, height: int
) -> np.ndarray:
    """Accumulate an event packet into a binary frame.

    Parameters
    ----------
    events:
        Structured event array; polarity is ignored.
    width, height:
        Sensor resolution ``A x B``.

    Returns
    -------
    numpy.ndarray
        ``(height, width)`` uint8 array with 1 where at least one event
        occurred.
    """
    if events.dtype != EVENT_DTYPE:
        raise TypeError(f"events must have dtype {EVENT_DTYPE}, got {events.dtype}")
    frame = np.zeros((height, width), dtype=np.uint8)
    if len(events) == 0:
        return frame
    x = events["x"]
    y = events["y"]
    if x.min() < 0 or x.max() >= width or y.min() < 0 or y.max() >= height:
        raise ValueError("event coordinates fall outside the frame")
    frame[y, x] = 1
    return frame


@dataclass
class EbbiFrames:
    """The raw and filtered binary frames for one ``tF`` window."""

    raw: np.ndarray
    filtered: np.ndarray
    t_start_us: int
    t_end_us: int
    num_events: int

    @property
    def t_mid_us(self) -> int:
        """Midpoint of the accumulation window."""
        return (self.t_start_us + self.t_end_us) // 2

    @property
    def active_pixel_count(self) -> int:
        """Number of active pixels in the raw frame."""
        return int(self.raw.sum())

    @property
    def active_pixel_fraction(self) -> float:
        """Fraction of active pixels in the raw frame (the paper's ``alpha``)."""
        return self.active_pixel_count / self.raw.size


class EbbiBuilder:
    """Builds raw + median-filtered EBBI frames from event packets.

    Parameters
    ----------
    width, height:
        Sensor resolution.
    median_patch_size:
        Median-filter patch size ``p`` (the paper uses 3); ``0`` or ``1``
        disables filtering (the filtered frame is then the raw frame).
    """

    def __init__(self, width: int, height: int, median_patch_size: int = 3) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"frame size must be positive, got {width}x{height}")
        if median_patch_size not in (0, 1) and median_patch_size % 2 == 0:
            raise ValueError(
                f"median_patch_size must be odd (or 0/1 to disable), got {median_patch_size}"
            )
        self.width = width
        self.height = height
        self.median_patch_size = median_patch_size
        self._frames_built = 0
        self._total_active_fraction = 0.0

    def build(
        self, events: np.ndarray, t_start_us: int, t_end_us: int
    ) -> EbbiFrames:
        """Accumulate one window of events into raw and filtered EBBI frames."""
        raw = events_to_binary_frame(events, self.width, self.height)
        if self.median_patch_size in (0, 1):
            filtered = raw.copy()
        else:
            filtered = binary_median_filter(raw, self.median_patch_size)
        self._frames_built += 1
        self._total_active_fraction += raw.sum() / raw.size
        return EbbiFrames(
            raw=raw,
            filtered=filtered,
            t_start_us=t_start_us,
            t_end_us=t_end_us,
            num_events=len(events),
        )

    @property
    def frames_built(self) -> int:
        """Number of frames built so far."""
        return self._frames_built

    @property
    def mean_active_pixel_fraction(self) -> float:
        """Mean active-pixel fraction ``alpha`` observed over all frames."""
        if self._frames_built == 0:
            return 0.0
        return self._total_active_fraction / self._frames_built

    def memory_bits(self) -> int:
        """Memory required by the EBBI stage: two binary frames (Eq. (1))."""
        return 2 * self.width * self.height
