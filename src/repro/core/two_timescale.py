"""Two-timescale EBBIOT — the paper's stated future-work extension.

The conclusion of the paper notes that slow, small objects such as
pedestrians are not tracked at ``tF = 66 ms`` because they move sub-pixel
distances per frame and produce too few events; the proposed remedy is "a two
time scale approach where a second frame is generated with longer exposure
times to capture activity of humans".

:class:`TwoTimescalePipeline` implements exactly that: a *fast* EBBIOT
pipeline at the vehicle timescale and a *slow* pipeline whose EBBI
accumulates over an integer multiple of the fast frame duration.  Each frame
window is fed to the fast pipeline as usual; the slow pipeline receives the
concatenated events of the last ``slow_factor`` fast windows.  Track outputs
from the two timescales are merged, with fast tracks taking precedence when
a slow track substantially overlaps one (the slow frame sees the vehicles
too, but smeared — its job is only to pick up what the fast frame misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.config import EbbiotConfig
from repro.core.pipeline import EbbiotPipeline, FrameResult, PipelineResult
from repro.events.stream import EventStream
from repro.events.types import EVENT_DTYPE
from repro.trackers.base import TrackHistory, TrackObservation


@dataclass
class TwoTimescaleConfig:
    """Configuration of the two-timescale pipeline.

    Parameters
    ----------
    fast:
        Configuration of the fast (vehicle) pipeline; the paper's defaults.
    slow_factor:
        The slow EBBI accumulates over ``slow_factor`` fast frames
        (e.g. 8 x 66 ms ≈ 0.5 s of exposure for pedestrians).
    slow_min_proposal_area:
        Minimum proposal area for the slow pipeline; pedestrians are small,
        so this is lower than the fast pipeline's threshold.
    suppression_overlap:
        A slow track overlapping any fast track by more than this fraction
        of its own area is suppressed (it is just a smeared vehicle).
    """

    fast: EbbiotConfig = field(default_factory=EbbiotConfig)
    slow_factor: int = 8
    slow_min_proposal_area: float = 9.0
    suppression_overlap: float = 0.3

    def __post_init__(self) -> None:
        if self.slow_factor < 2:
            raise ValueError(f"slow_factor must be >= 2, got {self.slow_factor}")
        if self.slow_min_proposal_area <= 0:
            raise ValueError("slow_min_proposal_area must be positive")
        if not 0.0 < self.suppression_overlap <= 1.0:
            raise ValueError("suppression_overlap must be in (0, 1]")

    def slow_config(self) -> EbbiotConfig:
        """Derive the slow pipeline's configuration from the fast one."""
        fast = self.fast
        return EbbiotConfig(
            width=fast.width,
            height=fast.height,
            frame_duration_us=fast.frame_duration_us * self.slow_factor,
            median_patch_size=fast.median_patch_size,
            downsample_x=max(2, fast.downsample_x // 2),
            downsample_y=fast.downsample_y,
            histogram_threshold=fast.histogram_threshold,
            max_trackers=fast.max_trackers,
            overlap_threshold=fast.overlap_threshold,
            prediction_weight=fast.prediction_weight,
            occlusion_lookahead_frames=fast.occlusion_lookahead_frames,
            min_track_age_frames=fast.min_track_age_frames,
            max_missed_frames=fast.max_missed_frames,
            min_proposal_area=self.slow_min_proposal_area,
            roe_boxes=list(fast.roe_boxes),
            min_region_side_px=fast.min_region_side_px,
        )


@dataclass
class TwoTimescaleResult:
    """Output of the two-timescale pipeline."""

    fast: PipelineResult
    slow: PipelineResult
    merged_history: TrackHistory

    @property
    def num_fast_frames(self) -> int:
        """Frames processed at the fast timescale."""
        return self.fast.num_frames

    @property
    def num_slow_frames(self) -> int:
        """Frames processed at the slow timescale."""
        return self.slow.num_frames

    def slow_only_tracks(self) -> List[int]:
        """Track ids that appear only in the (suppressed-filtered) slow output."""
        return sorted({o.track_id for o in self.merged_history.observations if o.track_id < 0})


class TwoTimescalePipeline:
    """Fast + slow EBBIOT pipelines with overlap-based output merging.

    Slow-timescale track ids are negated in the merged history so they never
    collide with fast-timescale ids and remain identifiable.
    """

    def __init__(self, config: Optional[TwoTimescaleConfig] = None) -> None:
        self.config = config or TwoTimescaleConfig()
        self.fast_pipeline = EbbiotPipeline(self.config.fast)
        self.slow_pipeline = EbbiotPipeline(self.config.slow_config())

    def process_stream(self, stream: EventStream) -> TwoTimescaleResult:
        """Run both timescales over a recording and merge their outputs."""
        fast_config = self.config.fast
        slow_factor = self.config.slow_factor

        self.fast_pipeline.reset()
        self.slow_pipeline.reset()
        fast_result = PipelineResult()
        slow_result = PipelineResult()

        pending_events: List[np.ndarray] = []
        pending_start: Optional[int] = None
        slow_index = 0

        for frame_index, (t_start, t_end, events) in enumerate(
            stream.iter_frames(fast_config.frame_duration_us, align_to_zero=True)
        ):
            frame = self.fast_pipeline.process_frame_events(
                events, t_start, t_end, frame_index
            )
            fast_result.add_frame(frame)

            if pending_start is None:
                pending_start = t_start
            pending_events.append(events)
            if len(pending_events) == slow_factor:
                slow_frame = self._process_slow_window(
                    pending_events, pending_start, t_end, slow_index
                )
                slow_result.add_frame(slow_frame)
                pending_events = []
                pending_start = None
                slow_index += 1

        fast_result.mean_active_pixel_fraction = (
            self.fast_pipeline.ebbi_builder.mean_active_pixel_fraction
        )
        fast_result.mean_events_per_frame = self.fast_pipeline.mean_events_per_frame
        fast_result.mean_active_trackers = self.fast_pipeline.tracker.mean_active_trackers
        slow_result.mean_active_pixel_fraction = (
            self.slow_pipeline.ebbi_builder.mean_active_pixel_fraction
        )
        slow_result.mean_events_per_frame = self.slow_pipeline.mean_events_per_frame
        slow_result.mean_active_trackers = self.slow_pipeline.tracker.mean_active_trackers

        merged = self._merge_histories(fast_result, slow_result)
        return TwoTimescaleResult(fast=fast_result, slow=slow_result, merged_history=merged)

    # -- internals ---------------------------------------------------------------------

    def _process_slow_window(
        self,
        pending_events: Sequence[np.ndarray],
        t_start: int,
        t_end: int,
        slow_index: int,
    ) -> FrameResult:
        """Accumulate the pending fast windows into one slow frame."""
        non_empty = [p for p in pending_events if len(p)]
        if non_empty:
            window_events = np.concatenate(non_empty)
        else:
            window_events = np.empty(0, dtype=EVENT_DTYPE)
        return self.slow_pipeline.process_frame_events(
            window_events, t_start, t_end, slow_index
        )

    def _merge_histories(
        self, fast_result: PipelineResult, slow_result: PipelineResult
    ) -> TrackHistory:
        """Fast tracks plus slow tracks that do not overlap any fast track."""
        merged = TrackHistory()
        merged.extend(fast_result.track_history.observations)

        fast_by_time = fast_result.track_history.by_frame()
        fast_times = sorted(fast_by_time)
        for observation in slow_result.track_history.observations:
            nearest = self._nearest_time(fast_times, observation.t_us)
            fast_boxes = [o.box for o in fast_by_time.get(nearest, [])] if nearest is not None else []
            overlaps_fast = any(
                observation.box.overlap_fraction(fast_box) > self.config.suppression_overlap
                for fast_box in fast_boxes
            )
            if overlaps_fast:
                continue
            merged.append(
                TrackObservation(
                    track_id=-observation.track_id,
                    box=observation.box,
                    t_us=observation.t_us,
                    velocity=observation.velocity,
                    state=observation.state,
                )
            )
        return merged

    @staticmethod
    def _nearest_time(times: Sequence[int], target: int) -> Optional[int]:
        """Closest timestamp in ``times`` to ``target`` (None when empty)."""
        if not times:
            return None
        return min(times, key=lambda t: abs(t - target))
