"""Overlap-based tracker (OT) — Section II-C of the paper.

Up to ``NT = 8`` trackers are active at a time.  Every frame the tracker:

1. predicts each valid tracker's position by adding its velocity to its
   previous position;
2. matches predictions against region proposals by overlap — a match is
   declared when the overlap area exceeds a fraction of either the predicted
   tracker box or the proposal box;
3. seeds new trackers from unmatched proposals while free tracker slots
   remain;
4. when a tracker matches one or more proposals, merges the proposals
   (repairing fragmentation using the tracker's history) and updates
   position and velocity as a weighted average of prediction and proposal;
5. when several trackers match the same proposal, distinguishes *dynamic
   occlusion* (their predicted trajectories overlap within the next ``n = 2``
   frames — each tracker coasts on its prediction with velocity retained)
   from *fragmentation* (the trackers are merged into one and the extra
   slots are freed).

The implementation is deliberately simple and register-friendly, mirroring
the paper's claim that the tracker state fits in well under 0.5 kB.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.histogram_rpn import RegionProposal
from repro.trackers.base import TrackerBase, TrackObservation, TrackState
from repro.utils.geometry import BoundingBox, merge_boxes


@dataclass
class OverlapTrackerConfig:
    """Parameters of the overlap tracker.

    Parameters
    ----------
    max_trackers:
        Maximum simultaneous trackers ``NT``.
    overlap_threshold:
        Fraction of the predicted-tracker or proposal area that must overlap
        for a match.
    prediction_weight:
        Weight given to the prediction when blending with the matched
        proposal (position and size); ``0`` trusts proposals entirely,
        ``1`` trusts predictions entirely.
    velocity_smoothing:
        Exponential smoothing factor for velocity updates (weight of the old
        velocity).
    occlusion_lookahead_frames:
        Number of future frames ``n`` over which predicted trajectories are
        extrapolated when testing for dynamic occlusion.
    min_track_age_frames:
        Trackers younger than this are reported as tentative and excluded
        from the confirmed output, which suppresses one-frame noise tracks.
    max_missed_frames:
        Consecutive unmatched frames after which a tracker is freed.
    size_smoothing:
        Exponential smoothing factor for box size updates; large values keep
        the remembered full extent of a fragmented object.
    """

    max_trackers: int = 8
    overlap_threshold: float = 0.25
    prediction_weight: float = 0.5
    velocity_smoothing: float = 0.7
    occlusion_lookahead_frames: int = 2
    min_track_age_frames: int = 2
    max_missed_frames: int = 3
    size_smoothing: float = 0.6

    def __post_init__(self) -> None:
        if self.max_trackers < 1:
            raise ValueError(f"max_trackers must be >= 1, got {self.max_trackers}")
        if not 0.0 < self.overlap_threshold <= 1.0:
            raise ValueError(
                f"overlap_threshold must be in (0, 1], got {self.overlap_threshold}"
            )
        for name in ("prediction_weight", "velocity_smoothing", "size_smoothing"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.occlusion_lookahead_frames < 0:
            raise ValueError("occlusion_lookahead_frames must be non-negative")
        if self.min_track_age_frames < 0:
            raise ValueError("min_track_age_frames must be non-negative")
        if self.max_missed_frames < 0:
            raise ValueError("max_missed_frames must be non-negative")


@dataclass
class _TrackerSlot:
    """Internal state of one tracker slot (the ``Ti`` position vector)."""

    track_id: int
    box: BoundingBox
    velocity: Tuple[float, float] = (0.0, 0.0)
    age_frames: int = 0
    missed_frames: int = 0
    hits: int = 1

    def predicted_box(self, frames_ahead: int = 1) -> BoundingBox:
        """Predicted box ``frames_ahead`` frames into the future."""
        return self.box.translated(
            self.velocity[0] * frames_ahead, self.velocity[1] * frames_ahead
        )


@dataclass(frozen=True)
class TrackerState:
    """Immutable snapshot of an :class:`OverlapTracker`'s full state.

    Mirrors the paper's point that the whole tracker state is tiny (well
    under 0.5 kB): a handful of slots plus counters.  Produced by
    :meth:`OverlapTracker.snapshot` and consumed by
    :meth:`OverlapTracker.restore`; the serving layer uses it to
    checkpoint/migrate live sensor sessions.
    """

    slots: Tuple[_TrackerSlot, ...]
    next_track_id: int
    frames_processed: int
    total_active_trackers: int
    occlusions_detected: int
    merges_performed: int


class OverlapTracker(TrackerBase):
    """The EBBIOT overlap-based multi-object tracker."""

    def __init__(self, config: Optional[OverlapTrackerConfig] = None) -> None:
        self.config = config or OverlapTrackerConfig()
        self._slots: Dict[int, _TrackerSlot] = {}
        self._next_track_id = 1
        self._frames_processed = 0
        self._total_active_trackers = 0
        self._occlusions_detected = 0
        self._merges_performed = 0

    # -- TrackerBase interface --------------------------------------------------------

    def reset(self) -> None:
        """Clear all tracker slots and statistics."""
        self._slots.clear()
        self._next_track_id = 1
        self._frames_processed = 0
        self._total_active_trackers = 0
        self._occlusions_detected = 0
        self._merges_performed = 0

    @property
    def num_active_tracks(self) -> int:
        """Number of allocated tracker slots."""
        return len(self._slots)

    def snapshot(self) -> TrackerState:
        """Capture the complete tracker state (slots deep-copied)."""
        return TrackerState(
            slots=tuple(replace(slot) for slot in self._slots.values()),
            next_track_id=self._next_track_id,
            frames_processed=self._frames_processed,
            total_active_trackers=self._total_active_trackers,
            occlusions_detected=self._occlusions_detected,
            merges_performed=self._merges_performed,
        )

    def restore(self, state: TrackerState) -> None:
        """Reinstate a previously captured :class:`TrackerState`."""
        self._slots = {slot.track_id: replace(slot) for slot in state.slots}
        self._next_track_id = state.next_track_id
        self._frames_processed = state.frames_processed
        self._total_active_trackers = state.total_active_trackers
        self._occlusions_detected = state.occlusions_detected
        self._merges_performed = state.merges_performed

    @property
    def free_slots(self) -> int:
        """Number of tracker slots still available."""
        return self.config.max_trackers - len(self._slots)

    # -- statistics ---------------------------------------------------------------------

    @property
    def frames_processed(self) -> int:
        """Number of frames processed since the last reset."""
        return self._frames_processed

    @property
    def mean_active_trackers(self) -> float:
        """Mean number of active trackers per frame (the paper's ``NT`` ≈ 2)."""
        if self._frames_processed == 0:
            return 0.0
        return self._total_active_trackers / self._frames_processed

    @property
    def occlusions_detected(self) -> int:
        """Count of dynamic-occlusion events handled."""
        return self._occlusions_detected

    @property
    def merges_performed(self) -> int:
        """Count of fragmentation merges performed."""
        return self._merges_performed

    # -- main per-frame update -----------------------------------------------------------

    def process_frame(
        self, proposals: Sequence[RegionProposal], t_us: int
    ) -> List[TrackObservation]:
        """Run one overlap-tracker update.

        Parameters
        ----------
        proposals:
            Region proposals for the current frame (already ROE filtered).
        t_us:
            Frame timestamp (midpoint of the accumulation window), attached
            to the reported observations.

        Returns
        -------
        list of TrackObservation
            One observation per confirmed tracker after the update.
        """
        self._frames_processed += 1
        proposal_boxes = [p.box for p in proposals]

        # Step 1: predict all valid trackers one frame ahead.
        predictions: Dict[int, BoundingBox] = {
            track_id: slot.predicted_box(1) for track_id, slot in self._slots.items()
        }

        # Step 2: overlap matching between predictions and proposals.
        matches_by_tracker: Dict[int, List[int]] = {tid: [] for tid in self._slots}
        matches_by_proposal: Dict[int, List[int]] = {
            index: [] for index in range(len(proposal_boxes))
        }
        for track_id, predicted in predictions.items():
            for index, proposal_box in enumerate(proposal_boxes):
                if self._is_match(predicted, proposal_box):
                    matches_by_tracker[track_id].append(index)
                    matches_by_proposal[index].append(track_id)

        handled_trackers: Set[int] = set()
        handled_proposals: Set[int] = set()

        # Step 5 first: proposals matched by multiple trackers — occlusion or
        # earlier fragmentation.  Handling these before step 4 keeps each
        # tracker updated exactly once per frame.
        for index, tracker_ids in matches_by_proposal.items():
            involved = [tid for tid in tracker_ids if tid not in handled_trackers]
            if len(involved) < 2:
                continue
            if self._predicts_occlusion(involved):
                self._occlusions_detected += 1
                for track_id in involved:
                    self._coast_on_prediction(track_id)
                    handled_trackers.add(track_id)
                # The proposal is consumed by the occluded pair; do not seed
                # a new tracker from it.
                handled_proposals.add(index)
            else:
                survivor = self._merge_trackers(involved, proposal_boxes[index])
                handled_trackers.update(involved)
                handled_proposals.add(index)
                self._merges_performed += len(involved) - 1
                # The surviving tracker has been updated from this proposal.
                handled_trackers.add(survivor)

        # Step 4: trackers matched to one or more proposals.
        for track_id, proposal_indices in matches_by_tracker.items():
            if track_id in handled_trackers:
                continue
            available = [i for i in proposal_indices if i not in handled_proposals]
            if not available:
                if proposal_indices:
                    # All its proposals were consumed by an occlusion group.
                    self._coast_on_prediction(track_id)
                    handled_trackers.add(track_id)
                continue
            merged_proposal = merge_boxes([proposal_boxes[i] for i in available])
            self._update_from_proposal(track_id, merged_proposal)
            handled_trackers.add(track_id)
            handled_proposals.update(available)

        # Unmatched trackers coast on their prediction and accumulate misses.
        for track_id in list(self._slots.keys()):
            if track_id in handled_trackers:
                continue
            slot = self._slots[track_id]
            slot.missed_frames += 1
            if slot.missed_frames > self.config.max_missed_frames:
                del self._slots[track_id]
            else:
                self._coast_on_prediction(track_id, count_missed=False)

        # Step 3: seed new trackers from unmatched proposals.
        for index, proposal_box in enumerate(proposal_boxes):
            if index in handled_proposals or matches_by_proposal[index]:
                continue
            if len(self._slots) >= self.config.max_trackers:
                break
            self._seed_tracker(proposal_box)

        # Age bookkeeping and output.
        observations: List[TrackObservation] = []
        for slot in self._slots.values():
            slot.age_frames += 1
            confirmed = slot.age_frames >= self.config.min_track_age_frames
            state = TrackState.CONFIRMED if confirmed else TrackState.TENTATIVE
            if confirmed:
                observations.append(
                    TrackObservation(
                        track_id=slot.track_id,
                        box=slot.box,
                        t_us=t_us,
                        velocity=slot.velocity,
                        state=state,
                    )
                )
        self._total_active_trackers += len(self._slots)
        return observations

    # -- internals -------------------------------------------------------------------------

    def _is_match(self, predicted: BoundingBox, proposal: BoundingBox) -> bool:
        """Overlap test: overlap area vs a fraction of either box's area."""
        overlap = predicted.intersection_area(proposal)
        if overlap <= 0:
            return False
        threshold = self.config.overlap_threshold
        return (
            overlap >= threshold * predicted.area or overlap >= threshold * proposal.area
        )

    def _predicts_occlusion(self, tracker_ids: Sequence[int]) -> bool:
        """``True`` when any pair of trackers is predicted to overlap soon.

        The paper extrapolates the predicted trajectories up to ``n = 2``
        future time steps; if they overlap the shared proposal is attributed
        to dynamic occlusion rather than fragmentation.  Trackers that are
        (nearly) stationary relative to each other are treated as fragments.
        """
        lookahead = self.config.occlusion_lookahead_frames
        for i in range(len(tracker_ids)):
            for j in range(i + 1, len(tracker_ids)):
                slot_i = self._slots[tracker_ids[i]]
                slot_j = self._slots[tracker_ids[j]]
                relative_speed = abs(slot_i.velocity[0] - slot_j.velocity[0]) + abs(
                    slot_i.velocity[1] - slot_j.velocity[1]
                )
                if relative_speed < 0.5:
                    # Moving together: almost certainly fragments of one object.
                    continue
                for step in range(1, lookahead + 1):
                    box_i = slot_i.predicted_box(step)
                    box_j = slot_j.predicted_box(step)
                    if box_i.intersection_area(box_j) > 0:
                        return True
        return False

    def _coast_on_prediction(self, track_id: int, count_missed: bool = False) -> None:
        """Update a tracker entirely from its prediction (occlusion case)."""
        slot = self._slots[track_id]
        slot.box = slot.predicted_box(1)
        if count_missed:
            slot.missed_frames += 1

    def _update_from_proposal(self, track_id: int, proposal: BoundingBox) -> None:
        """Blend prediction and proposal into the corrected tracker state."""
        slot = self._slots[track_id]
        predicted = slot.predicted_box(1)
        weight = self.config.prediction_weight
        new_x = weight * predicted.x + (1 - weight) * proposal.x
        new_y = weight * predicted.y + (1 - weight) * proposal.y
        size_weight = self.config.size_smoothing
        new_w = size_weight * slot.box.width + (1 - size_weight) * proposal.width
        new_h = size_weight * slot.box.height + (1 - size_weight) * proposal.height
        new_box = BoundingBox(new_x, new_y, new_w, new_h)

        observed_velocity = (new_box.x - slot.box.x, new_box.y - slot.box.y)
        smoothing = self.config.velocity_smoothing
        slot.velocity = (
            smoothing * slot.velocity[0] + (1 - smoothing) * observed_velocity[0],
            smoothing * slot.velocity[1] + (1 - smoothing) * observed_velocity[1],
        )
        slot.box = new_box
        slot.missed_frames = 0
        slot.hits += 1

    def _merge_trackers(self, tracker_ids: Sequence[int], proposal: BoundingBox) -> int:
        """Merge fragmented trackers into the oldest one; free the rest.

        Returns the id of the surviving tracker.
        """
        survivor_id = max(
            tracker_ids, key=lambda tid: (self._slots[tid].age_frames, -tid)
        )
        # Average the velocities of the merged trackers (they belong to the
        # same physical object).
        vx = sum(self._slots[tid].velocity[0] for tid in tracker_ids) / len(tracker_ids)
        vy = sum(self._slots[tid].velocity[1] for tid in tracker_ids) / len(tracker_ids)
        survivor = self._slots[survivor_id]
        survivor.velocity = (vx, vy)
        self._update_from_proposal(survivor_id, proposal)
        for track_id in tracker_ids:
            if track_id != survivor_id:
                del self._slots[track_id]
        return survivor_id

    def _seed_tracker(self, proposal: BoundingBox) -> None:
        """Seed a new tracker slot from an unmatched proposal."""
        slot = _TrackerSlot(track_id=self._next_track_id, box=proposal)
        self._slots[slot.track_id] = slot
        self._next_track_id += 1
