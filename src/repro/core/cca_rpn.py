"""Connected-component region proposal (the paper's future-work RPN).

Section II-B and the conclusion note that the histogram RPN relies on the
side-view geometry of the traffic scene and that a general solution would
perform 2-D connected-component analysis (CCA) on the binary image.  This
module implements that generalisation so the two RPNs can be compared in the
ablation benchmarks.

The labelling uses a two-pass union-find algorithm over the binary frame
with either 4- or 8-connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.histogram_rpn import RegionProposal
from repro.utils.geometry import BoundingBox


class _UnionFind:
    """Union-find over provisional component labels."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def make_set(self, label: int) -> None:
        if label not in self._parent:
            self._parent[label] = label

    def find(self, label: int) -> int:
        root = label
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[label] != root:
            self._parent[label], label = root, self._parent[label]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[max(root_a, root_b)] = min(root_a, root_b)


def label_connected_components(
    frame: np.ndarray, connectivity: int = 8
) -> Tuple[np.ndarray, int]:
    """Label connected components of a binary frame.

    Parameters
    ----------
    frame:
        ``(height, width)`` binary array.
    connectivity:
        4 or 8.

    Returns
    -------
    (labels, num_components)
        ``labels`` has the same shape as ``frame`` with 0 for background and
        1..num_components for the components.
    """
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")
    binary = frame > 0
    height, width = binary.shape
    labels = np.zeros((height, width), dtype=np.int32)
    uf = _UnionFind()
    next_label = 1

    if connectivity == 4:
        neighbour_offsets = [(-1, 0), (0, -1)]
    else:
        neighbour_offsets = [(-1, -1), (-1, 0), (-1, 1), (0, -1)]

    for y in range(height):
        for x in range(width):
            if not binary[y, x]:
                continue
            neighbour_labels = []
            for dy, dx in neighbour_offsets:
                ny, nx = y + dy, x + dx
                if 0 <= ny < height and 0 <= nx < width and labels[ny, nx] > 0:
                    neighbour_labels.append(labels[ny, nx])
            if not neighbour_labels:
                uf.make_set(next_label)
                labels[y, x] = next_label
                next_label += 1
            else:
                minimum = min(neighbour_labels)
                labels[y, x] = minimum
                for other in neighbour_labels:
                    uf.union(minimum, other)

    # Second pass: resolve provisional labels to compact final labels.
    final_labels: Dict[int, int] = {}
    num_components = 0
    for y in range(height):
        for x in range(width):
            if labels[y, x] == 0:
                continue
            root = uf.find(labels[y, x])
            if root not in final_labels:
                num_components += 1
                final_labels[root] = num_components
            labels[y, x] = final_labels[root]
    return labels, num_components


@dataclass
class ConnectedComponentRPN:
    """Region proposals from 2-D connected-component analysis.

    Parameters
    ----------
    connectivity:
        4- or 8-connectivity for the labelling.
    min_component_pixels:
        Components with fewer active pixels are discarded as noise.
    merge_gap_px:
        Components whose bounding boxes are closer than this (in pixels, in
        both axes) are merged, which reduces object fragmentation the same
        way the coarse histogram bins do.
    """

    connectivity: int = 8
    min_component_pixels: int = 5
    merge_gap_px: float = 4.0

    def propose(self, frame: np.ndarray) -> List[RegionProposal]:
        """Propose one region per (merged) connected component."""
        labels, num_components = label_connected_components(frame, self.connectivity)
        if num_components == 0:
            return []
        boxes: List[Tuple[BoundingBox, int]] = []
        for component in range(1, num_components + 1):
            ys, xs = np.nonzero(labels == component)
            count = len(xs)
            if count < self.min_component_pixels:
                continue
            box = BoundingBox.from_corners(
                float(xs.min()), float(ys.min()), float(xs.max() + 1), float(ys.max() + 1)
            )
            boxes.append((box, count))
        merged = self._merge_nearby(boxes)
        proposals = [
            RegionProposal(box=box, event_count=count, density=count / box.area)
            for box, count in merged
            if box.area > 0
        ]
        proposals.sort(key=lambda proposal: proposal.event_count, reverse=True)
        return proposals

    def _merge_nearby(
        self, boxes: List[Tuple[BoundingBox, int]]
    ) -> List[Tuple[BoundingBox, int]]:
        """Iteratively merge boxes whose expanded extents overlap."""
        merged = list(boxes)
        changed = True
        while changed and len(merged) > 1:
            changed = False
            for i in range(len(merged)):
                for j in range(i + 1, len(merged)):
                    box_i, count_i = merged[i]
                    box_j, count_j = merged[j]
                    expanded = box_i.expanded(self.merge_gap_px / 2.0)
                    if expanded.intersection_area(box_j.expanded(self.merge_gap_px / 2.0)) > 0:
                        union_box = BoundingBox.from_corners(
                            min(box_i.x, box_j.x),
                            min(box_i.y, box_j.y),
                            max(box_i.x2, box_j.x2),
                            max(box_i.y2, box_j.y2),
                        )
                        merged[i] = (union_box, count_i + count_j)
                        merged.pop(j)
                        changed = True
                        break
                if changed:
                    break
        return merged
