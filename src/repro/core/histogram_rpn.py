"""Event-density histogram region proposal (Section II-B).

The filtered EBBI is block-downsampled by factors ``(s1, s2)`` (Eq. (3)),
its column and row sums form the X and Y histograms (Eq. (4)), and runs of
contiguous above-threshold bins in each histogram define candidate X and Y
intervals.  The Cartesian product of the X and Y intervals gives candidate
2-D regions; each candidate is validated against the binary frame so that
spurious combinations (when several objects are present in both axes) are
discarded — the "check in the original image" the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.utils.geometry import BoundingBox


@dataclass(frozen=True)
class RegionProposal:
    """One proposed object region.

    Attributes
    ----------
    box:
        Proposed bounding box in full-resolution pixel coordinates.
    event_count:
        Number of active pixels of the (filtered) EBBI inside the box.
    density:
        Active pixels divided by box area.
    """

    box: BoundingBox
    event_count: int
    density: float

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "x": self.box.x,
            "y": self.box.y,
            "width": self.box.width,
            "height": self.box.height,
            "event_count": self.event_count,
            "density": self.density,
        }


def downsample_binary_frame(frame: np.ndarray, s1: int, s2: int) -> np.ndarray:
    """Block-sum downsampling of a binary frame (Eq. (3)).

    The output pixel ``(i, j)`` is the number of active pixels in the
    ``s1 x s2`` block of the input anchored at ``(i * s1, j * s2)``.  Only
    complete blocks are kept (``i < floor(A / s1)``, ``j < floor(B / s2)``),
    matching the floor in Eq. (3).

    Parameters
    ----------
    frame:
        ``(height, width)`` binary array (indexed ``[y, x]``).
    s1:
        Downsampling factor along x (width).
    s2:
        Downsampling factor along y (height).

    Returns
    -------
    numpy.ndarray
        ``(height // s2, width // s1)`` int32 array of block sums.
    """
    if frame.ndim != 2:
        raise ValueError(f"frame must be 2-D, got shape {frame.shape}")
    if s1 < 1 or s2 < 1:
        raise ValueError(f"downsampling factors must be >= 1, got s1={s1} s2={s2}")
    height, width = frame.shape
    out_width = width // s1
    out_height = height // s2
    if out_width == 0 or out_height == 0:
        raise ValueError(
            f"downsampling factors ({s1}, {s2}) too large for frame {width}x{height}"
        )
    cropped = frame[: out_height * s2, : out_width * s1].astype(np.int32)
    return cropped.reshape(out_height, s2, out_width, s1).sum(axis=(1, 3))


def frame_histograms(
    frame: np.ndarray, s1: int, s2: int
) -> Tuple[np.ndarray, np.ndarray]:
    """X and Y histograms computed directly from the full-resolution frame.

    Equivalent to ``compute_histograms(downsample_binary_frame(frame, s1,
    s2))`` but skips materialising the 2-D downsampled image: each histogram
    is one axis sum of the cropped frame folded into bins of ``s1`` (or
    ``s2``) columns (rows).  This is the hot path of
    :meth:`HistogramRegionProposer.propose`.
    """
    if frame.ndim != 2:
        raise ValueError(f"frame must be 2-D, got shape {frame.shape}")
    if s1 < 1 or s2 < 1:
        raise ValueError(f"downsampling factors must be >= 1, got s1={s1} s2={s2}")
    height, width = frame.shape
    out_width = width // s1
    out_height = height // s2
    if out_width == 0 or out_height == 0:
        raise ValueError(
            f"downsampling factors ({s1}, {s2}) too large for frame {width}x{height}"
        )
    cropped = frame[: out_height * s2, : out_width * s1]
    column_sums = cropped.sum(axis=0, dtype=np.int32)
    row_sums = cropped.sum(axis=1, dtype=np.int32)
    histogram_x = column_sums.reshape(out_width, s1).sum(axis=1)
    histogram_y = row_sums.reshape(out_height, s2).sum(axis=1)
    return histogram_x, histogram_y


def compute_histograms(downsampled: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """X and Y histograms of the downsampled image (Eq. (4)).

    Returns
    -------
    (histogram_x, histogram_y)
        ``histogram_x[i]`` sums column ``i`` over all rows; ``histogram_y[j]``
        sums row ``j`` over all columns.
    """
    histogram_x = downsampled.sum(axis=0)
    histogram_y = downsampled.sum(axis=1)
    return histogram_x, histogram_y


def find_runs_above_threshold(
    histogram: np.ndarray, threshold: int
) -> List[Tuple[int, int]]:
    """Find maximal runs of contiguous bins with value >= threshold.

    Returns
    -------
    list of (start, end)
        Half-open bin index intervals ``[start, end)``.
    """
    if histogram.ndim != 1:
        raise ValueError("histogram must be 1-D")
    above = histogram >= threshold
    if not above.any():
        return []
    padded = np.concatenate([[False], above, [False]])
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts = changes[0::2]
    ends = changes[1::2]
    return list(zip(starts.tolist(), ends.tolist()))


class HistogramRegionProposer:
    """Histogram-based region proposal network.

    Parameters
    ----------
    downsample_x, downsample_y:
        Block-downsampling factors ``s1`` and ``s2``.
    threshold:
        Minimum downsampled histogram value for a bin to belong to a region
        (the paper uses 1 — "acceptable since we need a coarse location").
    min_region_side_px:
        Candidate regions narrower than this in either direction (in
        full-resolution pixels) are discarded.
    min_event_count:
        Minimum number of active pixels inside the candidate box for it to
        be emitted; this is the validity check in the original image that
        suppresses false X/Y combinations.
    """

    def __init__(
        self,
        downsample_x: int = 6,
        downsample_y: int = 3,
        threshold: int = 1,
        min_region_side_px: float = 2.0,
        min_event_count: int = 3,
    ) -> None:
        if downsample_x < 1 or downsample_y < 1:
            raise ValueError("downsampling factors must be >= 1")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if min_event_count < 1:
            raise ValueError(f"min_event_count must be >= 1, got {min_event_count}")
        self.downsample_x = downsample_x
        self.downsample_y = downsample_y
        self.threshold = threshold
        self.min_region_side_px = min_region_side_px
        self.min_event_count = min_event_count

    def propose(self, frame: np.ndarray) -> List[RegionProposal]:
        """Propose regions for one (filtered) binary frame.

        Parameters
        ----------
        frame:
            ``(height, width)`` binary EBBI, already noise filtered.

        Returns
        -------
        list of RegionProposal
            Proposals in full-resolution coordinates, ordered by descending
            event count.
        """
        histogram_x, histogram_y = frame_histograms(
            frame, self.downsample_x, self.downsample_y
        )
        x_runs = find_runs_above_threshold(histogram_x, self.threshold)
        y_runs = find_runs_above_threshold(histogram_y, self.threshold)
        if not x_runs or not y_runs:
            return []

        height, width = frame.shape
        x_run_array = np.asarray(x_runs, dtype=np.int64)
        y_run_array = np.asarray(y_runs, dtype=np.int64)
        x1 = x_run_array[:, 0] * self.downsample_x
        x2 = np.minimum(x_run_array[:, 1] * self.downsample_x, width)
        y1 = y_run_array[:, 0] * self.downsample_y
        y2 = np.minimum(y_run_array[:, 1] * self.downsample_y, height)
        box_widths = x2 - x1
        box_heights = y2 - y1

        # Candidate (x-run, y-run) pairs that pass the size filter, in the
        # x-major order of the original nested loop.
        x_indices = np.flatnonzero(box_widths >= self.min_region_side_px)
        y_indices = np.flatnonzero(box_heights >= self.min_region_side_px)
        candidates = [(i, j) for i in x_indices for j in y_indices]
        if not candidates:
            return []

        # Validity check in the original image: combinations of X and Y runs
        # that do not actually contain events are spurious.  The typical
        # frame has only a handful of candidates, where slicing each patch is
        # cheapest; crowded frames amortise one summed-area table that
        # answers every box count in a single gather.
        if len(candidates) > 8:
            integral = np.zeros((height + 1, width + 1), dtype=np.int32)
            integral[1:, 1:] = (frame > 0).cumsum(axis=0, dtype=np.int32).cumsum(axis=1)
            counts = (
                integral[y2[None, :], x2[:, None]]
                - integral[y1[None, :], x2[:, None]]
                - integral[y2[None, :], x1[:, None]]
                + integral[y1[None, :], x1[:, None]]
            )
            def count_of(i: int, j: int) -> int:
                return int(counts[i, j])

        else:

            def count_of(i: int, j: int) -> int:
                return int(np.count_nonzero(frame[y1[j] : y2[j], x1[i] : x2[i]]))

        proposals: List[RegionProposal] = []
        for x_index, y_index in candidates:
            event_count = count_of(x_index, y_index)
            if event_count < self.min_event_count:
                continue
            box = BoundingBox(
                float(x1[x_index]),
                float(y1[y_index]),
                float(box_widths[x_index]),
                float(box_heights[y_index]),
            )
            proposals.append(
                RegionProposal(
                    box=box,
                    event_count=event_count,
                    density=event_count / box.area if box.area > 0 else 0.0,
                )
            )
        proposals.sort(key=lambda proposal: proposal.event_count, reverse=True)
        return proposals

    def debug_histograms(
        self, frame: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(downsampled, histogram_x, histogram_y)`` for inspection.

        Used by the Fig. 3 reproduction benchmark and the examples.
        """
        downsampled = downsample_binary_frame(frame, self.downsample_x, self.downsample_y)
        histogram_x, histogram_y = compute_histograms(downsampled)
        return downsampled, histogram_x, histogram_y
