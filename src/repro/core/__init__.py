"""EBBIOT core: the paper's primary contribution.

The pipeline has three stages (Fig. 1):

1. :mod:`repro.core.ebbi` — accumulate the events of each ``tF`` window into
   an event-based binary image (EBBI) and denoise it with a binary median
   filter (:mod:`repro.core.median_filter`).
2. :mod:`repro.core.histogram_rpn` — propose object regions from downsampled
   X and Y event-density histograms (with :mod:`repro.core.cca_rpn` as the
   connected-components generalisation the paper leaves to future work).
3. :mod:`repro.core.overlap_tracker` — the overlap-based multi-object
   tracker (OT) with prediction-based occlusion handling.

:class:`repro.core.pipeline.EbbiotPipeline` ties the stages together behind
one ``process_stream`` call.
"""

from repro.core.cca_rpn import ConnectedComponentRPN
from repro.core.config import EbbiotConfig
from repro.core.ebbi import (
    EbbiBuilder,
    events_to_binary_frame,
    events_to_binary_frame_batch,
)
from repro.core.histogram_rpn import (
    HistogramRegionProposer,
    RegionProposal,
    compute_histograms,
    downsample_binary_frame,
    find_runs_above_threshold,
    frame_histograms,
)
from repro.core.median_filter import binary_median_filter, binary_median_filter_stack
from repro.core.overlap_tracker import OverlapTracker, OverlapTrackerConfig, TrackerState
from repro.core.pipeline import (
    EbbiotPipeline,
    FrameResult,
    PipelineResult,
    PipelineState,
)
from repro.core.roe import RegionOfExclusion
from repro.core.two_timescale import (
    TwoTimescaleConfig,
    TwoTimescalePipeline,
    TwoTimescaleResult,
)

__all__ = [
    "EbbiotConfig",
    "EbbiBuilder",
    "events_to_binary_frame",
    "events_to_binary_frame_batch",
    "binary_median_filter",
    "binary_median_filter_stack",
    "HistogramRegionProposer",
    "ConnectedComponentRPN",
    "RegionProposal",
    "compute_histograms",
    "downsample_binary_frame",
    "find_runs_above_threshold",
    "frame_histograms",
    "OverlapTracker",
    "OverlapTrackerConfig",
    "TrackerState",
    "RegionOfExclusion",
    "EbbiotPipeline",
    "FrameResult",
    "PipelineResult",
    "PipelineState",
    "TwoTimescaleConfig",
    "TwoTimescalePipeline",
    "TwoTimescaleResult",
]
