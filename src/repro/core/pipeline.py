"""The end-to-end EBBIOT pipeline (Fig. 1).

:class:`EbbiotPipeline` wires the three stages together: EBBI generation and
median filtering, histogram region proposal (with ROE filtering), and a
pluggable tracker backend.  ``process_stream`` runs a whole recording and
returns the per-frame results plus the statistics needed by the resource
models (mean active-pixel fraction ``alpha``, mean events per frame ``n``,
mean active trackers ``NT``).

The tracker stage is selected by ``EbbiotConfig.tracker`` through the
registry of :mod:`repro.trackers.registry`: ``"overlap"`` (the paper's
tracker, default), ``"kalman"`` (the EBBI+KF baseline) or ``"ebms"`` (the
event-driven NN-filt+EBMS baseline).  Backends that declare
``requires_proposals = False`` (EBMS) make the pipeline skip the RPN + ROE
stages and instead receive each window's raw events, so the one
``process_stream`` / ``process_frame_events`` path reproduces all three of
the paper's Fig. 4/5 pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.core.config import EbbiotConfig
from repro.core.ebbi import EbbiBuilder, EbbiFrames
from repro.core.histogram_rpn import HistogramRegionProposer, RegionProposal
from repro.core.roe import RegionOfExclusion
from repro.events.stream import EventStream
from repro.trackers.backend import BackendState, TrackerBackend, TrackerFrame
from repro.trackers.base import TrackHistory, TrackObservation


@dataclass(frozen=True)
class PipelineState:
    """Snapshot of an :class:`EbbiotPipeline`'s incremental state.

    Everything a live session needs to checkpoint and later resume (or
    migrate to another worker): the tracker backend's state envelope and the
    running summary statistics.  Deliberately tiny — the EBBI frames
    themselves are per-window scratch and never part of the state.  The
    :class:`~repro.trackers.backend.BackendState` is tagged with its backend
    name, so restoring a checkpoint into a pipeline running a different
    tracker fails loudly.
    """

    tracker: BackendState
    ebbi_stats: tuple
    total_events: int
    frames_processed: int


@dataclass
class FrameResult:
    """Per-frame output of the pipeline."""

    frame_index: int
    t_start_us: int
    t_end_us: int
    num_events: int
    proposals: List[RegionProposal]
    tracks: List[TrackObservation]
    ebbi: Optional[EbbiFrames] = None

    @property
    def t_mid_us(self) -> int:
        """Midpoint of the frame window (matches the GT sampling instants)."""
        return (self.t_start_us + self.t_end_us) // 2


@dataclass
class PipelineResult:
    """Whole-recording output of the pipeline.

    The ``frames_processed`` / ``proposal_count`` counters are the source of
    truth for frame and proposal totals (use :meth:`add_frame` to keep them
    in sync); ``frames`` holds the per-frame results, and stays empty when
    the pipeline runs with ``collect_frames=False`` (fleet-scale runs where
    per-frame objects for thousands of frames would dominate memory).
    """

    frames: List[FrameResult] = field(default_factory=list)
    track_history: TrackHistory = field(default_factory=TrackHistory)
    mean_active_pixel_fraction: float = 0.0
    mean_events_per_frame: float = 0.0
    mean_active_trackers: float = 0.0
    frames_processed: int = 0
    proposal_count: int = 0

    def add_frame(
        self, frame_result: FrameResult, keep: bool = True, keep_history: bool = True
    ) -> None:
        """Record one frame's output: counters, the frame itself when
        ``keep`` is true, and the track observations when ``keep_history``
        is true (indefinitely-streaming serving sessions turn it off and
        count observations instead, keeping memory constant)."""
        self.frames_processed += 1
        self.proposal_count += len(frame_result.proposals)
        if keep:
            self.frames.append(frame_result)
        if keep_history:
            self.track_history.extend(frame_result.tracks)

    @property
    def num_frames(self) -> int:
        """Number of frames processed."""
        return self.frames_processed

    def total_proposals(self) -> int:
        """Total number of region proposals over the recording."""
        return self.proposal_count

    def total_track_observations(self) -> int:
        """Total number of reported track boxes over the recording."""
        return len(self.track_history)


class EbbiotPipeline:
    """EBBI generation + histogram RPN + a pluggable tracker backend.

    Parameters
    ----------
    config:
        Pipeline configuration; defaults to the paper's parameters.  The
        ``config.tracker`` name selects the backend.
    keep_frames:
        When ``True`` each :class:`FrameResult` retains its raw/filtered
        EBBI frames (useful for visualisation but memory hungry for long
        recordings).
    tracker:
        Optional override of ``config.tracker``: a registry name or a ready
        :class:`~repro.trackers.backend.TrackerBackend` instance (tests and
        experiments inject custom trackers this way).
    instrumentation:
        Optional :class:`repro.obs.Instrumentation`.  When attached, every
        frame window is wrapped in a ``frame`` span and each stage (``ebbi``,
        ``median``, ``rpn``, ``roe``, ``tracker`` — proposal-free backends
        skip ``rpn``/``roe``) is timed into it; ``process_stream`` switches
        from chunked EBBI batching to per-window building so the spans
        reflect true per-window cost.  With the default ``None`` the hot
        path is byte-identical to the uninstrumented pipeline.
    """

    def __init__(
        self,
        config: Optional[EbbiotConfig] = None,
        keep_frames: bool = False,
        tracker: Optional[Union[str, TrackerBackend]] = None,
        instrumentation=None,
    ) -> None:
        # Deferred import: the registry's backends transitively import the
        # core package, which imports this module.
        from repro.trackers.registry import create_backend

        self.config = config or EbbiotConfig()
        self.keep_frames = keep_frames
        self.region_proposer = HistogramRegionProposer(
            downsample_x=self.config.downsample_x,
            downsample_y=self.config.downsample_y,
            threshold=self.config.histogram_threshold,
            min_region_side_px=self.config.min_region_side_px,
        )
        self.roe = RegionOfExclusion(
            boxes=list(self.config.roe_boxes),
            max_overlap_fraction=self.config.roe_max_overlap_fraction,
        )
        self.tracker: TrackerBackend = create_backend(
            tracker if tracker is not None else self.config.tracker, self.config
        )
        self.instrumentation = instrumentation
        self.ebbi_builder = self._make_ebbi_builder()
        self._total_events = 0
        self._frames_processed = 0

    def _make_ebbi_builder(self) -> EbbiBuilder:
        """EBBI builder for the active backend.

        When no stage consumes the filtered frame (a proposal-free backend
        such as EBMS — the paper's event-driven pipeline has no EBBI stage
        at all), the median filter is disabled; raw accumulation alone
        provides the ``alpha``/``n`` statistics.

        The builder reuses its frame stacks across windows/chunks (no
        per-frame allocations on the steady-state path): every frame the
        pipeline hands out lives only for the duration of its RPN + tracker
        step, and frames retained beyond that (``keep_frames``) are
        detached copies.
        """
        patch_size = (
            self.config.median_patch_size if self.tracker.requires_proposals else 0
        )
        builder = EbbiBuilder(
            self.config.width, self.config.height, patch_size, reuse_buffers=True
        )
        builder.instrumentation = self.instrumentation
        return builder

    @property
    def backend_name(self) -> str:
        """Registry name of the active tracker backend."""
        return self.tracker.name

    # -- single-frame processing ---------------------------------------------------------

    def process_frame_events(
        self, events: np.ndarray, t_start_us: int, t_end_us: int, frame_index: int = 0
    ) -> FrameResult:
        """Process one accumulation window of events through all stages."""
        instrumentation = self.instrumentation
        if instrumentation is None:
            ebbi = self.ebbi_builder.build(events, t_start_us, t_end_us)
            return self._process_built_frame(ebbi, frame_index, events)
        with instrumentation.frame(frame_index, t_start_us, t_end_us, len(events)):
            ebbi = self.ebbi_builder.build(events, t_start_us, t_end_us)
            return self._process_built_frame_instrumented(
                ebbi, frame_index, events, instrumentation
            )

    def _propose_regions(self, ebbi: EbbiFrames) -> List[RegionProposal]:
        """The RPN stage: histogram proposals + minimum-area filter."""
        proposals = self.region_proposer.propose(ebbi.filtered)
        return [p for p in proposals if p.box.area >= self.config.min_proposal_area]

    def _step_tracker(
        self,
        ebbi: EbbiFrames,
        proposals: List[RegionProposal],
        events: Optional[np.ndarray],
    ) -> List[TrackObservation]:
        """The tracker stage: one backend step over this window."""
        return self.tracker.step(
            TrackerFrame(
                proposals=proposals,
                events=events,
                t_start_us=ebbi.t_start_us,
                t_end_us=ebbi.t_end_us,
            )
        )

    def _finish_frame(
        self,
        ebbi: EbbiFrames,
        frame_index: int,
        proposals: List[RegionProposal],
        tracks: List[TrackObservation],
    ) -> FrameResult:
        """Update counters and assemble the window's :class:`FrameResult`."""
        self._total_events += ebbi.num_events
        self._frames_processed += 1
        return FrameResult(
            frame_index=frame_index,
            t_start_us=ebbi.t_start_us,
            t_end_us=ebbi.t_end_us,
            num_events=ebbi.num_events,
            proposals=proposals,
            tracks=tracks,
            ebbi=ebbi.detached() if self.keep_frames else None,
        )

    def _process_built_frame(
        self,
        ebbi: EbbiFrames,
        frame_index: int,
        events: Optional[np.ndarray] = None,
    ) -> FrameResult:
        """RPN + ROE + tracker stages for an already-built EBBI frame.

        ``events`` is the window's raw packet; event-driven backends
        (``requires_events``) consume it, and proposal-free backends
        (``not requires_proposals``) skip the RPN + ROE stages entirely.
        """
        if self.tracker.requires_proposals:
            proposals = self.roe.filter_proposals(self._propose_regions(ebbi))
        else:
            proposals = []
        tracks = self._step_tracker(ebbi, proposals, events)
        return self._finish_frame(ebbi, frame_index, proposals, tracks)

    def _process_built_frame_instrumented(
        self,
        ebbi: EbbiFrames,
        frame_index: int,
        events: Optional[np.ndarray],
        instrumentation,
    ) -> FrameResult:
        """:meth:`_process_built_frame` with per-stage timing."""
        if self.tracker.requires_proposals:
            with instrumentation.stage("rpn"):
                proposals = self._propose_regions(ebbi)
            with instrumentation.stage("roe"):
                proposals = self.roe.filter_proposals(proposals)
        else:
            proposals = []
        with instrumentation.stage("tracker"):
            tracks = self._step_tracker(ebbi, proposals, events)
        return self._finish_frame(ebbi, frame_index, proposals, tracks)

    # -- whole-recording processing -------------------------------------------------------

    def process_stream(
        self,
        stream: EventStream,
        align_to_zero: bool = True,
        chunk_frames: int = 256,
        collect_frames: bool = True,
    ) -> PipelineResult:
        """Run the pipeline over an entire event stream.

        Frame boundaries for the whole recording are resolved up front with
        one vectorised search (:meth:`EventStream.frame_index`) and EBBI
        frames are accumulated and median-filtered in chunks of
        ``chunk_frames`` windows at a time; only the inherently sequential
        RPN + tracker stages run frame by frame.

        Parameters
        ----------
        stream:
            The recording to process.
        align_to_zero:
            Start frame windows at ``t = 0`` so frame midpoints line up with
            the simulator's ground-truth sampling instants.
        chunk_frames:
            Number of windows accumulated per vectorised EBBI batch.  Larger
            chunks amortise more Python overhead at the cost of a
            ``chunk_frames x height x width`` scratch stack.
        collect_frames:
            When ``False`` per-frame :class:`FrameResult` objects are
            dropped after their tracks are recorded, keeping long fleet runs
            at constant memory; summary statistics and the track history are
            unaffected.
        """
        if chunk_frames <= 0:
            raise ValueError(f"chunk_frames must be positive, got {chunk_frames}")
        self.reset()
        result = PipelineResult()
        index = stream.frame_index(self.config.frame_duration_us, align_to_zero)
        if self.instrumentation is not None:
            # Per-window building, so the ebbi/median spans reflect each
            # window's true cost instead of an amortised chunk share.
            for frame_index in range(index.num_frames):
                lo = index.splits[frame_index]
                hi = index.splits[frame_index + 1]
                frame_result = self.process_frame_events(
                    index.events[lo:hi],
                    int(index.starts[frame_index]),
                    int(index.ends[frame_index]),
                    frame_index,
                )
                result.add_frame(frame_result, keep=collect_frames)
            result.mean_active_pixel_fraction = (
                self.ebbi_builder.mean_active_pixel_fraction
            )
            result.mean_events_per_frame = self.mean_events_per_frame
            result.mean_active_trackers = self.tracker.mean_active_trackers
            return result
        for chunk_start in range(0, index.num_frames, chunk_frames):
            chunk_stop = min(chunk_start + chunk_frames, index.num_frames)
            batch = self.ebbi_builder.build_batch(
                index.events,
                index.starts[chunk_start:chunk_stop],
                index.ends[chunk_start:chunk_stop],
                index.splits[chunk_start : chunk_stop + 1],
            )
            for offset, ebbi in enumerate(batch):
                window_events = None
                if self.tracker.requires_events:
                    lo = index.splits[chunk_start + offset]
                    hi = index.splits[chunk_start + offset + 1]
                    window_events = index.events[lo:hi]
                frame_result = self._process_built_frame(
                    ebbi, chunk_start + offset, window_events
                )
                result.add_frame(frame_result, keep=collect_frames)
        result.mean_active_pixel_fraction = self.ebbi_builder.mean_active_pixel_fraction
        result.mean_events_per_frame = self.mean_events_per_frame
        result.mean_active_trackers = self.tracker.mean_active_trackers
        return result

    def iter_stream(
        self, stream: EventStream, align_to_zero: bool = True
    ) -> Iterator[FrameResult]:
        """Lazily process a stream frame by frame (no whole-recording state)."""
        for frame_index, (t_start, t_end, events) in enumerate(
            stream.iter_frames(self.config.frame_duration_us, align_to_zero=align_to_zero)
        ):
            yield self.process_frame_events(events, t_start, t_end, frame_index)

    # -- state and statistics ---------------------------------------------------------------

    def reset(self) -> None:
        """Reset all stage state (tracker backend, statistics)."""
        self.ebbi_builder = self._make_ebbi_builder()
        self.tracker.reset()
        self._total_events = 0
        self._frames_processed = 0

    def snapshot(self) -> PipelineState:
        """Capture the incremental state between frames.

        Valid only at frame boundaries (after a :meth:`process_frame_events`
        call returns), which is the only time a live session checkpoints.
        """
        return PipelineState(
            tracker=self.tracker.snapshot(),
            ebbi_stats=self.ebbi_builder.stats_snapshot(),
            total_events=self._total_events,
            frames_processed=self._frames_processed,
        )

    def restore(self, state: PipelineState) -> None:
        """Reinstate a state captured by :meth:`snapshot`.

        The backend rejects a snapshot taken under a different tracker, so
        a checkpoint can never silently resume on the wrong algorithm.
        """
        self.tracker.restore(state.tracker)
        self.ebbi_builder.restore_stats(state.ebbi_stats)
        self._total_events = state.total_events
        self._frames_processed = state.frames_processed

    @property
    def mean_events_per_frame(self) -> float:
        """Mean raw events per frame (the paper's ``n``)."""
        if self._frames_processed == 0:
            return 0.0
        return self._total_events / self._frames_processed

    @property
    def frames_processed(self) -> int:
        """Frames processed since the last reset."""
        return self._frames_processed
