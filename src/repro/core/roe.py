"""Regions of exclusion (ROE).

The overlap tracker assumes that distractors such as trees, and static
occluders such as lamp posts, are covered by manually specified regions of
exclusion (Section II-C).  Region proposals that fall mostly inside an ROE
are discarded before tracking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.histogram_rpn import RegionProposal
from repro.utils.geometry import BoundingBox


def rectangle_union_area(rectangles: Sequence[BoundingBox]) -> float:
    """Exact area of the union of axis-aligned rectangles.

    Coordinate compression: the rectangles' edges partition the plane into a
    grid whose cells are each either fully inside or fully outside every
    rectangle, so summing the covered cells gives the union exactly.  The
    ROE box counts in play are single digits, so the O(n^3) cell sweep is
    far below any measurable cost.
    """
    if not rectangles:
        return 0.0
    xs = sorted({edge for r in rectangles for edge in (r.x, r.x2)})
    ys = sorted({edge for r in rectangles for edge in (r.y, r.y2)})
    area = 0.0
    for x1, x2 in zip(xs, xs[1:]):
        cx = (x1 + x2) / 2.0
        column = [r for r in rectangles if r.x <= cx <= r.x2]
        if not column:
            continue
        for y1, y2 in zip(ys, ys[1:]):
            cy = (y1 + y2) / 2.0
            if any(r.y <= cy <= r.y2 for r in column):
                area += (x2 - x1) * (y2 - y1)
    return area


@dataclass
class RegionOfExclusion:
    """A set of boxes inside which region proposals are suppressed.

    Parameters
    ----------
    boxes:
        Excluded regions in full-resolution pixel coordinates.
    max_overlap_fraction:
        A proposal is dropped when more than this fraction of its area lies
        inside the union of the excluded boxes.
    """

    boxes: List[BoundingBox] = field(default_factory=list)
    max_overlap_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_overlap_fraction <= 1.0:
            raise ValueError(
                f"max_overlap_fraction must be in [0, 1], got {self.max_overlap_fraction}"
            )

    def __len__(self) -> int:
        return len(self.boxes)

    def add(self, box: BoundingBox) -> None:
        """Add an excluded region."""
        self.boxes.append(box)

    def excluded_fraction(self, box: BoundingBox) -> float:
        """Fraction of ``box`` covered by the union of the excluded regions.

        Exact for arbitrary (overlapping) ROE boxes: each excluded box is
        clipped to ``box`` and the union area of the clipped rectangles is
        computed, so a pixel covered by several ROE boxes counts once.
        """
        if box.area == 0 or not self.boxes:
            return 0.0
        clipped = [box.intersection(roe_box) for roe_box in self.boxes]
        rectangles = [r for r in clipped if r is not None]
        if not rectangles:
            return 0.0
        covered = rectangle_union_area(rectangles)
        return min(1.0, covered / box.area)

    def is_excluded(self, box: BoundingBox) -> bool:
        """``True`` when the box is mostly inside the excluded regions."""
        return self.excluded_fraction(box) > self.max_overlap_fraction

    def filter_proposals(
        self, proposals: Sequence[RegionProposal]
    ) -> List[RegionProposal]:
        """Drop proposals that fall inside the excluded regions."""
        return [p for p in proposals if not self.is_excluded(p.box)]

    def mask(self, width: int, height: int) -> np.ndarray:
        """Binary mask of the excluded area (1 = excluded).

        Useful for masking the EBBI before region proposal, which is how a
        memory-constrained implementation would apply the ROE.
        """
        mask = np.zeros((height, width), dtype=np.uint8)
        for box in self.boxes:
            x1 = max(0, int(np.floor(box.x)))
            y1 = max(0, int(np.floor(box.y)))
            x2 = min(width, int(np.ceil(box.x2)))
            y2 = min(height, int(np.ceil(box.y2)))
            if x2 > x1 and y2 > y1:
                mask[y1:y2, x1:x2] = 1
        return mask

    def apply_to_frame(self, frame: np.ndarray) -> np.ndarray:
        """Return a copy of ``frame`` with excluded pixels zeroed."""
        height, width = frame.shape
        mask = self.mask(width, height)
        result = frame.copy()
        result[mask == 1] = 0
        return result

    @classmethod
    def from_tuples(
        cls, boxes: Iterable[Sequence[float]], max_overlap_fraction: float = 0.5
    ) -> "RegionOfExclusion":
        """Build an ROE from ``(x, y, width, height)`` tuples."""
        return cls(
            boxes=[BoundingBox(*box) for box in boxes],
            max_overlap_fraction=max_overlap_fraction,
        )
