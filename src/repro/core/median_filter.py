"""Binary median (majority) filtering for EBBI denoising.

Spurious sensor events appear in the EBBI as salt-and-pepper noise; for a
binary image a median filter reduces to a majority vote over the ``p x p``
patch: the output pixel is 1 when more than ``floor(p^2 / 2)`` of the patch
pixels are 1 (Section II-A).  The implementation below computes patch sums
with a separable box filter (via cumulative sums), so it is fast enough for
the laptop-scale benchmarks while remaining an exact majority filter.

On the steady-state pipeline path every intermediate — the zero-padded
copy, the integral image, the box sums and the output stack — can live in
a reusable :class:`MedianScratch`, so filtering a chunk of frames performs
no allocations at all after warm-up.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class MedianScratch:
    """Reusable work buffers for :func:`binary_median_filter_stack`.

    The stack filter needs a zero-padded copy of the input, an integral
    image one row/column larger, and an int32 box-sum array; on a
    steady-state pipeline those are the only per-chunk allocations left, so
    callers that filter chunk after chunk (``EbbiBuilder`` with buffer
    reuse) pass one scratch and the buffers are grown once and recycled.
    Buffers are grown on demand and never shrink.
    """

    def __init__(self) -> None:
        self._padded: Optional[np.ndarray] = None
        self._integral: Optional[np.ndarray] = None
        self._sums: Optional[np.ndarray] = None

    def buffers(
        self, num_frames: int, frame_shape: Tuple[int, int], half: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded, integral and box-sum buffers for one filter pass."""
        height, width = frame_shape
        padded_shape = (height + 2 * half, width + 2 * half)
        if (
            self._padded is None
            or self._padded.shape[0] < num_frames
            or self._padded.shape[1:] != padded_shape
        ):
            capacity = num_frames
            if (
                self._padded is not None
                and self._padded.shape[1:] == padded_shape
            ):
                capacity = max(num_frames, 2 * self._padded.shape[0])
            self._padded = np.zeros((capacity,) + padded_shape, dtype=np.uint8)
            self._integral = np.zeros(
                (capacity, padded_shape[0] + 1, padded_shape[1] + 1), dtype=np.int32
            )
            self._sums = np.zeros((capacity, height, width), dtype=np.int32)
        return (
            self._padded[:num_frames],
            self._integral[:num_frames],
            self._sums[:num_frames],
        )


def binary_median_filter(frame: np.ndarray, patch_size: int = 3) -> np.ndarray:
    """Majority-vote median filter for a binary frame.

    Parameters
    ----------
    frame:
        2-D array of 0/1 values.
    patch_size:
        Odd patch size ``p``; the paper uses 3.

    Returns
    -------
    numpy.ndarray
        uint8 frame where a pixel is 1 iff strictly more than
        ``floor(p^2 / 2)`` pixels of its ``p x p`` neighbourhood (zero padded
        at the borders) are 1.
    """
    if frame.ndim != 2:
        raise ValueError(f"frame must be 2-D, got shape {frame.shape}")
    return binary_median_filter_stack(frame[np.newaxis], patch_size)[0]


def _box_sum_stack(
    frames: np.ndarray, patch_size: int, scratch: Optional[MedianScratch] = None
) -> np.ndarray:
    """Per-frame patch sums for a ``(n, height, width)`` stack of frames.

    Zero-padded integral images with the cumulative sums and a 4-corner
    *slice* combination broadcast over the leading (frame) axis, so a whole
    chunk of EBBI frames is filtered in one pass and the cost is
    independent of the patch size.  With a :class:`MedianScratch` every
    work array is reused and the cumsums/subtractions run in place.
    """
    half = patch_size // 2
    num_frames, height, width = frames.shape
    if scratch is None:
        padded = np.pad(
            frames > 0,
            ((0, 0), (half, half), (half, half)),
            mode="constant",
            constant_values=False,
        )
        # int32 is ample: integral values are bounded by the padded frame area.
        integral = np.zeros(
            (num_frames, padded.shape[1] + 1, padded.shape[2] + 1), dtype=np.int32
        )
        sums_out = None
    else:
        padded, integral, sums_out = scratch.buffers(
            num_frames, (height, width), half
        )
        padded[:] = 0
        np.greater(frames, 0, out=padded[:, half : half + height, half : half + width])
        integral[:, 0, :] = 0
        integral[:, :, 0] = 0
    body = integral[:, 1:, 1:]
    np.cumsum(padded, axis=1, dtype=np.int32, out=body)
    np.cumsum(body, axis=2, out=body)
    # The four patch corners are contiguous ranges, so they are views —
    # no fancy-indexing gathers.
    bottom_right = integral[:, patch_size : patch_size + height, patch_size : patch_size + width]
    top_right = integral[:, 0:height, patch_size : patch_size + width]
    bottom_left = integral[:, patch_size : patch_size + height, 0:width]
    top_left = integral[:, 0:height, 0:width]
    if sums_out is None:
        sums = bottom_right - top_right
        np.subtract(sums, bottom_left, out=sums)
        np.add(sums, top_left, out=sums)
        return sums
    np.subtract(bottom_right, top_right, out=sums_out)
    np.subtract(sums_out, bottom_left, out=sums_out)
    np.add(sums_out, top_left, out=sums_out)
    return sums_out


def binary_median_filter_stack(
    frames: np.ndarray,
    patch_size: int = 3,
    out: Optional[np.ndarray] = None,
    scratch: Optional[MedianScratch] = None,
) -> np.ndarray:
    """Majority-vote median filter applied to a stack of binary frames.

    Vectorised equivalent of calling :func:`binary_median_filter` on each
    ``frames[i]``; used by the batched EBBI path so chunked multi-frame
    processing never loops over frames in Python.

    Parameters
    ----------
    frames:
        ``(n, height, width)`` array of 0/1 values.
    patch_size:
        Odd patch size ``p``; the paper uses 3.
    out:
        Optional uint8 output stack of the same shape; written in place and
        returned (the steady-state pipeline passes a reusable buffer).
    scratch:
        Optional :class:`MedianScratch` holding the reusable work arrays.

    Returns
    -------
    numpy.ndarray
        uint8 stack, filtered frame by frame (``out`` if it was given).
    """
    if frames.ndim != 3:
        raise ValueError(f"frames must be 3-D (n, height, width), got shape {frames.shape}")
    if patch_size < 1 or patch_size % 2 == 0:
        raise ValueError(f"patch_size must be a positive odd integer, got {patch_size}")
    if out is not None and (out.shape != frames.shape or out.dtype != np.uint8):
        raise ValueError(
            f"out must be a uint8 array of shape {frames.shape}, "
            f"got {out.dtype} {out.shape}"
        )
    if patch_size == 1:
        if out is None:
            return (frames > 0).astype(np.uint8)
        np.greater(frames, 0, out=out)
        return out
    if frames.shape[0] == 0:
        return frames.astype(np.uint8) if out is None else out
    sums = _box_sum_stack(frames, patch_size, scratch)
    majority = patch_size * patch_size // 2
    if out is None:
        return (sums > majority).astype(np.uint8)
    np.greater(sums, majority, out=out)
    return out


def count_salt_and_pepper(frame: np.ndarray, patch_size: int = 3) -> int:
    """Count isolated active pixels that a median filter would remove.

    A pixel counts as salt-and-pepper when it is active but the majority of
    its ``p x p`` neighbourhood is inactive.  Used in tests and in the noise
    calibration utilities.
    """
    binary = (frame > 0).astype(np.uint8)
    filtered = binary_median_filter(binary, patch_size)
    return int(np.sum((binary == 1) & (filtered == 0)))
