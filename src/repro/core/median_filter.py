"""Binary median (majority) filtering for EBBI denoising.

Spurious sensor events appear in the EBBI as salt-and-pepper noise; for a
binary image a median filter reduces to a majority vote over the ``p x p``
patch: the output pixel is 1 when more than ``floor(p^2 / 2)`` of the patch
pixels are 1 (Section II-A).  The implementation below computes patch sums
with a separable box filter (via cumulative sums), so it is fast enough for
the laptop-scale benchmarks while remaining an exact majority filter.
"""

from __future__ import annotations

import numpy as np


def _box_sum(frame: np.ndarray, patch_size: int) -> np.ndarray:
    """Sum of each ``patch_size x patch_size`` neighbourhood (zero padded).

    Uses an integral image so the cost is independent of the patch size.
    """
    half = patch_size // 2
    padded = np.pad(frame.astype(np.int32), half, mode="constant", constant_values=0)
    # Integral image with a leading row/column of zeros.
    integral = np.zeros(
        (padded.shape[0] + 1, padded.shape[1] + 1), dtype=np.int64
    )
    integral[1:, 1:] = padded.cumsum(axis=0).cumsum(axis=1)
    height, width = frame.shape
    top = np.arange(height)
    left = np.arange(width)
    # For output pixel (i, j) the patch covers padded rows [i, i + p) and
    # columns [j, j + p).
    sums = (
        integral[top[:, None] + patch_size, left[None, :] + patch_size]
        - integral[top[:, None], left[None, :] + patch_size]
        - integral[top[:, None] + patch_size, left[None, :]]
        + integral[top[:, None], left[None, :]]
    )
    return sums


def binary_median_filter(frame: np.ndarray, patch_size: int = 3) -> np.ndarray:
    """Majority-vote median filter for a binary frame.

    Parameters
    ----------
    frame:
        2-D array of 0/1 values.
    patch_size:
        Odd patch size ``p``; the paper uses 3.

    Returns
    -------
    numpy.ndarray
        uint8 frame where a pixel is 1 iff strictly more than
        ``floor(p^2 / 2)`` pixels of its ``p x p`` neighbourhood (zero padded
        at the borders) are 1.
    """
    if frame.ndim != 2:
        raise ValueError(f"frame must be 2-D, got shape {frame.shape}")
    if patch_size < 1 or patch_size % 2 == 0:
        raise ValueError(f"patch_size must be a positive odd integer, got {patch_size}")
    if patch_size == 1:
        return (frame > 0).astype(np.uint8)
    binary = (frame > 0).astype(np.uint8)
    sums = _box_sum(binary, patch_size)
    majority = patch_size * patch_size // 2
    return (sums > majority).astype(np.uint8)


def count_salt_and_pepper(frame: np.ndarray, patch_size: int = 3) -> int:
    """Count isolated active pixels that a median filter would remove.

    A pixel counts as salt-and-pepper when it is active but the majority of
    its ``p x p`` neighbourhood is inactive.  Used in tests and in the noise
    calibration utilities.
    """
    binary = (frame > 0).astype(np.uint8)
    filtered = binary_median_filter(binary, patch_size)
    return int(np.sum((binary == 1) & (filtered == 0)))
