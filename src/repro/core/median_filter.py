"""Binary median (majority) filtering for EBBI denoising.

Spurious sensor events appear in the EBBI as salt-and-pepper noise; for a
binary image a median filter reduces to a majority vote over the ``p x p``
patch: the output pixel is 1 when more than ``floor(p^2 / 2)`` of the patch
pixels are 1 (Section II-A).  The implementation below computes patch sums
with a separable box filter (via cumulative sums), so it is fast enough for
the laptop-scale benchmarks while remaining an exact majority filter.
"""

from __future__ import annotations

import numpy as np


def binary_median_filter(frame: np.ndarray, patch_size: int = 3) -> np.ndarray:
    """Majority-vote median filter for a binary frame.

    Parameters
    ----------
    frame:
        2-D array of 0/1 values.
    patch_size:
        Odd patch size ``p``; the paper uses 3.

    Returns
    -------
    numpy.ndarray
        uint8 frame where a pixel is 1 iff strictly more than
        ``floor(p^2 / 2)`` pixels of its ``p x p`` neighbourhood (zero padded
        at the borders) are 1.
    """
    if frame.ndim != 2:
        raise ValueError(f"frame must be 2-D, got shape {frame.shape}")
    return binary_median_filter_stack(frame[np.newaxis], patch_size)[0]


def _box_sum_stack(frames: np.ndarray, patch_size: int) -> np.ndarray:
    """Per-frame patch sums for a ``(n, height, width)`` stack of frames.

    Zero-padded integral images with the cumulative sums and the 4-corner
    gather broadcast over the leading (frame) axis, so a whole chunk of EBBI
    frames is filtered in one pass and the cost is independent of the patch
    size.
    """
    half = patch_size // 2
    padded = np.pad(
        frames, ((0, 0), (half, half), (half, half)), mode="constant", constant_values=0
    )
    # int32 is ample: integral values are bounded by the padded frame area.
    integral = np.zeros(
        (frames.shape[0], padded.shape[1] + 1, padded.shape[2] + 1), dtype=np.int32
    )
    integral[:, 1:, 1:] = padded.cumsum(axis=1, dtype=np.int32).cumsum(axis=2)
    height, width = frames.shape[1:]
    top = np.arange(height)
    left = np.arange(width)
    sums = (
        integral[:, top[:, None] + patch_size, left[None, :] + patch_size]
        - integral[:, top[:, None], left[None, :] + patch_size]
        - integral[:, top[:, None] + patch_size, left[None, :]]
        + integral[:, top[:, None], left[None, :]]
    )
    return sums


def binary_median_filter_stack(frames: np.ndarray, patch_size: int = 3) -> np.ndarray:
    """Majority-vote median filter applied to a stack of binary frames.

    Vectorised equivalent of calling :func:`binary_median_filter` on each
    ``frames[i]``; used by the batched EBBI path so chunked multi-frame
    processing never loops over frames in Python.

    Parameters
    ----------
    frames:
        ``(n, height, width)`` array of 0/1 values.
    patch_size:
        Odd patch size ``p``; the paper uses 3.

    Returns
    -------
    numpy.ndarray
        uint8 stack, filtered frame by frame.
    """
    if frames.ndim != 3:
        raise ValueError(f"frames must be 3-D (n, height, width), got shape {frames.shape}")
    if patch_size < 1 or patch_size % 2 == 0:
        raise ValueError(f"patch_size must be a positive odd integer, got {patch_size}")
    if patch_size == 1:
        return (frames > 0).astype(np.uint8)
    if frames.shape[0] == 0:
        return frames.astype(np.uint8)
    binary = (frames > 0).astype(np.uint8)
    sums = _box_sum_stack(binary, patch_size)
    majority = patch_size * patch_size // 2
    return (sums > majority).astype(np.uint8)


def count_salt_and_pepper(frame: np.ndarray, patch_size: int = 3) -> int:
    """Count isolated active pixels that a median filter would remove.

    A pixel counts as salt-and-pepper when it is active but the majority of
    its ``p x p`` neighbourhood is inactive.  Used in tests and in the noise
    calibration utilities.
    """
    binary = (frame > 0).astype(np.uint8)
    filtered = binary_median_filter(binary, patch_size)
    return int(np.sum((binary == 1) & (filtered == 0)))
