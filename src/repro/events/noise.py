"""Sensor noise models.

Neuromorphic sensors produce spurious "background activity" events even when
the scene is static (Section II-A of the paper, citing Padala et al. 2018).
These spurious events are what make naive event-driven interrupts unsuitable
for duty-cycled IoT nodes and what the median / NN filters must remove.  Two
noise models are provided:

* :class:`BackgroundActivityNoise` — spatially and temporally uniform noise
  events at a configurable rate per pixel, which appear as salt-and-pepper
  noise in the accumulated binary image.
* :class:`HotPixelNoise` — a small set of pixels that fire at a much higher
  rate, a common DVS artefact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.events.types import EVENT_DTYPE, make_packet


@dataclass
class BackgroundActivityNoise:
    """Uniform background-activity noise generator.

    Parameters
    ----------
    rate_hz_per_pixel:
        Mean number of noise events per pixel per second.  Typical DVS
        background activity is in the 0.1 - 5 Hz/pixel range depending on
        bias settings and temperature.
    on_fraction:
        Fraction of noise events with ON polarity.
    """

    rate_hz_per_pixel: float = 1.0
    on_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.rate_hz_per_pixel < 0:
            raise ValueError(
                f"rate_hz_per_pixel must be non-negative, got {self.rate_hz_per_pixel}"
            )
        if not 0.0 <= self.on_fraction <= 1.0:
            raise ValueError(f"on_fraction must be in [0, 1], got {self.on_fraction}")

    def expected_events(self, width: int, height: int, duration_us: int) -> float:
        """Expected number of noise events over the given window."""
        return self.rate_hz_per_pixel * width * height * duration_us * 1e-6

    def generate(
        self,
        width: int,
        height: int,
        t_start_us: int,
        t_end_us: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Generate noise events over ``[t_start_us, t_end_us)``.

        The number of events is Poisson distributed around the expected
        count; positions and timestamps are uniform.
        """
        duration = t_end_us - t_start_us
        if duration <= 0 or self.rate_hz_per_pixel == 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        expected = self.expected_events(width, height, duration)
        count = int(rng.poisson(expected))
        if count == 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        x = rng.integers(0, width, size=count)
        y = rng.integers(0, height, size=count)
        t = rng.integers(t_start_us, t_end_us, size=count)
        p = np.where(rng.random(count) < self.on_fraction, 1, -1)
        packet = make_packet(x, y, t, p)
        packet.sort(order="t")
        return packet


@dataclass
class HotPixelNoise:
    """A fixed set of hot pixels firing at an elevated rate.

    Parameters
    ----------
    num_hot_pixels:
        How many pixels are "hot".
    rate_hz:
        Firing rate of each hot pixel in events per second.
    seed:
        Seed used to pick which pixels are hot, so the hot-pixel map is
        stable across frames of the same recording.
    """

    num_hot_pixels: int = 10
    rate_hz: float = 100.0
    seed: int = 0

    _positions: Optional[np.ndarray] = None

    def positions(self, width: int, height: int) -> np.ndarray:
        """Return the fixed ``(num_hot_pixels, 2)`` array of hot pixel coords."""
        if self._positions is None or len(self._positions) != self.num_hot_pixels:
            rng = np.random.default_rng(self.seed)
            xs = rng.integers(0, width, size=self.num_hot_pixels)
            ys = rng.integers(0, height, size=self.num_hot_pixels)
            object.__setattr__(self, "_positions", np.column_stack([xs, ys]))
        return self._positions

    def generate(
        self,
        width: int,
        height: int,
        t_start_us: int,
        t_end_us: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Generate hot-pixel events over ``[t_start_us, t_end_us)``."""
        duration_s = (t_end_us - t_start_us) * 1e-6
        if duration_s <= 0 or self.num_hot_pixels == 0 or self.rate_hz == 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        positions = self.positions(width, height)
        per_pixel = rng.poisson(self.rate_hz * duration_s, size=self.num_hot_pixels)
        total = int(per_pixel.sum())
        if total == 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        x = np.repeat(positions[:, 0], per_pixel)
        y = np.repeat(positions[:, 1], per_pixel)
        t = rng.integers(t_start_us, t_end_us, size=total)
        p = np.where(rng.random(total) < 0.5, 1, -1)
        packet = make_packet(x, y, t, p)
        packet.sort(order="t")
        return packet
