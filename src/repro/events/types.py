"""Event data structures.

Events are stored in NumPy structured arrays with fields ``x``, ``y``, ``t``
and ``p``.  The array-of-events representation keeps per-event semantics
(needed by the NN-filter and EBMS baselines, which genuinely process events
one at a time) while allowing vectorised accumulation into binary frames for
the EBBIOT path.

Timestamps ``t`` are in microseconds, matching the DAVIS sensor resolution
quoted in the paper.  Polarity ``p`` is ``+1`` for ON events and ``-1`` for
OFF events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

#: Structured dtype of a single event: pixel coordinates, timestamp (us), polarity.
EVENT_DTYPE = np.dtype(
    [
        ("x", np.int16),
        ("y", np.int16),
        ("t", np.int64),
        ("p", np.int8),
    ]
)

#: Polarity value of an ON event (intensity increased past the threshold).
ON_POLARITY = 1
#: Polarity value of an OFF event (intensity decreased past the threshold).
OFF_POLARITY = -1


def make_packet(
    x: Sequence[int],
    y: Sequence[int],
    t: Sequence[int],
    p: Sequence[int],
) -> np.ndarray:
    """Build an event packet (structured array) from parallel field arrays.

    Parameters
    ----------
    x, y:
        Pixel coordinates.
    t:
        Timestamps in microseconds.
    p:
        Polarities, ``+1`` or ``-1``.

    Returns
    -------
    numpy.ndarray
        Structured array with dtype :data:`EVENT_DTYPE`.

    Raises
    ------
    ValueError
        If the field arrays have mismatched lengths or polarity values are
        not in ``{-1, +1}``.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    t = np.asarray(t)
    p = np.asarray(p)
    lengths = {len(x), len(y), len(t), len(p)}
    if len(lengths) != 1:
        raise ValueError(
            f"event field arrays must have equal length, got lengths "
            f"x={len(x)} y={len(y)} t={len(t)} p={len(p)}"
        )
    if len(p) and not np.all(np.isin(p, (ON_POLARITY, OFF_POLARITY))):
        raise ValueError("polarity values must be +1 (ON) or -1 (OFF)")
    packet = np.empty(len(x), dtype=EVENT_DTYPE)
    packet["x"] = x
    packet["y"] = y
    packet["t"] = t
    packet["p"] = p
    return packet


def empty_packet() -> np.ndarray:
    """Return an empty event packet."""
    return np.empty(0, dtype=EVENT_DTYPE)


def normalize_packet(packet: np.ndarray) -> np.ndarray:
    """Coerce a structured array to the canonical :data:`EVENT_DTYPE`.

    Arrays already in the canonical dtype are returned unchanged.  Arrays
    with the same four fields in a different order (or with compatible but
    wider field types, e.g. ``int64`` coordinates from a file reader) are
    copied field by field into a fresh canonical packet, so callers never
    have to care about field order.

    Raises
    ------
    TypeError
        If the array is not structured or its field names are not exactly
        ``{x, y, t, p}``.
    ValueError
        If a field's values do not survive the cast to the canonical field
        type (e.g. an ``x`` of 65546 would silently wrap to 10 in int16 and
        then pass the coordinate bounds check as a corrupt-but-valid event).
    """
    if packet.dtype == EVENT_DTYPE:
        return packet
    names = packet.dtype.names
    if names is None or set(names) != set(EVENT_DTYPE.names):
        raise TypeError(
            f"events must have fields {EVENT_DTYPE.names}, got dtype {packet.dtype}"
        )
    normalized = np.empty(len(packet), dtype=EVENT_DTYPE)
    for name in EVENT_DTYPE.names:
        normalized[name] = packet[name]
        if not np.array_equal(normalized[name], packet[name]):
            raise ValueError(
                f"event field {name!r} values do not fit {EVENT_DTYPE[name]}"
            )
    return normalized


def concatenate_packets(packets: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate packets and sort the result by timestamp (stable)."""
    packets = [p for p in packets if len(p)]
    if not packets:
        return empty_packet()
    merged = np.concatenate(packets)
    order = np.argsort(merged["t"], kind="stable")
    return merged[order]


def validate_packet(packet: np.ndarray, width: int, height: int) -> None:
    """Raise :class:`ValueError` if any event falls outside the sensor array.

    Parameters
    ----------
    packet:
        Structured event array.
    width, height:
        Sensor resolution ``A x B``.
    """
    if len(packet) == 0:
        return
    if packet["x"].min() < 0 or packet["x"].max() >= width:
        raise ValueError(
            f"event x coordinates outside [0, {width}): "
            f"[{packet['x'].min()}, {packet['x'].max()}]"
        )
    if packet["y"].min() < 0 or packet["y"].max() >= height:
        raise ValueError(
            f"event y coordinates outside [0, {height}): "
            f"[{packet['y'].min()}, {packet['y'].max()}]"
        )


def is_time_sorted(packet: np.ndarray) -> bool:
    """Return ``True`` when the packet timestamps are non-decreasing."""
    if len(packet) < 2:
        return True
    return bool(np.all(np.diff(packet["t"]) >= 0))


@dataclass(frozen=True)
class EventPacket:
    """Thin convenience wrapper pairing an event array with sensor geometry.

    The raw structured array is always accessible via :attr:`events`; most
    library code passes the bare array around, but the wrapper is handy at
    API boundaries where the sensor resolution must travel with the data.
    """

    events: np.ndarray
    width: int
    height: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", normalize_packet(self.events))
        validate_packet(self.events, self.width, self.height)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Tuple[int, int, int, int]]:
        for event in self.events:
            yield (int(event["x"]), int(event["y"]), int(event["t"]), int(event["p"]))

    @property
    def duration(self) -> int:
        """Time span covered by the packet in microseconds (0 if < 2 events)."""
        if len(self.events) < 2:
            return 0
        return int(self.events["t"].max() - self.events["t"].min())

    @property
    def event_rate(self) -> float:
        """Mean event rate in events per second (0.0 for short packets)."""
        duration = self.duration
        if duration == 0:
            return 0.0
        return len(self.events) / (duration * 1e-6)

    def time_slice(self, t_start: int, t_end: int) -> "EventPacket":
        """Return the sub-packet with timestamps in ``[t_start, t_end)``."""
        mask = (self.events["t"] >= t_start) & (self.events["t"] < t_end)
        return EventPacket(self.events[mask], self.width, self.height)

    def with_events(self, events: np.ndarray) -> "EventPacket":
        """Return a copy of this packet wrapping a different event array."""
        return EventPacket(events, self.width, self.height)
