"""Event streams and fixed-duration frame windows.

The EBBIOT processor is interrupt driven: it wakes up every ``tF`` (66 ms in
the paper) and reads out all events accumulated since the previous interrupt
(Fig. 2).  :func:`frame_windows` and :meth:`EventStream.iter_frames`
implement exactly that partitioning of an event stream into frame-duration
windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.events.types import (
    concatenate_packets,
    empty_packet,
    is_time_sorted,
    make_packet,
    normalize_packet,
    validate_packet,
)


def frame_boundaries(
    timestamps: np.ndarray,
    frame_duration_us: int,
    t_start: int,
    t_end: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Compute all fixed-duration window edges and event split points at once.

    One vectorised :func:`numpy.searchsorted` over the full edge array
    replaces the per-window pair of searches the per-frame loop needs, which
    is what makes long-recording framing cheap (see
    ``benchmarks/bench_runtime_throughput.py``).

    Parameters
    ----------
    timestamps:
        Sorted event timestamps in microseconds.
    frame_duration_us:
        Window length ``tF`` in microseconds.
    t_start, t_end:
        Stream bounds; windows cover ``[t_start, t_end)`` (the final window
        may extend past ``t_end``).

    Returns
    -------
    (edges, splits)
        ``edges`` holds the ``num_windows + 1`` window boundaries; window
        ``i`` spans ``[edges[i], edges[i + 1])`` and contains
        ``timestamps[splits[i]:splits[i + 1]]``.
    """
    if frame_duration_us <= 0:
        raise ValueError(f"frame_duration_us must be positive, got {frame_duration_us}")
    if t_end <= t_start:
        edges = np.asarray([t_start], dtype=np.int64)
        return edges, np.zeros(1, dtype=np.int64)
    num_windows = -(-(t_end - t_start) // frame_duration_us)
    edges = t_start + frame_duration_us * np.arange(num_windows + 1, dtype=np.int64)
    splits = np.searchsorted(timestamps, edges, side="left").astype(np.int64)
    return edges, splits


@dataclass(frozen=True)
class FrameIndex:
    """Precomputed frame-window partition of an event array.

    Produced by :meth:`EventStream.frame_index`; the batched EBBI path
    (:meth:`repro.core.ebbi.EbbiBuilder.build_batch`) and the runtime layer
    consume it directly instead of iterating windows one at a time.
    """

    events: np.ndarray
    edges: np.ndarray
    splits: np.ndarray

    @property
    def num_frames(self) -> int:
        """Number of frame windows in the partition."""
        return len(self.edges) - 1

    @property
    def starts(self) -> np.ndarray:
        """Window start times (length ``num_frames``)."""
        return self.edges[:-1]

    @property
    def ends(self) -> np.ndarray:
        """Window end times (length ``num_frames``)."""
        return self.edges[1:]

    @property
    def counts(self) -> np.ndarray:
        """Events per window (length ``num_frames``)."""
        return np.diff(self.splits)

    def frame_events(self, index: int) -> np.ndarray:
        """The events of window ``index`` (a view, not a copy)."""
        return self.events[self.splits[index] : self.splits[index + 1]]

    def __len__(self) -> int:
        return self.num_frames

    def __iter__(self) -> Iterator[Tuple[int, int, np.ndarray]]:
        for i in range(self.num_frames):
            yield int(self.edges[i]), int(self.edges[i + 1]), self.frame_events(i)


def frame_windows(
    events: np.ndarray,
    frame_duration_us: int,
    t_start: Optional[int] = None,
    t_end: Optional[int] = None,
) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Partition an event array into consecutive fixed-duration windows.

    Parameters
    ----------
    events:
        Time-sorted structured event array.
    frame_duration_us:
        Window length ``tF`` in microseconds.
    t_start, t_end:
        Optional explicit stream bounds.  Default to the first event
        timestamp and one window past the last event, so every event falls
        in exactly one window.

    Yields
    ------
    (window_start, window_end, window_events)
        Window bounds in microseconds and the events with
        ``window_start <= t < window_end``.  Windows with zero events are
        still yielded (with an empty array) so downstream framing stays in
        lockstep with wall-clock time.
    """
    if frame_duration_us <= 0:
        raise ValueError(f"frame_duration_us must be positive, got {frame_duration_us}")
    if len(events) == 0 and (t_start is None or t_end is None):
        return
    if t_start is None:
        t_start = int(events["t"][0])
    if t_end is None:
        t_end = int(events["t"][-1]) + 1
    if t_end <= t_start:
        return

    edges, splits = frame_boundaries(events["t"], frame_duration_us, t_start, t_end)
    for i in range(len(edges) - 1):
        yield int(edges[i]), int(edges[i + 1]), events[splits[i] : splits[i + 1]]


@dataclass
class EventStream:
    """A time-sorted stream of events from a single sensor.

    Parameters
    ----------
    events:
        Structured event array (dtype :data:`repro.events.types.EVENT_DTYPE`).
        Sorted by timestamp on construction if needed.
    width, height:
        Sensor resolution (``A x B`` in the paper; 240 x 180 for DAVIS).
    """

    events: np.ndarray = field(default_factory=empty_packet)
    width: int = 240
    height: int = 180

    def __post_init__(self) -> None:
        self.events = normalize_packet(self.events)
        validate_packet(self.events, self.width, self.height)
        if not is_time_sorted(self.events):
            order = np.argsort(self.events["t"], kind="stable")
            self.events = self.events[order]

    @classmethod
    def from_arrays(
        cls,
        x,
        y,
        t,
        p=None,
        width: int = 240,
        height: int = 180,
    ) -> "EventStream":
        """Build a stream from parallel coordinate/timestamp/polarity arrays.

        Parameters
        ----------
        x, y:
            Pixel coordinates.
        t:
            Timestamps in microseconds.
        p:
            Polarities (``+1`` / ``-1``); defaults to all-ON when omitted,
            which is fine for the polarity-blind EBBIOT path.
        width, height:
            Sensor resolution.
        """
        if p is None:
            p = np.ones(len(np.asarray(t)), dtype=np.int8)
        return cls(make_packet(x, y, t, p), width, height)

    # -- basic properties ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def resolution(self) -> Tuple[int, int]:
        """Sensor resolution as ``(width, height)``."""
        return (self.width, self.height)

    @property
    def t_start(self) -> int:
        """Timestamp of the first event (0 when empty)."""
        return int(self.events["t"][0]) if len(self.events) else 0

    @property
    def t_end(self) -> int:
        """Timestamp of the last event (0 when empty)."""
        return int(self.events["t"][-1]) if len(self.events) else 0

    @property
    def duration_us(self) -> int:
        """Stream duration in microseconds."""
        return self.t_end - self.t_start if len(self.events) else 0

    @property
    def duration_s(self) -> float:
        """Stream duration in seconds."""
        return self.duration_us * 1e-6

    @property
    def num_events(self) -> int:
        """Total number of events in the stream."""
        return len(self.events)

    @property
    def mean_event_rate(self) -> float:
        """Mean event rate in events/second (0.0 for degenerate streams)."""
        if self.duration_us == 0:
            return 0.0
        return self.num_events / self.duration_s

    # -- slicing and iteration -----------------------------------------------------

    def time_slice(self, t_start: int, t_end: int) -> "EventStream":
        """Sub-stream with ``t_start <= t < t_end``."""
        lo = np.searchsorted(self.events["t"], t_start, side="left")
        hi = np.searchsorted(self.events["t"], t_end, side="left")
        return EventStream(self.events[lo:hi].copy(), self.width, self.height)

    def iter_frames(
        self, frame_duration_us: int, align_to_zero: bool = False
    ) -> Iterator[Tuple[int, int, np.ndarray]]:
        """Iterate over fixed-duration frame windows (see :func:`frame_windows`).

        Parameters
        ----------
        frame_duration_us:
            The EBBIOT frame duration ``tF`` in microseconds.
        align_to_zero:
            When ``True`` windows start at ``t = 0`` instead of the first
            event timestamp, which keeps frame indices aligned with the
            simulator's ground-truth sampling grid.
        """
        t_start = 0 if align_to_zero else None
        yield from frame_windows(
            self.events, frame_duration_us, t_start=t_start, t_end=None
        )

    def frame_index(
        self, frame_duration_us: int, align_to_zero: bool = False
    ) -> FrameIndex:
        """Precompute the full frame-window partition of the stream.

        The returned :class:`FrameIndex` resolves every window boundary with
        a single vectorised ``searchsorted``, so batched consumers (the
        pipeline's chunked path, the runtime layer) never touch the
        per-window Python loop.  Yields the same windows as
        :meth:`iter_frames`.
        """
        if len(self.events) == 0:
            edges = np.zeros(1, dtype=np.int64)
            return FrameIndex(self.events, edges, np.zeros(1, dtype=np.int64))
        t_start = 0 if align_to_zero else self.t_start
        edges, splits = frame_boundaries(
            self.events["t"], frame_duration_us, t_start, self.t_end + 1
        )
        return FrameIndex(self.events, edges, splits)

    def num_frames(self, frame_duration_us: int, align_to_zero: bool = False) -> int:
        """Number of frame windows :meth:`iter_frames` would yield."""
        if len(self.events) == 0:
            return 0
        t0 = 0 if align_to_zero else self.t_start
        span = self.t_end + 1 - t0
        return int(np.ceil(span / frame_duration_us))

    # -- combination ---------------------------------------------------------------

    def merged_with(self, other: "EventStream") -> "EventStream":
        """Merge two streams from the same sensor into one sorted stream."""
        if other.resolution != self.resolution:
            raise ValueError(
                f"cannot merge streams with different resolutions "
                f"{self.resolution} and {other.resolution}"
            )
        merged = concatenate_packets([self.events, other.events])
        return EventStream(merged, self.width, self.height)

    def filtered(self, mask: np.ndarray) -> "EventStream":
        """Stream containing only events where ``mask`` is ``True``."""
        if len(mask) != len(self.events):
            raise ValueError(
                f"mask length {len(mask)} does not match event count {len(self.events)}"
            )
        return EventStream(self.events[mask].copy(), self.width, self.height)

    def split(self, num_parts: int) -> List["EventStream"]:
        """Split the stream into ``num_parts`` equal-duration sub-streams."""
        if num_parts <= 0:
            raise ValueError(f"num_parts must be positive, got {num_parts}")
        if len(self.events) == 0:
            return [EventStream(empty_packet(), self.width, self.height)] * num_parts
        edges = np.linspace(self.t_start, self.t_end + 1, num_parts + 1).astype(np.int64)
        return [
            self.time_slice(int(edges[i]), int(edges[i + 1])) for i in range(num_parts)
        ]


class EventBuffer:
    """Growable buffer for live event ingestion (the serving layer's spool).

    Batches arriving from a live sensor are appended as-is (possibly
    overlapping in time); :meth:`drain_until` later extracts the time-sorted
    prefix below a watermark.  Appends are O(1) — packets are only
    concatenated and sorted when a drain compacts the buffer — so per-batch
    ingestion cost is independent of how much history is buffered.

    Real sensors deliver packets that are already time-sorted and
    non-overlapping, so the buffer tracks whether its packets form one
    globally ordered run.  While they do, :meth:`drain_until` slices packets
    in place — no concatenation of the remainder, no ``argsort``, no copies —
    which is what keeps the live path at batch-replay throughput.  Any
    out-of-order packet drops the buffer back to the sort-on-drain path,
    whose stable sort yields byte-identical output for equal timestamps.

    The buffer deliberately does not validate coordinates; callers that need
    bounds checks (the protocol layer does) validate before appending.
    """

    def __init__(self) -> None:
        self._packets: List[np.ndarray] = []
        self._num_pending = 0
        self._max_seen_t: Optional[int] = None
        self._ordered = True

    def __len__(self) -> int:
        return self._num_pending

    @property
    def max_seen_t(self) -> Optional[int]:
        """Largest event timestamp ever appended (``None`` before any)."""
        return self._max_seen_t

    @property
    def is_ordered(self) -> bool:
        """Whether buffered packets form one globally time-sorted run."""
        return self._ordered

    def append(self, events: np.ndarray) -> None:
        """Buffer one batch of events (any order, canonical-izable dtype)."""
        events = normalize_packet(events)
        if len(events) == 0:
            return
        t = events["t"]
        if self._ordered:
            if not is_time_sorted(events):
                self._ordered = False
            elif self._max_seen_t is not None and int(t[0]) < self._max_seen_t:
                self._ordered = False
        batch_max = int(t[-1]) if self._ordered else int(t.max())
        if self._max_seen_t is None or batch_max > self._max_seen_t:
            self._max_seen_t = batch_max
        self._packets.append(events)
        self._num_pending += len(events)

    def drain_until(self, t_us: int) -> np.ndarray:
        """Remove and return all buffered events with ``t < t_us``, sorted.

        On the ordered fast path the drained prefix is sliced straight out of
        the buffered packets; otherwise the buffer is compacted into a single
        sorted packet first (so repeated drains do not re-sort old data).
        """
        if self._num_pending == 0:
            return empty_packet()
        if not self._ordered:
            merged = concatenate_packets(self._packets)
            cut = int(np.searchsorted(merged["t"], t_us, side="left"))
            drained = merged[:cut].copy()
            remainder = merged[cut:].copy()
            self._packets = [remainder] if len(remainder) else []
            self._num_pending = len(remainder)
            self._ordered = True
            return drained
        out: List[np.ndarray] = []
        consumed = len(self._packets)
        for i, packet in enumerate(self._packets):
            t = packet["t"]
            if int(t[-1]) < t_us:
                out.append(packet)
                continue
            cut = int(np.searchsorted(np.ascontiguousarray(t), t_us, side="left"))
            if cut:
                out.append(packet[:cut])
                self._packets[i] = packet[cut:]
            consumed = i
            break
        self._packets = self._packets[consumed:]
        if not out:
            return empty_packet()
        drained = out[0] if len(out) == 1 else np.concatenate(out)
        self._num_pending -= len(drained)
        return drained

    def restore(
        self,
        pending: np.ndarray,
        max_seen_t: Optional[int],
        ordered: bool = True,
    ) -> None:
        """Reset the buffer to a snapshotted state (see :meth:`pending_packet`).

        ``max_seen_t`` is restored explicitly because the watermark can sit
        past every pending event (e.g. after a drain), which a plain
        re-append could not reproduce.
        """
        self._packets = [normalize_packet(pending)] if len(pending) else []
        self._num_pending = len(pending)
        self._max_seen_t = max_seen_t
        self._ordered = ordered

    def pending_packet(self) -> np.ndarray:
        """Concatenate the buffered (undrained) events without sorting.

        Used by migration snapshots: restoring via a single :meth:`append`
        of this packet (with :attr:`is_ordered` carried alongside) rebuilds a
        buffer whose future drains are byte-identical to the original's.
        """
        if not self._packets:
            return empty_packet()
        if len(self._packets) == 1:
            return self._packets[0].copy()
        return np.concatenate(self._packets)

    def drain_all(self) -> np.ndarray:
        """Remove and return everything buffered, time-sorted."""
        if self._max_seen_t is None:
            return empty_packet()
        return self.drain_until(self._max_seen_t + 1)
