"""Saving and loading event streams and annotated recordings.

Five interchange formats are supported:

* **npz** — compressed NumPy archive; the native format of this library.
* **csv** — one event per line, ``x,y,t,p``; interoperable with text-based
  AER tooling.
* **aedat2** — jAER-style AEDAT 2.0 binary: ``#``-prefixed header lines
  followed by big-endian ``(address, timestamp)`` uint32 pairs with the
  DAVIS240 address map (the format the paper's recordings ship in).
* **txt** — jAER-style text: one ``t x y p`` line per event with ``p`` in
  ``{0, 1}``.
* **recording npz** — an event stream together with its ground-truth
  annotations and metadata (the equivalent of one row of Table I plus the
  manual annotations the paper's evaluation relies on).

:data:`EVENT_FORMATS` maps format names to their reader/writer pair, and
:func:`load_events` dispatches on a file's suffix — that registry is what
the recorded-dataset layer (:mod:`repro.datasets.recorded`) builds on.  The
``iter_events_*`` readers yield bounded chunks instead of one monolithic
array, so a long recording can be replayed (e.g. through the serving
client) without holding every event in memory at once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

import numpy as np

from repro.events.stream import EventStream
from repro.events.types import EVENT_DTYPE, empty_packet, make_packet

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

#: Default chunk size (events) of the streaming ``iter_events_*`` readers.
DEFAULT_CHUNK_EVENTS = 65_536

#: AEDAT 2.0 magic header line (jAER writes it with a CRLF terminator).
AEDAT2_MAGIC = "#!AER-DAT2.0"

# DAVIS240 address map (jAER convention): y in bits 22-30, x in bits 12-21,
# polarity in bit 11; bit 31 flags non-DVS (APS / IMU) events.
_AEDAT2_Y_SHIFT = 22
_AEDAT2_X_SHIFT = 12
_AEDAT2_POLARITY_SHIFT = 11
_AEDAT2_X_MAX = 1 << 10
_AEDAT2_Y_MAX = 1 << 9
_AEDAT2_APS_MASK = np.uint32(1 << 31)


def _npz_path(path: PathLike) -> Path:
    """The path NumPy actually writes: ``np.savez`` appends ``.npz``.

    Normalising the suffix at both ends makes every save→load round trip
    succeed whether or not the caller spelled the suffix out.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _existing_npz_path(path: PathLike) -> Path:
    """Resolve a load path as saved: prefer the exact path, else ``+ .npz``."""
    path = Path(path)
    if path.exists():
        return path
    normalized = _npz_path(path)
    if normalized != path and normalized.exists():
        return normalized
    return path  # let np.load raise the usual FileNotFoundError


def _load_archive(path: PathLike, required: List[str], kind: str) -> Dict[str, np.ndarray]:
    """Open an npz archive, validate it, and materialise the needed arrays.

    Raises
    ------
    ValueError
        Naming the file and what is wrong: missing keys, or a
        ``format_version`` this library does not understand.  Malformed
        archives must never surface as raw :class:`KeyError` — the dataset
        layer hits files written by other tools constantly.
    """
    path = _existing_npz_path(path)
    with np.load(path, allow_pickle=False) as archive:
        missing = sorted(set(required) - set(archive.files))
        if missing:
            raise ValueError(
                f"{path} is not a valid {kind} archive: missing keys {missing}"
            )
        if "format_version" in archive.files:
            version = int(archive["format_version"])
            if not 1 <= version <= _FORMAT_VERSION:
                raise ValueError(
                    f"{path}: unsupported {kind} format_version {version} "
                    f"(this library reads versions 1..{_FORMAT_VERSION})"
                )
        return {name: archive[name] for name in archive.files}


# -- npz ---------------------------------------------------------------------------------


def save_events_npz(path: PathLike, stream: EventStream) -> None:
    """Save an event stream to a compressed ``.npz`` archive.

    The suffix is normalised (``np.savez`` appends ``.npz`` regardless), so
    ``save_events_npz("a") ; load_events_npz("a")`` round-trips.
    """
    np.savez_compressed(
        _npz_path(path),
        x=stream.events["x"],
        y=stream.events["y"],
        t=stream.events["t"],
        p=stream.events["p"],
        width=np.int64(stream.width),
        height=np.int64(stream.height),
        format_version=np.int64(_FORMAT_VERSION),
    )


def load_events_npz(path: PathLike) -> EventStream:
    """Load an event stream saved by :func:`save_events_npz`."""
    data = _load_archive(
        path, ["x", "y", "t", "p", "width", "height"], kind="event"
    )
    events = make_packet(data["x"], data["y"], data["t"], data["p"])
    return EventStream(events, int(data["width"]), int(data["height"]))


# -- csv ---------------------------------------------------------------------------------


def save_events_csv(path: PathLike, stream: EventStream) -> None:
    """Save an event stream to a CSV file with header ``x,y,t,p``."""
    path = Path(path)
    header = f"# width={stream.width} height={stream.height}\nx,y,t,p"
    data = np.column_stack(
        [stream.events["x"], stream.events["y"], stream.events["t"], stream.events["p"]]
    )
    np.savetxt(path, data, fmt="%d", delimiter=",", header=header, comments="")


def _parse_resolution_comment(line: str) -> tuple:
    """``(width, height)`` from a ``# width=.. height=..`` comment.

    Each dimension parses independently — one corrupt value must not
    discard the other (a wrong ``None`` can silently become the DAVIS240
    default in the formats that carry no other resolution record).
    """
    parts = dict(
        token.split("=", 1) for token in line.lstrip("# ").split() if "=" in token
    )

    def parse(key: str) -> Optional[int]:
        try:
            return int(parts[key]) or None
        except (KeyError, ValueError):
            return None

    return parse("width"), parse("height")


def _scan_csv_header(path: Path) -> tuple:
    """``(num_header_lines, width, height)`` of a CSV event file.

    Header lines are ``#`` comments, blank lines, and at most one
    ``x,y,t,p`` column-name line; the count is whatever the file actually
    contains (hard-coding it silently dropped the first event of headerless
    files).  Scanning stops at the first data-or-garbage line so a
    malformed file fails loudly in ``loadtxt`` instead of being consumed
    as an ever-longer "header".
    """
    skip = 0
    width = height = None
    with open(path, newline="") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                skip += 1
                continue
            if stripped.startswith("#"):
                file_width, file_height = _parse_resolution_comment(stripped)
                if width is None:
                    width = file_width
                if height is None:
                    height = file_height
                skip += 1
                continue
            try:
                int(stripped.split(",", 1)[0])
            except ValueError:
                skip += 1  # the one allowed column-name header line
            break  # first data row (or malformed content for loadtxt to flag)
    return skip, width, height


def load_events_csv(
    path: PathLike, width: Optional[int] = None, height: Optional[int] = None
) -> EventStream:
    """Load an event stream from CSV written by :func:`save_events_csv`.

    The sensor resolution is read from the ``# width=.. height=..`` comment
    line when present; explicit ``width``/``height`` arguments override it.
    Files without the comment line and/or the ``x,y,t,p`` column header load
    correctly — the header length is detected, not assumed.
    """
    path = Path(path)
    skip, file_width, file_height = _scan_csv_header(path)
    width = width if width is not None else file_width
    height = height if height is not None else file_height
    if width is None or height is None:
        raise ValueError(
            f"{path} has no resolution header; pass width= and height= explicitly"
        )
    data = np.loadtxt(path, dtype=np.int64, delimiter=",", skiprows=skip, ndmin=2)
    if data.size == 0:
        events = np.empty(0, dtype=EVENT_DTYPE)
    else:
        events = make_packet(data[:, 0], data[:, 1], data[:, 2], data[:, 3])
    return EventStream(events, width, height)


# -- AEDAT 2.0 binary --------------------------------------------------------------------


def save_events_aedat2(path: PathLike, stream: EventStream) -> None:
    """Save an event stream as a jAER-style AEDAT 2.0 binary file.

    ``#``-prefixed CRLF header lines (magic, resolution comment) followed by
    big-endian ``(address, timestamp)`` uint32 pairs using the DAVIS240
    address map.  Raises :class:`ValueError` when the stream does not fit
    the address map (x >= 1024, y >= 512) or the signed int32 microsecond
    timestamp range jAER decodes.
    """
    path = Path(path)
    events = stream.events
    if stream.width > _AEDAT2_X_MAX or stream.height > _AEDAT2_Y_MAX:
        raise ValueError(
            f"resolution {stream.width}x{stream.height} does not fit the "
            f"AEDAT 2.0 DAVIS address map ({_AEDAT2_X_MAX}x{_AEDAT2_Y_MAX})"
        )
    if len(events) and (events["t"].min() < 0 or events["t"].max() >= 2**31):
        # jAER reads timestamps as *signed* int32 (with wrap events this
        # writer does not emit), so larger values would save "successfully"
        # but decode as garbage in the stated interop target.
        raise ValueError(
            f"timestamps [{events['t'].min()}, {events['t'].max()}] do not fit "
            "the AEDAT 2.0 signed int32 microsecond range; use the npz format "
            "for recordings longer than ~35 minutes of sensor uptime"
        )
    header = (
        f"{AEDAT2_MAGIC}\r\n"
        "# This is a raw AE data file - do not edit\r\n"
        "# Data format is int32 address, int32 timestamp (8 bytes total), "
        "big endian\r\n"
        f"# width={stream.width} height={stream.height}\r\n"
    )
    address = (
        (events["y"].astype(np.uint32) << _AEDAT2_Y_SHIFT)
        | (events["x"].astype(np.uint32) << _AEDAT2_X_SHIFT)
        | ((events["p"] == 1).astype(np.uint32) << _AEDAT2_POLARITY_SHIFT)
    )
    words = np.empty(2 * len(events), dtype=">u4")
    words[0::2] = address
    words[1::2] = events["t"].astype(np.uint32)
    with open(path, "wb") as handle:
        handle.write(header.encode("ascii"))
        handle.write(words.tobytes())


def _is_printable_header_line(line: bytes) -> bool:
    """True when ``line`` could be an ASCII header line, not binary payload.

    A payload word can legitimately start with ``0x23`` (``'#'``) — e.g. a
    DVS address whose ``y`` is 140–143 — so '#' alone must not decide;
    genuine jAER header lines are printable ASCII (plus tab/CR).
    """
    return all(0x20 <= byte <= 0x7E or byte in (0x09, 0x0D) for byte in line)


def _split_aedat2_header(raw: bytes, path: Path) -> tuple:
    """``(header_lines, payload)`` of an AEDAT 2.0 buffer."""
    lines = []
    offset = 0
    while offset < len(raw) and raw[offset : offset + 1] == b"#":
        end = raw.find(b"\n", offset)
        if end < 0 or not _is_printable_header_line(raw[offset:end]):
            break  # binary payload that merely starts with a '#' byte
        lines.append(raw[offset:end].decode("ascii").rstrip("\r"))
        offset = end + 1
    if not lines or not lines[0].startswith(AEDAT2_MAGIC):
        raise ValueError(
            f"{path} is not an AEDAT 2.0 file: missing {AEDAT2_MAGIC!r} header"
        )
    return lines, raw[offset:]


def load_events_aedat2(
    path: PathLike, width: Optional[int] = None, height: Optional[int] = None
) -> EventStream:
    """Load a jAER-style AEDAT 2.0 binary file.

    Non-DVS words (bit 31 set: APS frames, IMU samples) are skipped.  The
    resolution comes from the ``# width=.. height=..`` comment when present
    (jAER files without it default to the DAVIS240's 240x180); explicit
    arguments override it.
    """
    path = Path(path)
    raw = path.read_bytes()
    lines, payload = _split_aedat2_header(raw, path)
    file_width = file_height = None
    for line in lines:
        line_width, line_height = _parse_resolution_comment(line)
        if file_width is None:
            file_width = line_width
        if file_height is None:
            file_height = line_height
    width = width if width is not None else (file_width or 240)
    height = height if height is not None else (file_height or 180)
    if len(payload) % 8:
        raise ValueError(
            f"{path} is truncated: payload of {len(payload)} bytes is not a "
            "whole number of 8-byte (address, timestamp) pairs"
        )
    words = np.frombuffer(payload, dtype=">u4")
    address = words[0::2]
    timestamps = words[1::2].astype(np.int64)
    dvs = (address & _AEDAT2_APS_MASK) == 0
    address = address[dvs]
    x = (address >> _AEDAT2_X_SHIFT) & np.uint32(_AEDAT2_X_MAX - 1)
    y = (address >> _AEDAT2_Y_SHIFT) & np.uint32(_AEDAT2_Y_MAX - 1)
    polarity = np.where((address >> _AEDAT2_POLARITY_SHIFT) & np.uint32(1), 1, -1)
    events = make_packet(x, y, timestamps[dvs], polarity)
    return EventStream(events, width, height)


# -- jAER text ---------------------------------------------------------------------------


def save_events_txt(path: PathLike, stream: EventStream) -> None:
    """Save an event stream as jAER-style text: ``t x y p`` with p in {0, 1}."""
    path = Path(path)
    data = np.column_stack(
        [
            stream.events["t"],
            stream.events["x"],
            stream.events["y"],
            (stream.events["p"] == 1).astype(np.int64),
        ]
    )
    header = f"# width={stream.width} height={stream.height}\n# t x y p"
    np.savetxt(path, data, fmt="%d", header=header, comments="")


def load_events_txt(
    path: PathLike, width: Optional[int] = None, height: Optional[int] = None
) -> EventStream:
    """Load jAER-style text events (``t x y p`` per line, p in {0, 1}).

    Resolution resolves like :func:`load_events_aedat2`: explicit arguments,
    then the ``# width=.. height=..`` comment, then the DAVIS240 default.
    """
    path = Path(path)
    file_width = file_height = None
    with open(path, newline="") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if not stripped.startswith("#"):
                break  # first data row; loadtxt below skips '#' lines itself
            line_width, line_height = _parse_resolution_comment(stripped)
            if file_width is None:
                file_width = line_width
            if file_height is None:
                file_height = line_height
    width = width if width is not None else (file_width or 240)
    height = height if height is not None else (file_height or 180)
    data = np.loadtxt(path, dtype=np.int64, ndmin=2)
    if data.size == 0:
        return EventStream(empty_packet(), width, height)
    if data.shape[1] != 4:
        raise ValueError(
            f"{path}: expected 4 columns 't x y p', got {data.shape[1]}"
        )
    polarity = np.where(data[:, 3] > 0, 1, -1)
    events = make_packet(data[:, 1], data[:, 2], data[:, 0], polarity)
    return EventStream(events, width, height)


# -- streaming chunked readers -----------------------------------------------------------


def iter_events_npz(
    path: PathLike, chunk_events: int = DEFAULT_CHUNK_EVENTS
) -> Iterator[np.ndarray]:
    """Yield an npz event file as bounded packets of ``chunk_events`` events.

    npz archives decompress as whole arrays, so this bounds the packet size
    handed downstream (the serving client, the online framer), not the peak
    decode memory; for true line-at-a-time streaming use the csv format and
    :func:`iter_events_csv`.
    """
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    stream = load_events_npz(path)
    for start in range(0, len(stream.events), chunk_events):
        yield stream.events[start : start + chunk_events]


def iter_events_csv(
    path: PathLike, chunk_events: int = DEFAULT_CHUNK_EVENTS
) -> Iterator[np.ndarray]:
    """Stream a CSV event file as packets of up to ``chunk_events`` events.

    Reads the file incrementally — peak memory is one chunk, independent of
    the recording length.
    """
    if chunk_events <= 0:
        raise ValueError(f"chunk_events must be positive, got {chunk_events}")
    path = Path(path)
    skip, _, _ = _scan_csv_header(path)
    with open(path, newline="") as handle:
        for _ in range(skip):
            handle.readline()
        lines: List[str] = []
        for line in handle:
            if line.strip():
                lines.append(line)
            if len(lines) >= chunk_events:
                yield _csv_lines_to_packet(lines)
                lines = []
        if lines:
            yield _csv_lines_to_packet(lines)


def _csv_lines_to_packet(lines: List[str]) -> np.ndarray:
    data = np.loadtxt(lines, dtype=np.int64, delimiter=",", ndmin=2)
    return make_packet(data[:, 0], data[:, 1], data[:, 2], data[:, 3])


# -- format registry ---------------------------------------------------------------------


@dataclass(frozen=True)
class EventFormat:
    """One interchange format: its suffix and reader/writer pair."""

    name: str
    suffix: str
    save: Callable[[PathLike, EventStream], None]
    load: Callable[..., EventStream]


#: Registry of event interchange formats, keyed by format name.
EVENT_FORMATS: Dict[str, EventFormat] = {
    "npz": EventFormat("npz", ".npz", save_events_npz, load_events_npz),
    "csv": EventFormat("csv", ".csv", save_events_csv, load_events_csv),
    "aedat2": EventFormat("aedat2", ".aedat", save_events_aedat2, load_events_aedat2),
    "txt": EventFormat("txt", ".txt", save_events_txt, load_events_txt),
}

_SUFFIX_TO_FORMAT = {fmt.suffix: name for name, fmt in EVENT_FORMATS.items()}
_SUFFIX_TO_FORMAT[".dat"] = "aedat2"  # jAER's other customary suffix


def load_events(
    path: PathLike,
    format: Optional[str] = None,
    width: Optional[int] = None,
    height: Optional[int] = None,
) -> EventStream:
    """Load an event file, dispatching on ``format`` or the file suffix.

    Parameters
    ----------
    path:
        Event file in any registered format.
    format:
        Explicit format name (a key of :data:`EVENT_FORMATS`); when omitted
        the file suffix decides (``.npz``, ``.csv``, ``.aedat``/``.dat``,
        ``.txt``).
    width, height:
        Optional resolution override for the text-based formats (the npz
        format always carries its own).
    """
    path = Path(path)
    if format is None:
        format = _SUFFIX_TO_FORMAT.get(path.suffix.lower())
        if format is None:
            raise ValueError(
                f"cannot infer event format from suffix {path.suffix!r} of {path}; "
                f"pass format= (one of {sorted(EVENT_FORMATS)})"
            )
    if format not in EVENT_FORMATS:
        raise ValueError(
            f"unknown event format {format!r}; available: {sorted(EVENT_FORMATS)}"
        )
    loader = EVENT_FORMATS[format].load
    if format == "npz":
        return loader(path)
    return loader(path, width=width, height=height)


# -- annotated recordings ----------------------------------------------------------------


def save_recording(
    path: PathLike,
    stream: EventStream,
    annotations: Optional[Dict] = None,
    metadata: Optional[Dict] = None,
) -> None:
    """Save an event stream with annotations and metadata into one archive.

    Parameters
    ----------
    path:
        Destination ``.npz`` path (the suffix is appended when missing).
    stream:
        The event stream.
    annotations:
        Ground-truth annotations as produced by
        :meth:`repro.datasets.annotations.RecordingAnnotations.to_dict`.
    metadata:
        Free-form JSON-serialisable metadata (location name, lens, duration).
    """
    np.savez_compressed(
        _npz_path(path),
        x=stream.events["x"],
        y=stream.events["y"],
        t=stream.events["t"],
        p=stream.events["p"],
        width=np.int64(stream.width),
        height=np.int64(stream.height),
        annotations_json=np.array(json.dumps(annotations or {})),
        metadata_json=np.array(json.dumps(metadata or {})),
        format_version=np.int64(_FORMAT_VERSION),
    )


def load_recording(path: PathLike) -> Dict:
    """Load an archive written by :func:`save_recording`.

    Returns
    -------
    dict
        ``{"stream": EventStream, "annotations": dict, "metadata": dict}``.

    Raises
    ------
    ValueError
        When the archive is missing required keys or carries an unsupported
        ``format_version`` (named explicitly, never a raw ``KeyError``).
    """
    data = _load_archive(
        path,
        ["x", "y", "t", "p", "width", "height", "annotations_json", "metadata_json"],
        kind="recording",
    )
    events = make_packet(data["x"], data["y"], data["t"], data["p"])
    stream = EventStream(events, int(data["width"]), int(data["height"]))
    annotations = json.loads(str(data["annotations_json"]))
    metadata = json.loads(str(data["metadata_json"]))
    return {"stream": stream, "annotations": annotations, "metadata": metadata}
