"""Saving and loading event streams and annotated recordings.

Three interchange formats are supported:

* **npz** — compressed NumPy archive; the native format of this library.
* **csv** — one event per line, ``x,y,t,p``; interoperable with text-based
  AER tooling.
* **recording npz** — an event stream together with its ground-truth
  annotations and metadata (the equivalent of one row of Table I plus the
  manual annotations the paper's evaluation relies on).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.events.stream import EventStream
from repro.events.types import EVENT_DTYPE, make_packet

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_events_npz(path: PathLike, stream: EventStream) -> None:
    """Save an event stream to a compressed ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        x=stream.events["x"],
        y=stream.events["y"],
        t=stream.events["t"],
        p=stream.events["p"],
        width=np.int64(stream.width),
        height=np.int64(stream.height),
        format_version=np.int64(_FORMAT_VERSION),
    )


def load_events_npz(path: PathLike) -> EventStream:
    """Load an event stream saved by :func:`save_events_npz`."""
    path = Path(path)
    with np.load(path) as archive:
        required = {"x", "y", "t", "p", "width", "height"}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"{path} is not an event archive; missing keys {sorted(missing)}")
        events = make_packet(archive["x"], archive["y"], archive["t"], archive["p"])
        return EventStream(events, int(archive["width"]), int(archive["height"]))


def save_events_csv(path: PathLike, stream: EventStream) -> None:
    """Save an event stream to a CSV file with header ``x,y,t,p``."""
    path = Path(path)
    header = f"# width={stream.width} height={stream.height}\nx,y,t,p"
    data = np.column_stack(
        [stream.events["x"], stream.events["y"], stream.events["t"], stream.events["p"]]
    )
    np.savetxt(path, data, fmt="%d", delimiter=",", header=header, comments="")


def load_events_csv(
    path: PathLike, width: Optional[int] = None, height: Optional[int] = None
) -> EventStream:
    """Load an event stream from CSV written by :func:`save_events_csv`.

    The sensor resolution is read from the ``# width=.. height=..`` comment
    line when present; explicit ``width``/``height`` arguments override it.
    """
    path = Path(path)
    file_width, file_height = None, None
    with open(path) as handle:
        first_line = handle.readline().strip()
    if first_line.startswith("#"):
        parts = dict(
            token.split("=") for token in first_line.lstrip("# ").split() if "=" in token
        )
        file_width = int(parts.get("width", 0)) or None
        file_height = int(parts.get("height", 0)) or None
    width = width if width is not None else file_width
    height = height if height is not None else file_height
    if width is None or height is None:
        raise ValueError(
            f"{path} has no resolution header; pass width= and height= explicitly"
        )
    data = np.loadtxt(path, dtype=np.int64, delimiter=",", skiprows=2, ndmin=2)
    if data.size == 0:
        events = np.empty(0, dtype=EVENT_DTYPE)
    else:
        events = make_packet(data[:, 0], data[:, 1], data[:, 2], data[:, 3])
    return EventStream(events, width, height)


def save_recording(
    path: PathLike,
    stream: EventStream,
    annotations: Optional[Dict] = None,
    metadata: Optional[Dict] = None,
) -> None:
    """Save an event stream with annotations and metadata into one archive.

    Parameters
    ----------
    path:
        Destination ``.npz`` path.
    stream:
        The event stream.
    annotations:
        Ground-truth annotations as produced by
        :meth:`repro.datasets.annotations.RecordingAnnotations.to_dict`.
    metadata:
        Free-form JSON-serialisable metadata (location name, lens, duration).
    """
    path = Path(path)
    np.savez_compressed(
        path,
        x=stream.events["x"],
        y=stream.events["y"],
        t=stream.events["t"],
        p=stream.events["p"],
        width=np.int64(stream.width),
        height=np.int64(stream.height),
        annotations_json=np.array(json.dumps(annotations or {})),
        metadata_json=np.array(json.dumps(metadata or {})),
        format_version=np.int64(_FORMAT_VERSION),
    )


def load_recording(path: PathLike) -> Dict:
    """Load an archive written by :func:`save_recording`.

    Returns
    -------
    dict
        ``{"stream": EventStream, "annotations": dict, "metadata": dict}``.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        events = make_packet(archive["x"], archive["y"], archive["t"], archive["p"])
        stream = EventStream(events, int(archive["width"]), int(archive["height"]))
        annotations = json.loads(str(archive["annotations_json"]))
        metadata = json.loads(str(archive["metadata_json"]))
    return {"stream": stream, "annotations": annotations, "metadata": metadata}
