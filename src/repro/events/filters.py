"""Event-level noise filters.

These are the *event-driven* noise filters used by the fully event-based
baseline pipeline (Section II-A of the paper):

* :class:`NearestNeighbourFilter` (NN-filt) — keeps an event only if another
  event occurred recently in its ``p x p`` spatial neighbourhood.  It needs a
  per-pixel timestamp memory of ``Bt`` bits, which is exactly the memory cost
  the paper's Eq. (2) charges against the event-driven approach.
* :class:`RefractoryFilter` — suppresses events from a pixel that fired less
  than a refractory period ago; a cheap companion filter commonly used with
  DVS streams.

Both filters process events strictly in time order, one at a time, mirroring
how they would run on an embedded event-driven processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class NearestNeighbourFilter:
    """Nearest-neighbour temporal support filter (NN-filt).

    An event at pixel ``(x, y)`` and time ``t`` is kept if any pixel in its
    ``p x p`` neighbourhood (excluding itself) has fired within
    ``support_time_us`` before ``t``.  Every incoming event writes its
    timestamp to the per-pixel memory regardless of whether it is kept.

    Parameters
    ----------
    width, height:
        Sensor resolution.
    neighbourhood:
        Spatial support size ``p`` (the paper uses ``p = 3``).
    support_time_us:
        Maximum age of a neighbouring event for it to count as support.
    """

    width: int
    height: int
    neighbourhood: int = 3
    support_time_us: int = 66_000

    _last_timestamp: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.neighbourhood < 1 or self.neighbourhood % 2 == 0:
            raise ValueError(
                f"neighbourhood must be a positive odd integer, got {self.neighbourhood}"
            )
        if self.support_time_us <= 0:
            raise ValueError(
                f"support_time_us must be positive, got {self.support_time_us}"
            )
        self.reset()

    def reset(self) -> None:
        """Clear the per-pixel timestamp memory."""
        # -1 marks "never fired"; stored as int64 microseconds.
        self._last_timestamp = np.full((self.height, self.width), -1, dtype=np.int64)

    @property
    def memory_bits(self) -> int:
        """Size of the timestamp memory in bits, assuming ``Bt``-bit stamps.

        The paper's Eq. (2) charges ``Bt * A * B`` bits with ``Bt = 16``.
        """
        bt = 16
        return bt * self.width * self.height

    def process(self, events: np.ndarray) -> np.ndarray:
        """Filter a time-sorted packet; return the boolean keep-mask.

        The filter is stateful: calling :meth:`process` on consecutive
        packets of one stream continues from the previous packet's state.
        """
        keep = np.zeros(len(events), dtype=bool)
        half = self.neighbourhood // 2
        stamps = self._last_timestamp
        for index in range(len(events)):
            x = int(events["x"][index])
            y = int(events["y"][index])
            t = int(events["t"][index])
            x_lo, x_hi = max(0, x - half), min(self.width, x + half + 1)
            y_lo, y_hi = max(0, y - half), min(self.height, y + half + 1)
            patch = stamps[y_lo:y_hi, x_lo:x_hi]
            own = stamps[y, x]
            # Temporarily exclude the pixel's own previous timestamp so an
            # isolated pixel firing repeatedly does not support itself.
            stamps[y, x] = -1
            recent = patch >= (t - self.support_time_us)
            supported = bool(np.any(recent & (patch >= 0)))
            stamps[y, x] = own
            keep[index] = supported
            stamps[y, x] = t
        return keep

    def filter(self, events: np.ndarray) -> np.ndarray:
        """Return only the events that pass the filter."""
        return events[self.process(events)]

    def state_snapshot(self) -> np.ndarray:
        """Copy of the per-pixel timestamp memory (for checkpoint/restore)."""
        return self._last_timestamp.copy()

    def restore_state(self, snapshot: np.ndarray) -> None:
        """Reinstate a memory captured by :meth:`state_snapshot`."""
        if snapshot.shape != (self.height, self.width):
            raise ValueError(
                f"snapshot shape {snapshot.shape} does not match the filter's "
                f"{(self.height, self.width)}"
            )
        self._last_timestamp = np.array(snapshot, dtype=np.int64, copy=True)


@dataclass
class RefractoryFilter:
    """Per-pixel refractory-period filter.

    Drops an event if the same pixel fired less than ``refractory_us``
    microseconds earlier.  Kept events update the pixel's last-fire time.
    """

    width: int
    height: int
    refractory_us: int = 1_000

    _last_timestamp: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.refractory_us <= 0:
            raise ValueError(f"refractory_us must be positive, got {self.refractory_us}")
        self.reset()

    def reset(self) -> None:
        """Clear the per-pixel last-fire memory."""
        self._last_timestamp = np.full(
            (self.height, self.width), -(10**15), dtype=np.int64
        )

    def process(self, events: np.ndarray) -> np.ndarray:
        """Return the boolean keep-mask for a time-sorted packet."""
        keep = np.zeros(len(events), dtype=bool)
        stamps = self._last_timestamp
        for index in range(len(events)):
            x = int(events["x"][index])
            y = int(events["y"][index])
            t = int(events["t"][index])
            if t - stamps[y, x] >= self.refractory_us:
                keep[index] = True
                stamps[y, x] = t
        return keep

    def filter(self, events: np.ndarray) -> np.ndarray:
        """Return only the events that pass the filter."""
        return events[self.process(events)]


def estimate_noise_rate(
    events: np.ndarray,
    width: int,
    height: int,
    keep_mask: Optional[np.ndarray] = None,
) -> float:
    """Estimate the background noise rate (Hz/pixel) from a filtered stream.

    When ``keep_mask`` is given, the rejected events are treated as noise;
    otherwise all events are counted.  Useful for calibrating the simulator
    against a recording.
    """
    if len(events) == 0:
        return 0.0
    duration_s = (int(events["t"][-1]) - int(events["t"][0])) * 1e-6
    if duration_s <= 0:
        return 0.0
    if keep_mask is not None:
        noise_count = int((~keep_mask).sum())
    else:
        noise_count = len(events)
    return noise_count / (duration_s * width * height)
