"""Event-level noise filters.

These are the *event-driven* noise filters used by the fully event-based
baseline pipeline (Section II-A of the paper):

* :class:`NearestNeighbourFilter` (NN-filt) — keeps an event only if another
  event occurred recently in its ``p x p`` spatial neighbourhood.  It needs a
  per-pixel timestamp memory of ``Bt`` bits, which is exactly the memory cost
  the paper's Eq. (2) charges against the event-driven approach.
* :class:`RefractoryFilter` — suppresses events from a pixel that fired less
  than a refractory period ago; a cheap companion filter commonly used with
  DVS streams.

Semantically both filters process events strictly in time order, one at a
time, mirroring how they would run on an embedded event-driven processor.
The ``process_scalar`` methods *are* that reference implementation.  The
default ``process`` path reaches the same result in whole-packet vectorized
passes: the packet is partitioned into maximal sub-chunks in which no pixel
repeats (:func:`distinct_pixel_spans`), so each sub-chunk's per-pixel
timestamp reads/writes have no intra-chunk write conflicts and the
sequential update collapses to NumPy gathers plus one scatter per chunk.
The two paths are bit-identical — keep-masks and the per-pixel timestamp
memory agree exactly — which ``tests/test_event_path_parity.py`` asserts on
adversarial packets.  ``REPRO_FORCE_SCALAR=1`` (or ``vectorized=False``)
forces the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.fastpath import scalar_forced

#: Sub-chunk size cap for the vectorized filter passes.  Bounds the
#: ``chunk x neighbourhood`` gather scratch (8192 x 8 int64 ~ 0.5 MB per
#: array) without measurably limiting the amount of work per NumPy call.
MAX_FILTER_CHUNK = 8192

#: Packets shorter than this skip the vectorized machinery: the fixed cost
#: of the chunk partition exceeds the scalar loop for a handful of events.
MIN_VECTOR_EVENTS = 16

#: Spans shorter than this are swept with the in-place scalar kernel instead
#: of paying ~two dozen small-array NumPy calls.  Same-pixel bursts produce
#: runs of one-event spans; coalescing them into one scalar sweep keeps the
#: fast path fast on pathological packets (hot pixels, stuck pixels).
MIN_SPAN_VECTOR = 48


def previous_occurrence(pixel_ids: np.ndarray) -> np.ndarray:
    """For each event, the index of the previous event at the same pixel.

    Returns an ``int64`` array where entry ``i`` is the largest ``j < i``
    with ``pixel_ids[j] == pixel_ids[i]``, or ``-1`` when the pixel has not
    appeared before in the packet.  One stable argsort groups equal pixels
    while preserving arrival order, so the whole map costs ``O(n log n)``
    with no Python-level loop.
    """
    n = len(pixel_ids)
    prev = np.full(n, -1, dtype=np.int64)
    if n < 2:
        return prev
    order = np.argsort(pixel_ids, kind="stable")
    sorted_ids = pixel_ids[order]
    same_as_predecessor = sorted_ids[1:] == sorted_ids[:-1]
    prev[order[1:][same_as_predecessor]] = order[:-1][same_as_predecessor]
    return prev


def distinct_pixel_spans(
    pixel_ids: np.ndarray, max_chunk: int = MAX_FILTER_CHUNK
) -> Iterator[Tuple[int, int]]:
    """Partition a packet into maximal spans with no repeated pixel.

    Yields ``(start, stop)`` half-open index ranges covering the packet in
    order.  Within each span every pixel id is unique, so a span's per-pixel
    state updates commute and can be applied with one vectorized scatter.
    A same-pixel burst degenerates to one-event spans — correct, just not
    fast — and ``max_chunk`` caps the span length to bound scratch memory.

    The scan visits only the packet's *repeat* events (events whose pixel
    already fired earlier in the packet), so the whole partition costs
    ``O(n log n)`` for the argsort plus ``O(repeats + spans)``: a repeat
    whose previous occurrence predates the current span start can never end
    this or any later span (span starts only grow), so each repeat is
    examined once.
    """
    n = len(pixel_ids)
    prev = previous_occurrence(pixel_ids)
    repeat_indices = np.nonzero(prev >= 0)[0]
    repeats = repeat_indices.tolist()
    repeat_prev = prev[repeat_indices].tolist()
    num_repeats = len(repeats)
    start = 0
    cursor = 0
    while start < n:
        cap = min(start + max_chunk, n)
        while cursor < num_repeats and (
            repeats[cursor] <= start or repeat_prev[cursor] < start
        ):
            cursor += 1
        if cursor < num_repeats and repeats[cursor] < cap:
            stop = repeats[cursor]
        else:
            stop = cap
        yield start, stop
        start = stop


@dataclass
class NearestNeighbourFilter:
    """Nearest-neighbour temporal support filter (NN-filt).

    An event at pixel ``(x, y)`` and time ``t`` is kept if any pixel in its
    ``p x p`` neighbourhood (excluding itself) has fired within
    ``support_time_us`` before ``t``.  Every incoming event writes its
    timestamp to the per-pixel memory regardless of whether it is kept.

    Parameters
    ----------
    width, height:
        Sensor resolution.
    neighbourhood:
        Spatial support size ``p`` (the paper uses ``p = 3``).
    support_time_us:
        Maximum age of a neighbouring event for it to count as support.
    vectorized:
        Use the chunked fast path (default).  ``False`` pins this instance
        to the scalar reference; the ``REPRO_FORCE_SCALAR`` environment
        variable overrides all instances at once.
    """

    width: int
    height: int
    neighbourhood: int = 3
    support_time_us: int = 66_000
    vectorized: bool = True

    _last_timestamp: np.ndarray = field(init=False, repr=False)
    _chunk_scratch: Optional[np.ndarray] = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.neighbourhood < 1 or self.neighbourhood % 2 == 0:
            raise ValueError(
                f"neighbourhood must be a positive odd integer, got {self.neighbourhood}"
            )
        if self.support_time_us <= 0:
            raise ValueError(
                f"support_time_us must be positive, got {self.support_time_us}"
            )
        half = self.neighbourhood // 2
        offsets = [
            (dy, dx)
            for dy in range(-half, half + 1)
            for dx in range(-half, half + 1)
            if not (dy == 0 and dx == 0)
        ]
        self._offsets = offsets
        self._offset_dy = np.array([o[0] for o in offsets], dtype=np.int64)
        self._offset_dx = np.array([o[1] for o in offsets], dtype=np.int64)
        self.reset()

    def reset(self) -> None:
        """Clear the per-pixel timestamp memory."""
        # -1 marks "never fired"; stored as int64 microseconds.
        self._last_timestamp = np.full((self.height, self.width), -1, dtype=np.int64)

    @property
    def memory_bits(self) -> int:
        """Size of the timestamp memory in bits, assuming ``Bt``-bit stamps.

        The paper's Eq. (2) charges ``Bt * A * B`` bits with ``Bt = 16``.
        """
        bt = 16
        return bt * self.width * self.height

    def process(self, events: np.ndarray) -> np.ndarray:
        """Filter a time-sorted packet; return the boolean keep-mask.

        The filter is stateful: calling :meth:`process` on consecutive
        packets of one stream continues from the previous packet's state.
        Dispatches to the vectorized fast path unless the scalar reference
        is forced; both produce bit-identical keep-masks and memory state.
        """
        if (
            not self.vectorized
            or len(events) < MIN_VECTOR_EVENTS
            or scalar_forced()
        ):
            return self.process_scalar(events)
        return self._process_vectorized(events)

    def process_scalar(self, events: np.ndarray) -> np.ndarray:
        """The sequential per-event reference implementation."""
        keep = np.zeros(len(events), dtype=bool)
        half = self.neighbourhood // 2
        stamps = self._last_timestamp
        for index in range(len(events)):
            x = int(events["x"][index])
            y = int(events["y"][index])
            t = int(events["t"][index])
            x_lo, x_hi = max(0, x - half), min(self.width, x + half + 1)
            y_lo, y_hi = max(0, y - half), min(self.height, y + half + 1)
            patch = stamps[y_lo:y_hi, x_lo:x_hi]
            own = stamps[y, x]
            # Temporarily exclude the pixel's own previous timestamp so an
            # isolated pixel firing repeatedly does not support itself.
            stamps[y, x] = -1
            recent = patch >= (t - self.support_time_us)
            supported = bool(np.any(recent & (patch >= 0)))
            stamps[y, x] = own
            keep[index] = supported
            stamps[y, x] = t
        return keep

    def _process_vectorized(self, events: np.ndarray) -> np.ndarray:
        """Chunked fast path: gather-based support tests, scatter updates.

        For each distinct-pixel sub-chunk the support test splits in two:

        * *prior* support from the per-pixel memory as of chunk start —
          a ``chunk x (p^2 - 1)`` gather of neighbour timestamps (the own
          pixel is never among the offsets, which is exactly the scalar
          path's self-support exclusion);
        * *intra-chunk* support from earlier events inside the same chunk —
          chunk indices are scattered into a persistent index frame (legal
          because no pixel repeats), gathered back per neighbour, and an
          index comparison enforces the "strictly earlier event" order that
          timestamps alone cannot (ties are common).

        Timestamps only grow, so an event supported via the stale prior
        value of a pixel overwritten inside the chunk is also supported via
        the overwriting (newer) event — the OR of the two tests equals the
        sequential result exactly.

        Runs of spans shorter than :data:`MIN_SPAN_VECTOR` (same-pixel
        bursts) are coalesced and swept with the scalar kernel in place —
        identical semantics, no small-array NumPy overhead.

        When the whole packet spans at most ``support_time_us`` — always
        true for the pipeline's 66 ms window packets with the paper's 66 ms
        support time — every intra-packet predecessor is automatically
        recent enough, and the packet collapses to a single vectorized pass
        with no span partition at all (:meth:`_process_whole_packet`).
        """
        n = len(events)
        keep = np.zeros(n, dtype=bool)
        xs = events["x"].astype(np.int64)
        ys = events["y"].astype(np.int64)
        ts = events["t"].astype(np.int64)
        pix = ys * self.width + xs
        stamps_flat = self._last_timestamp.reshape(-1)
        if self._chunk_scratch is None:
            self._chunk_scratch = np.full(self.height * self.width, -1, dtype=np.int64)
        index_frame = self._chunk_scratch
        num_offsets = len(self._offset_dx)
        support = self.support_time_us
        if num_offsets > 0 and int(ts[-1]) - int(ts[0]) <= support:
            self._process_whole_packet(xs, ys, ts, pix, keep)
            return keep
        # Materialized lazily: only the short-span scalar-sweep fallback
        # reads the Python lists, and a burst-free packet never needs them.
        coordinate_lists = None

        def sweep(lo: int, hi: int) -> None:
            nonlocal coordinate_lists
            if coordinate_lists is None:
                coordinate_lists = (xs.tolist(), ys.tolist(), ts.tolist())
            self._scalar_sweep(*coordinate_lists, lo, hi, keep)

        pending_lo = -1
        pending_hi = -1
        for start, stop in distinct_pixel_spans(pix):
            if stop - start < MIN_SPAN_VECTOR or num_offsets == 0:
                if pending_lo < 0:
                    pending_lo = start
                pending_hi = stop
                continue
            if pending_lo >= 0:
                sweep(pending_lo, pending_hi)
                pending_lo = -1
            cxs = xs[start:stop]
            cys = ys[start:stop]
            cts = ts[start:stop]
            cpix = pix[start:stop]
            nx = cxs[:, None] + self._offset_dx[None, :]
            ny = cys[:, None] + self._offset_dy[None, :]
            in_bounds = (nx >= 0) & (nx < self.width) & (ny >= 0) & (ny < self.height)
            flat = np.where(in_bounds, ny * self.width + nx, 0)
            earliest_support = cts[:, None] - support
            prior = stamps_flat[flat]
            supported = in_bounds & (prior >= 0) & (prior >= earliest_support)
            # Intra-chunk: neighbour fired earlier in this same chunk.
            index_frame[cpix] = np.arange(stop - start, dtype=np.int64)
            neighbour_index = index_frame[flat]
            has_neighbour = in_bounds & (neighbour_index >= 0)
            neighbour_t = cts[np.where(neighbour_index >= 0, neighbour_index, 0)]
            supported |= (
                has_neighbour
                & (neighbour_index < np.arange(stop - start, dtype=np.int64)[:, None])
                & (neighbour_t >= earliest_support)
            )
            keep[start:stop] = supported.any(axis=1)
            stamps_flat[cpix] = cts
            index_frame[cpix] = -1
        if pending_lo >= 0:
            sweep(pending_lo, pending_hi)
        return keep

    def _process_whole_packet(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        ts: np.ndarray,
        pix: np.ndarray,
        keep: np.ndarray,
    ) -> None:
        """One-pass kernel for packets whose time span fits ``support_time_us``.

        With every pair of packet events at most ``support_time_us`` apart,
        an intra-packet predecessor at a neighbouring pixel is *always*
        recent enough — the time test is vacuously true — so support from
        inside the packet reduces to "some earlier event hit a neighbour
        pixel", i.e. a first-occurrence index comparison.  No distinct-pixel
        partition is needed: repeats are fine because *any* earlier
        occurrence supports, the first-occurrence scatter is made
        deterministic by writing indices in reverse order (last write = the
        smallest index), and the final timestamp scatter is in forward
        order (last write = the latest time, the correct end state).

        Support from events before the packet still carries the explicit
        ``>= t - support_time_us`` test against the per-pixel memory; a
        stale read of a pixel overwritten inside the packet is covered by
        the intra test exactly as in the span-partition path.

        Processes in ``MAX_FILTER_CHUNK`` slices only to bound the gather
        scratch; each slice inherits the same reasoning (its span is no
        longer than the packet's).
        """
        n = len(pix)
        stamps_flat = self._last_timestamp.reshape(-1)
        index_frame = self._chunk_scratch
        support = self.support_time_us
        for start in range(0, n, MAX_FILTER_CHUNK):
            stop = min(start + MAX_FILTER_CHUNK, n)
            cpix = pix[start:stop]
            cts = ts[start:stop]
            nx = xs[start:stop, None] + self._offset_dx[None, :]
            ny = ys[start:stop, None] + self._offset_dy[None, :]
            in_bounds = (nx >= 0) & (nx < self.width) & (ny >= 0) & (ny < self.height)
            flat = np.where(in_bounds, ny * self.width + nx, 0)
            prior = stamps_flat[flat]
            earliest_support = cts[:, None] - support
            supported = in_bounds & (prior >= 0) & (prior >= earliest_support)
            # First intra-chunk occurrence of each pixel: reverse-order
            # scatter leaves the smallest index.
            reverse = np.arange(stop - start - 1, -1, -1, dtype=np.int64)
            index_frame[cpix[reverse]] = reverse
            neighbour_first = index_frame[flat]
            supported |= (
                in_bounds
                & (neighbour_first >= 0)
                & (neighbour_first < np.arange(stop - start, dtype=np.int64)[:, None])
            )
            keep[start:stop] = supported.any(axis=1)
            stamps_flat[cpix] = cts
            index_frame[cpix] = -1

    def _scalar_sweep(
        self, xs, ys, ts, lo: int, hi: int, keep: np.ndarray
    ) -> None:
        """Scalar kernel over ``[lo, hi)`` on pre-extracted coordinate lists.

        Same integer comparisons as :meth:`process_scalar` (so bit-identical
        keep decisions and memory updates), but with plain-Python neighbour
        probes and early exit — this is what same-pixel burst runs fall back
        to inside the vectorized path.
        """
        stamps = self._last_timestamp
        width, height = self.width, self.height
        support = self.support_time_us
        offsets = self._offsets
        for index in range(lo, hi):
            x = xs[index]
            y = ys[index]
            t = ts[index]
            earliest = t - support
            supported = False
            for dy, dx in offsets:
                nyy = y + dy
                nxx = x + dx
                if 0 <= nyy < height and 0 <= nxx < width:
                    stamp = stamps[nyy, nxx]
                    if stamp >= 0 and stamp >= earliest:
                        supported = True
                        break
            keep[index] = supported
            stamps[y, x] = t

    def filter(self, events: np.ndarray) -> np.ndarray:
        """Return only the events that pass the filter."""
        return events[self.process(events)]

    def state_snapshot(self) -> np.ndarray:
        """Copy of the per-pixel timestamp memory (for checkpoint/restore)."""
        return self._last_timestamp.copy()

    def restore_state(self, snapshot: np.ndarray) -> None:
        """Reinstate a memory captured by :meth:`state_snapshot`."""
        if snapshot.shape != (self.height, self.width):
            raise ValueError(
                f"snapshot shape {snapshot.shape} does not match the filter's "
                f"{(self.height, self.width)}"
            )
        self._last_timestamp = np.array(snapshot, dtype=np.int64, copy=True)


@dataclass
class RefractoryFilter:
    """Per-pixel refractory-period filter.

    Drops an event if the same pixel fired less than ``refractory_us``
    microseconds earlier.  Kept events update the pixel's last-fire time.

    ``vectorized`` / ``REPRO_FORCE_SCALAR`` select between the distinct-
    pixel-chunk fast path and the scalar reference, exactly as for
    :class:`NearestNeighbourFilter`; within a chunk no pixel repeats, so
    the keep decision depends only on the chunk-start memory and the kept
    events scatter back without conflicts.
    """

    width: int
    height: int
    refractory_us: int = 1_000
    vectorized: bool = True

    _last_timestamp: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.refractory_us <= 0:
            raise ValueError(f"refractory_us must be positive, got {self.refractory_us}")
        self.reset()

    def reset(self) -> None:
        """Clear the per-pixel last-fire memory."""
        self._last_timestamp = np.full(
            (self.height, self.width), -(10**15), dtype=np.int64
        )

    def process(self, events: np.ndarray) -> np.ndarray:
        """Return the boolean keep-mask for a time-sorted packet."""
        if (
            not self.vectorized
            or len(events) < MIN_VECTOR_EVENTS
            or scalar_forced()
        ):
            return self.process_scalar(events)
        return self._process_vectorized(events)

    def process_scalar(self, events: np.ndarray) -> np.ndarray:
        """The sequential per-event reference implementation."""
        keep = np.zeros(len(events), dtype=bool)
        stamps = self._last_timestamp
        for index in range(len(events)):
            x = int(events["x"][index])
            y = int(events["y"][index])
            t = int(events["t"][index])
            if t - stamps[y, x] >= self.refractory_us:
                keep[index] = True
                stamps[y, x] = t
        return keep

    def _process_vectorized(self, events: np.ndarray) -> np.ndarray:
        """Distinct-pixel chunks: one gather + compare + masked scatter each.

        Runs of short spans (same-pixel bursts) coalesce into a scalar sweep
        over a flat-index list, mirroring the NN filter's hybrid strategy.
        """
        n = len(events)
        keep = np.zeros(n, dtype=bool)
        xs = events["x"].astype(np.int64)
        ys = events["y"].astype(np.int64)
        ts = events["t"].astype(np.int64)
        pix = ys * self.width + xs
        stamps_flat = self._last_timestamp.reshape(-1)
        # Materialized lazily: only the short-span scalar-sweep fallback
        # reads the Python lists, and a burst-free packet never needs them.
        flat_lists = None

        def sweep(lo: int, hi: int) -> None:
            nonlocal flat_lists
            if flat_lists is None:
                flat_lists = (pix.tolist(), ts.tolist())
            self._scalar_sweep(*flat_lists, lo, hi, keep)

        pending_lo = -1
        pending_hi = -1
        for start, stop in distinct_pixel_spans(pix):
            if stop - start < MIN_SPAN_VECTOR:
                if pending_lo < 0:
                    pending_lo = start
                pending_hi = stop
                continue
            if pending_lo >= 0:
                sweep(pending_lo, pending_hi)
                pending_lo = -1
            cpix = pix[start:stop]
            cts = ts[start:stop]
            kept = cts - stamps_flat[cpix] >= self.refractory_us
            keep[start:stop] = kept
            stamps_flat[cpix[kept]] = cts[kept]
        if pending_lo >= 0:
            sweep(pending_lo, pending_hi)
        return keep

    def _scalar_sweep(
        self, pix, ts, lo: int, hi: int, keep: np.ndarray
    ) -> None:
        """Scalar kernel over ``[lo, hi)`` on pre-extracted flat-index lists.

        Same integer comparisons as :meth:`process_scalar`; the vectorized
        path's same-pixel burst runs fall back to it.
        """
        stamps_flat = self._last_timestamp.reshape(-1)
        refractory = self.refractory_us
        for index in range(lo, hi):
            pixel = pix[index]
            t = ts[index]
            if t - stamps_flat[pixel] >= refractory:
                keep[index] = True
                stamps_flat[pixel] = t

    def filter(self, events: np.ndarray) -> np.ndarray:
        """Return only the events that pass the filter."""
        return events[self.process(events)]

    def state_snapshot(self) -> np.ndarray:
        """Copy of the per-pixel last-fire memory (for checkpoint/restore).

        Mirrors :meth:`NearestNeighbourFilter.state_snapshot` so a serving
        session using the refractory filter checkpoints with full parity.
        """
        return self._last_timestamp.copy()

    def restore_state(self, snapshot: np.ndarray) -> None:
        """Reinstate a memory captured by :meth:`state_snapshot`."""
        if snapshot.shape != (self.height, self.width):
            raise ValueError(
                f"snapshot shape {snapshot.shape} does not match the filter's "
                f"{(self.height, self.width)}"
            )
        self._last_timestamp = np.array(snapshot, dtype=np.int64, copy=True)


def estimate_noise_rate(
    events: np.ndarray,
    width: int,
    height: int,
    keep_mask: Optional[np.ndarray] = None,
) -> float:
    """Estimate the background noise rate (Hz/pixel) from a filtered stream.

    When ``keep_mask`` is given, the rejected events are treated as noise;
    otherwise all events are counted.  Useful for calibrating the simulator
    against a recording.
    """
    if len(events) == 0:
        return 0.0
    duration_s = (int(events["t"][-1]) - int(events["t"][0])) * 1e-6
    if duration_s <= 0:
        return 0.0
    if keep_mask is not None:
        noise_count = int((~keep_mask).sum())
    else:
        noise_count = len(events)
    return noise_count / (duration_s * width * height)
