"""Event-camera data substrate: event packets, streams, IO, noise and filters.

A neuromorphic vision sensor (NVS) outputs a stream of events
``e_i = (x_i, y_i, t_i, p_i)`` whenever the log-intensity at a pixel changes
by more than a threshold (Section II of the paper).  This package provides
the event data structures shared by the simulator, the EBBIOT pipeline and
the event-driven baselines.
"""

from repro.events.filters import NearestNeighbourFilter, RefractoryFilter
from repro.events.io import (
    EVENT_FORMATS,
    EventFormat,
    iter_events_csv,
    iter_events_npz,
    load_events,
    load_events_aedat2,
    load_events_csv,
    load_events_npz,
    load_events_txt,
    load_recording,
    save_events_aedat2,
    save_events_csv,
    save_events_npz,
    save_events_txt,
    save_recording,
)
from repro.events.noise import BackgroundActivityNoise, HotPixelNoise
from repro.events.stream import (
    EventBuffer,
    EventStream,
    FrameIndex,
    frame_boundaries,
    frame_windows,
)
from repro.events.types import (
    EVENT_DTYPE,
    OFF_POLARITY,
    ON_POLARITY,
    EventPacket,
    concatenate_packets,
    empty_packet,
    make_packet,
    normalize_packet,
)

__all__ = [
    "EVENT_DTYPE",
    "ON_POLARITY",
    "OFF_POLARITY",
    "EventPacket",
    "make_packet",
    "empty_packet",
    "concatenate_packets",
    "normalize_packet",
    "EventBuffer",
    "EventStream",
    "FrameIndex",
    "frame_boundaries",
    "frame_windows",
    "BackgroundActivityNoise",
    "HotPixelNoise",
    "NearestNeighbourFilter",
    "RefractoryFilter",
    "EVENT_FORMATS",
    "EventFormat",
    "load_events",
    "save_events_npz",
    "load_events_npz",
    "save_events_csv",
    "load_events_csv",
    "save_events_aedat2",
    "load_events_aedat2",
    "save_events_txt",
    "load_events_txt",
    "iter_events_npz",
    "iter_events_csv",
    "save_recording",
    "load_recording",
]
