"""Tracker evaluation: IoU matching, precision/recall and reporting.

The paper's evaluation protocol (Section III-B):

1. at a fixed set of instants, collect the ground-truth boxes and the
   tracker boxes;
2. a tracker box is a true positive when its IoU with a ground-truth box
   exceeds a threshold (one-to-one matching);
3. precision = true positives / total tracker boxes and
   recall = true positives / total ground-truth boxes, computed over all
   instants of the recording;
4. results from several recordings are combined as a weighted average with
   weights equal to each recording's number of ground-truth tracks.
"""

from repro.evaluation.matching import FrameMatchResult, match_frame
from repro.evaluation.mot_metrics import MotSummary, compute_mot_summary
from repro.evaluation.precision_recall import (
    PrecisionRecall,
    RecordingEvaluation,
    evaluate_recording,
    sweep_iou_thresholds,
    weighted_average,
)
from repro.evaluation.report import format_comparison_table, format_precision_recall_table

__all__ = [
    "match_frame",
    "FrameMatchResult",
    "PrecisionRecall",
    "RecordingEvaluation",
    "evaluate_recording",
    "sweep_iou_thresholds",
    "weighted_average",
    "MotSummary",
    "compute_mot_summary",
    "format_precision_recall_table",
    "format_comparison_table",
]
