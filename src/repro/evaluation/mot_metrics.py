"""CLEAR-MOT style summary metrics.

The paper reports only IoU-thresholded precision and recall, but a
downstream user of a tracking library usually also wants MOTA/MOTP-style
numbers and identity-switch counts.  :func:`compute_mot_summary` provides
those as an extension, using the same per-frame IoU matching as the
precision/recall evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.evaluation.matching import match_frame
from repro.evaluation.precision_recall import _align_tracks_to_ground_truth
from repro.simulation.ground_truth import GroundTruthFrame
from repro.trackers.base import TrackObservation
from repro.utils.geometry import BoundingBox


@dataclass(frozen=True)
class MotSummary:
    """Aggregate multi-object-tracking metrics for one recording."""

    mota: float
    motp: float
    num_misses: int
    num_false_positives: int
    num_id_switches: int
    num_ground_truth_boxes: int
    num_matches: int

    @property
    def precision(self) -> float:
        """IoU-thresholded precision: matches over reported tracker boxes.

        Every reported box is either a match or a false positive under the
        per-frame matching, so the counts already carried by the summary
        determine precision at the evaluation's IoU threshold — and the
        counts add across recordings, so pooled summaries
        (:func:`~repro.runtime.aggregate.merge_mot_summaries`) give the
        pooled precision for free.
        """
        reported = self.num_matches + self.num_false_positives
        if reported == 0:
            return 0.0
        return self.num_matches / reported

    @property
    def recall(self) -> float:
        """IoU-thresholded recall: matches over ground-truth boxes."""
        if self.num_ground_truth_boxes == 0:
            return 0.0
        return self.num_matches / self.num_ground_truth_boxes

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "mota": self.mota,
            "motp": self.motp,
            "precision": self.precision,
            "recall": self.recall,
            "misses": self.num_misses,
            "false_positives": self.num_false_positives,
            "id_switches": self.num_id_switches,
            "ground_truth_boxes": self.num_ground_truth_boxes,
            "matches": self.num_matches,
        }


def compute_mot_summary(
    observations: Sequence[TrackObservation],
    ground_truth_frames: Sequence[GroundTruthFrame],
    iou_threshold: float = 0.3,
    alignment_tolerance_us: int = 40_000,
) -> MotSummary:
    """Compute MOTA / MOTP and identity switches for one recording.

    MOTA = 1 - (misses + false positives + id switches) / GT boxes.
    MOTP is the mean IoU of the matched pairs (higher is better), a common
    IoU-flavoured variant of the original distance-based definition.
    """
    observations_by_time: Dict[int, List[TrackObservation]] = {}
    for observation in observations:
        observations_by_time.setdefault(observation.t_us, []).append(observation)

    boxes_by_time: Dict[int, List[BoundingBox]] = {
        t: [o.box for o in obs] for t, obs in observations_by_time.items()
    }
    aligned = _align_tracks_to_ground_truth(
        boxes_by_time, ground_truth_frames, alignment_tolerance_us
    )

    total_misses = 0
    total_false_positives = 0
    total_id_switches = 0
    total_ground_truth = 0
    total_matches = 0
    iou_sum = 0.0
    # Ground-truth track id -> tracker track id from the previous frame.
    previous_assignment: Dict[int, int] = {}

    for (gt_frame, tracker_boxes), _ in zip(aligned, range(len(aligned))):
        time_key = None
        # Recover the observation list whose boxes were used, to get track ids.
        for t, boxes in boxes_by_time.items():
            if boxes is tracker_boxes or (
                len(boxes) == len(tracker_boxes)
                and all(a is b for a, b in zip(boxes, tracker_boxes))
            ):
                time_key = t
                break
        frame_observations = observations_by_time.get(time_key, []) if time_key is not None else []

        gt_boxes = [b.box for b in gt_frame.boxes]
        match = match_frame(tracker_boxes, gt_boxes, iou_threshold=iou_threshold)
        total_ground_truth += match.num_ground_truth_boxes
        total_misses += match.num_false_negatives
        total_false_positives += match.num_false_positives
        total_matches += match.num_true_positives

        for tracker_index, gt_index, iou in match.true_positives:
            iou_sum += iou
            gt_track_id = gt_frame.boxes[gt_index].track_id
            tracker_track_id = (
                frame_observations[tracker_index].track_id
                if tracker_index < len(frame_observations)
                else tracker_index
            )
            if (
                gt_track_id in previous_assignment
                and previous_assignment[gt_track_id] != tracker_track_id
            ):
                total_id_switches += 1
            previous_assignment[gt_track_id] = tracker_track_id

    mota = (
        1.0 - (total_misses + total_false_positives + total_id_switches) / total_ground_truth
        if total_ground_truth
        else 0.0
    )
    motp = iou_sum / total_matches if total_matches else 0.0
    return MotSummary(
        mota=mota,
        motp=motp,
        num_misses=total_misses,
        num_false_positives=total_false_positives,
        num_id_switches=total_id_switches,
        num_ground_truth_boxes=total_ground_truth,
        num_matches=total_matches,
    )
