"""Precision / recall evaluation over recordings and IoU thresholds.

Implements the metric of Section III-B / III-C: IoU-thresholded true
positives accumulated over every evaluation instant of the recording,
precision and recall computed from the totals, swept over IoU thresholds
(Fig. 4) and combined across recordings as a weighted average with weights
equal to each recording's ground-truth track count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.evaluation.matching import match_frame
from repro.simulation.ground_truth import GroundTruthFrame
from repro.trackers.base import TrackObservation
from repro.utils.geometry import BoundingBox

#: IoU thresholds swept in the Fig. 4 reproduction.
DEFAULT_IOU_THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7)


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision and recall with their supporting counts."""

    precision: float
    recall: float
    true_positives: int
    total_tracker_boxes: int
    total_ground_truth_boxes: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


@dataclass
class RecordingEvaluation:
    """Evaluation of one tracker on one recording across IoU thresholds."""

    name: str
    num_ground_truth_tracks: int
    by_threshold: Dict[float, PrecisionRecall] = field(default_factory=dict)

    def precision_series(self) -> List[float]:
        """Precisions ordered by ascending IoU threshold."""
        return [self.by_threshold[t].precision for t in sorted(self.by_threshold)]

    def recall_series(self) -> List[float]:
        """Recalls ordered by ascending IoU threshold."""
        return [self.by_threshold[t].recall for t in sorted(self.by_threshold)]

    def thresholds(self) -> List[float]:
        """Sorted IoU thresholds."""
        return sorted(self.by_threshold)


def _align_tracks_to_ground_truth(
    track_boxes_by_time: Mapping[int, Sequence[BoundingBox]],
    ground_truth_frames: Sequence[GroundTruthFrame],
    tolerance_us: int,
) -> List[tuple]:
    """Pair each GT instant with the nearest tracker report within tolerance."""
    aligned = []
    track_times = sorted(track_boxes_by_time)
    for gt_frame in ground_truth_frames:
        best_time: Optional[int] = None
        best_delta = tolerance_us + 1
        for t in track_times:
            delta = abs(t - gt_frame.t_us)
            if delta < best_delta:
                best_time, best_delta = t, delta
        boxes = list(track_boxes_by_time[best_time]) if best_time is not None else []
        aligned.append((gt_frame, boxes))
    return aligned


def evaluate_recording(
    observations: Sequence[TrackObservation],
    ground_truth_frames: Sequence[GroundTruthFrame],
    iou_thresholds: Sequence[float] = DEFAULT_IOU_THRESHOLDS,
    name: str = "recording",
    alignment_tolerance_us: int = 40_000,
) -> RecordingEvaluation:
    """Evaluate tracker output against ground truth for one recording.

    Parameters
    ----------
    observations:
        All tracker observations over the recording (any tracker).
    ground_truth_frames:
        Ground-truth annotations sampled at regular instants.
    iou_thresholds:
        IoU thresholds to sweep.
    name:
        Recording name used in reports.
    alignment_tolerance_us:
        Maximum time difference between a GT instant and the tracker report
        associated with it (defaults to just over half a 66 ms frame).
    """
    track_boxes_by_time: Dict[int, List[BoundingBox]] = {}
    for observation in observations:
        track_boxes_by_time.setdefault(observation.t_us, []).append(observation.box)

    aligned = _align_tracks_to_ground_truth(
        track_boxes_by_time, ground_truth_frames, alignment_tolerance_us
    )

    track_ids = set()
    for frame in ground_truth_frames:
        track_ids.update(frame.track_ids())

    evaluation = RecordingEvaluation(
        name=name, num_ground_truth_tracks=len(track_ids)
    )
    for threshold in iou_thresholds:
        true_positives = 0
        total_tracker_boxes = 0
        total_ground_truth_boxes = 0
        for gt_frame, tracker_boxes in aligned:
            gt_boxes = [b.box for b in gt_frame.boxes]
            match = match_frame(tracker_boxes, gt_boxes, iou_threshold=threshold)
            true_positives += match.num_true_positives
            total_tracker_boxes += match.num_tracker_boxes
            total_ground_truth_boxes += match.num_ground_truth_boxes
        precision = true_positives / total_tracker_boxes if total_tracker_boxes else 0.0
        recall = (
            true_positives / total_ground_truth_boxes if total_ground_truth_boxes else 0.0
        )
        evaluation.by_threshold[threshold] = PrecisionRecall(
            precision=precision,
            recall=recall,
            true_positives=true_positives,
            total_tracker_boxes=total_tracker_boxes,
            total_ground_truth_boxes=total_ground_truth_boxes,
        )
    return evaluation


def sweep_iou_thresholds(
    evaluations: Sequence[RecordingEvaluation],
) -> Dict[float, PrecisionRecall]:
    """Weighted-average precision/recall per threshold across recordings.

    Weights are each recording's ground-truth track count, as in the
    paper's Section III-C.
    """
    if not evaluations:
        return {}
    thresholds = evaluations[0].thresholds()
    combined: Dict[float, PrecisionRecall] = {}
    for threshold in thresholds:
        combined[threshold] = weighted_average(
            [e.by_threshold[threshold] for e in evaluations],
            [e.num_ground_truth_tracks for e in evaluations],
        )
    return combined


def weighted_average(
    results: Sequence[PrecisionRecall], weights: Sequence[float]
) -> PrecisionRecall:
    """Weighted average of precision/recall values.

    The supporting counts are summed so the combined object still reports
    meaningful totals.
    """
    if len(results) != len(weights):
        raise ValueError(
            f"results ({len(results)}) and weights ({len(weights)}) must have equal length"
        )
    if not results:
        raise ValueError("cannot average zero results")
    total_weight = float(sum(weights))
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    precision = sum(r.precision * w for r, w in zip(results, weights)) / total_weight
    recall = sum(r.recall * w for r, w in zip(results, weights)) / total_weight
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        true_positives=sum(r.true_positives for r in results),
        total_tracker_boxes=sum(r.total_tracker_boxes for r in results),
        total_ground_truth_boxes=sum(r.total_ground_truth_boxes for r in results),
    )
