"""Plain-text report formatting for evaluations and resource comparisons.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place so tests can check it and the
examples can reuse it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.precision_recall import PrecisionRecall


def format_precision_recall_table(
    results_by_tracker: Mapping[str, Mapping[float, PrecisionRecall]],
    metric: str = "both",
) -> str:
    """Format Fig. 4-style data: metric vs IoU threshold per tracker.

    Parameters
    ----------
    results_by_tracker:
        ``{tracker_name: {iou_threshold: PrecisionRecall}}``.
    metric:
        ``"precision"``, ``"recall"`` or ``"both"``.
    """
    if metric not in ("precision", "recall", "both"):
        raise ValueError(f"metric must be precision, recall or both, got {metric!r}")
    if not results_by_tracker:
        return "(no results)"
    thresholds = sorted(next(iter(results_by_tracker.values())).keys())
    lines = []
    header = ["tracker", "metric"] + [f"IoU>{t:.1f}" for t in thresholds]
    lines.append(" | ".join(f"{h:>10}" for h in header))
    lines.append("-" * len(lines[0]))
    metrics = ["precision", "recall"] if metric == "both" else [metric]
    for tracker_name, by_threshold in results_by_tracker.items():
        for metric_name in metrics:
            values = [getattr(by_threshold[t], metric_name) for t in thresholds]
            row = [tracker_name, metric_name] + [f"{v:.3f}" for v in values]
            lines.append(" | ".join(f"{cell:>10}" for cell in row))
    return "\n".join(lines)


def format_comparison_table(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str], title: str = ""
) -> str:
    """Generic fixed-width table formatter for benchmark output."""
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(f"{c:>18}" for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(f"{value:>18.4g}")
            else:
                cells.append(f"{str(value):>18}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
