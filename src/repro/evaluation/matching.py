"""Per-frame matching of tracker boxes against ground-truth boxes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.simulation.ground_truth import GroundTruthBox
from repro.trackers.base import TrackObservation
from repro.trackers.association import iou_assignment
from repro.utils.geometry import BoundingBox, boxes_iou


@dataclass
class FrameMatchResult:
    """Outcome of matching one frame's tracker boxes to its ground truth.

    Attributes
    ----------
    true_positives:
        Matched (tracker index, ground-truth index, IoU) triples with IoU
        above the threshold.
    num_tracker_boxes:
        Number of tracker boxes presented for matching.
    num_ground_truth_boxes:
        Number of ground-truth boxes at this instant.
    matched_pairs:
        All one-to-one assignment pairs, including those below the IoU
        threshold (useful for MOTP-style distance statistics).
    """

    true_positives: List[Tuple[int, int, float]] = field(default_factory=list)
    num_tracker_boxes: int = 0
    num_ground_truth_boxes: int = 0
    matched_pairs: List[Tuple[int, int, float]] = field(default_factory=list)

    @property
    def num_true_positives(self) -> int:
        """Number of tracker boxes counted as correct."""
        return len(self.true_positives)

    @property
    def num_false_positives(self) -> int:
        """Tracker boxes that did not match any ground truth above threshold."""
        return self.num_tracker_boxes - self.num_true_positives

    @property
    def num_false_negatives(self) -> int:
        """Ground-truth boxes missed by the tracker."""
        return self.num_ground_truth_boxes - self.num_true_positives


def match_frame(
    tracker_boxes: Sequence[BoundingBox],
    ground_truth_boxes: Sequence[BoundingBox],
    iou_threshold: float = 0.5,
) -> FrameMatchResult:
    """One-to-one IoU matching between tracker and ground-truth boxes.

    The assignment maximises total IoU (Hungarian); pairs with IoU above
    ``iou_threshold`` count as true positives.
    """
    if not 0.0 < iou_threshold <= 1.0:
        raise ValueError(f"iou_threshold must be in (0, 1], got {iou_threshold}")
    result = FrameMatchResult(
        num_tracker_boxes=len(tracker_boxes),
        num_ground_truth_boxes=len(ground_truth_boxes),
    )
    if not tracker_boxes or not ground_truth_boxes:
        return result
    pairs = iou_assignment(list(tracker_boxes), list(ground_truth_boxes))
    for tracker_index, ground_truth_index in pairs:
        iou = boxes_iou(tracker_boxes[tracker_index], ground_truth_boxes[ground_truth_index])
        result.matched_pairs.append((tracker_index, ground_truth_index, iou))
        if iou > iou_threshold:
            result.true_positives.append((tracker_index, ground_truth_index, iou))
    return result


def match_observations(
    observations: Sequence[TrackObservation],
    ground_truth: Sequence[GroundTruthBox],
    iou_threshold: float = 0.5,
) -> FrameMatchResult:
    """Convenience wrapper matching tracker observations to GT annotations."""
    tracker_boxes = [o.box for o in observations]
    ground_truth_boxes = [g.box for g in ground_truth]
    return match_frame(tracker_boxes, ground_truth_boxes, iou_threshold)
