"""Scene assembly and event-stream synthesis.

A :class:`Scene` combines a sensor geometry, a set of moving objects,
optional static distractors and a background-noise model, and renders the
whole thing into a time-sorted event stream plus ground-truth annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.events.noise import BackgroundActivityNoise, HotPixelNoise
from repro.events.stream import EventStream
from repro.events.types import EVENT_DTYPE
from repro.sensor.davis import SensorGeometry
from repro.simulation.event_generator import FoliageDistractor, ObjectEventGenerator
from repro.simulation.ground_truth import GroundTruthFrame, sample_ground_truth
from repro.simulation.objects import SceneObject
from repro.utils.geometry import BoundingBox


@dataclass
class SceneConfig:
    """Configuration of the scene renderer.

    Parameters
    ----------
    geometry:
        Sensor geometry (resolution and lens).
    noise:
        Background-activity noise model; ``None`` disables noise.
    hot_pixels:
        Optional hot-pixel noise model.
    distractors:
        Static foliage-like distractor regions.
    chunk_duration_us:
        Rendering chunk size.  Events are generated chunk by chunk so object
        motion within a chunk is small; 8 ms gives sub-pixel motion for all
        realistic traffic speeds while keeping the Python loop short.
    seed:
        Seed of the scene's random generator.
    """

    geometry: SensorGeometry = field(default_factory=SensorGeometry)
    noise: Optional[BackgroundActivityNoise] = field(
        default_factory=lambda: BackgroundActivityNoise(rate_hz_per_pixel=0.5)
    )
    hot_pixels: Optional[HotPixelNoise] = None
    distractors: List[FoliageDistractor] = field(default_factory=list)
    chunk_duration_us: int = 8_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.chunk_duration_us <= 0:
            raise ValueError(
                f"chunk_duration_us must be positive, got {self.chunk_duration_us}"
            )


@dataclass
class SimulationResult:
    """Output of :meth:`Scene.render`: events plus ground truth."""

    stream: EventStream
    ground_truth: List[GroundTruthFrame]
    objects: List[SceneObject]
    config: SceneConfig

    @property
    def num_events(self) -> int:
        """Total number of events in the rendered stream."""
        return len(self.stream)

    @property
    def duration_s(self) -> float:
        """Rendered duration in seconds."""
        return self.stream.duration_s

    def num_ground_truth_tracks(self) -> int:
        """Number of distinct ground-truth tracks."""
        track_ids = set()
        for frame in self.ground_truth:
            track_ids.update(frame.track_ids())
        return len(track_ids)


class Scene:
    """A stationary-camera scene that renders objects into an event stream."""

    def __init__(self, config: SceneConfig) -> None:
        self.config = config
        self.objects: List[SceneObject] = []
        self._next_object_id = 0

    # -- scene construction ------------------------------------------------------------

    def add_object(self, scene_object: SceneObject) -> SceneObject:
        """Add a fully constructed object to the scene."""
        if any(o.object_id == scene_object.object_id for o in self.objects):
            raise ValueError(f"duplicate object_id {scene_object.object_id}")
        self.objects.append(scene_object)
        self._next_object_id = max(self._next_object_id, scene_object.object_id + 1)
        return scene_object

    def allocate_object_id(self) -> int:
        """Return a fresh unique object id."""
        object_id = self._next_object_id
        self._next_object_id += 1
        return object_id

    def add_distractor(self, distractor: FoliageDistractor) -> None:
        """Add a static distractor region to the scene."""
        self.config.distractors.append(distractor)

    def roe_boxes(self) -> List[BoundingBox]:
        """Regions of exclusion covering the scene's static distractors.

        The paper assumes the ROE is provided manually by the operator; for
        the synthetic scene we derive it from the distractor regions, padded
        by one pixel.
        """
        return [d.region.expanded(1.0) for d in self.config.distractors]

    # -- rendering -----------------------------------------------------------------------

    def render(
        self,
        duration_us: int,
        ground_truth_interval_us: int = 66_000,
        t_start_us: int = 0,
    ) -> SimulationResult:
        """Render the scene into events and ground truth.

        Parameters
        ----------
        duration_us:
            Length of the rendered recording.
        ground_truth_interval_us:
            Spacing of the ground-truth annotation instants; defaults to the
            EBBIOT frame duration so GT instants align with frame midpoints.
        t_start_us:
            Start time of the recording.

        Returns
        -------
        SimulationResult
        """
        if duration_us <= 0:
            raise ValueError(f"duration_us must be positive, got {duration_us}")
        geometry = self.config.geometry
        rng = np.random.default_rng(self.config.seed)
        generator = ObjectEventGenerator(geometry.width, geometry.height)

        packets: List[np.ndarray] = []
        t_end_us = t_start_us + duration_us
        chunk = self.config.chunk_duration_us
        chunk_start = t_start_us
        while chunk_start < t_end_us:
            chunk_end = min(chunk_start + chunk, t_end_us)
            active = [
                o
                for o in self.objects
                if o.is_active(chunk_start) or o.is_active(chunk_end - 1)
            ]
            if active:
                packets.append(
                    generator.generate_for_objects(active, chunk_start, chunk_end, rng)
                )
            for distractor in self.config.distractors:
                packets.append(
                    distractor.generate(
                        geometry.width, geometry.height, chunk_start, chunk_end, rng
                    )
                )
            chunk_start = chunk_end

        if self.config.noise is not None:
            packets.append(
                self.config.noise.generate(
                    geometry.width, geometry.height, t_start_us, t_end_us, rng
                )
            )
        if self.config.hot_pixels is not None:
            packets.append(
                self.config.hot_pixels.generate(
                    geometry.width, geometry.height, t_start_us, t_end_us, rng
                )
            )

        packets = [p for p in packets if len(p)]
        if packets:
            events = np.concatenate(packets)
            events.sort(order="t", kind="stable")
        else:
            events = np.empty(0, dtype=EVENT_DTYPE)
        stream = EventStream(events, geometry.width, geometry.height)

        # Ground truth sampled at frame midpoints so annotations line up with
        # the middle of each EBBI accumulation window.
        sample_times = list(
            range(
                t_start_us + ground_truth_interval_us // 2,
                t_end_us,
                ground_truth_interval_us,
            )
        )
        ground_truth = sample_ground_truth(
            self.objects, sample_times, geometry.width, geometry.height
        )
        return SimulationResult(
            stream=stream,
            ground_truth=ground_truth,
            objects=list(self.objects),
            config=self.config,
        )
