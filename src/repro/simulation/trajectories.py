"""Object trajectories for the traffic scene simulator.

A trajectory maps time (microseconds) to the position of an object's
bottom-left corner in pixels.  All trajectories also report the time window
during which the object exists in the scene so the simulator can skip
inactive objects cheaply.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence, Tuple


class Trajectory(abc.ABC):
    """Mapping from time to the object's bottom-left corner position."""

    @abc.abstractmethod
    def position(self, t_us: int) -> Tuple[float, float]:
        """Bottom-left corner ``(x, y)`` in pixels at time ``t_us``."""

    @abc.abstractmethod
    def velocity(self, t_us: int) -> Tuple[float, float]:
        """Instantaneous velocity ``(vx, vy)`` in pixels per microsecond."""

    @property
    @abc.abstractmethod
    def t_start_us(self) -> int:
        """Time the object enters the scene."""

    @property
    @abc.abstractmethod
    def t_end_us(self) -> int:
        """Time the object leaves the scene."""

    def is_active(self, t_us: int) -> bool:
        """``True`` when the object exists at time ``t_us``."""
        return self.t_start_us <= t_us < self.t_end_us


@dataclass(frozen=True)
class ConstantVelocityTrajectory(Trajectory):
    """Straight-line motion at constant velocity.

    Parameters
    ----------
    start_position:
        Bottom-left corner at ``t_start``.
    velocity_px_per_s:
        Velocity in pixels per second ``(vx, vy)``.
    t_start, t_end:
        Active interval in microseconds.
    """

    start_position: Tuple[float, float]
    velocity_px_per_s: Tuple[float, float]
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError(
                f"t_end ({self.t_end}) must be after t_start ({self.t_start})"
            )

    @property
    def t_start_us(self) -> int:
        return self.t_start

    @property
    def t_end_us(self) -> int:
        return self.t_end

    def position(self, t_us: int) -> Tuple[float, float]:
        dt_s = (t_us - self.t_start) * 1e-6
        return (
            self.start_position[0] + self.velocity_px_per_s[0] * dt_s,
            self.start_position[1] + self.velocity_px_per_s[1] * dt_s,
        )

    def velocity(self, t_us: int) -> Tuple[float, float]:
        return (self.velocity_px_per_s[0] * 1e-6, self.velocity_px_per_s[1] * 1e-6)


@dataclass(frozen=True)
class StopAndGoTrajectory(Trajectory):
    """Horizontal motion that pauses for a while mid-way (traffic-light stop).

    The object moves at ``speed_px_per_s`` along x, stops at
    ``stop_position_x`` for ``stop_duration_us``, then continues.  Vertical
    position is constant.
    """

    start_position: Tuple[float, float]
    speed_px_per_s: float
    stop_position_x: float
    stop_duration_us: int
    t_start: int
    t_end: int

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError("t_end must be after t_start")
        if self.speed_px_per_s == 0:
            raise ValueError("speed_px_per_s must be non-zero")
        direction = 1.0 if self.speed_px_per_s > 0 else -1.0
        distance_to_stop = (self.stop_position_x - self.start_position[0]) * direction
        if distance_to_stop < 0:
            raise ValueError("stop_position_x must lie ahead of the start position")

    @property
    def t_start_us(self) -> int:
        return self.t_start

    @property
    def t_end_us(self) -> int:
        return self.t_end

    def _time_to_stop_us(self) -> float:
        distance = abs(self.stop_position_x - self.start_position[0])
        return distance / abs(self.speed_px_per_s) * 1e6

    def position(self, t_us: int) -> Tuple[float, float]:
        elapsed = t_us - self.t_start
        reach_stop = self._time_to_stop_us()
        if elapsed <= reach_stop:
            x = self.start_position[0] + self.speed_px_per_s * elapsed * 1e-6
        elif elapsed <= reach_stop + self.stop_duration_us:
            x = self.stop_position_x
        else:
            moving_time = elapsed - reach_stop - self.stop_duration_us
            x = self.stop_position_x + self.speed_px_per_s * moving_time * 1e-6
        return (x, self.start_position[1])

    def velocity(self, t_us: int) -> Tuple[float, float]:
        elapsed = t_us - self.t_start
        reach_stop = self._time_to_stop_us()
        if reach_stop < elapsed <= reach_stop + self.stop_duration_us:
            return (0.0, 0.0)
        return (self.speed_px_per_s * 1e-6, 0.0)


@dataclass(frozen=True)
class PiecewiseLinearTrajectory(Trajectory):
    """Trajectory through a list of ``(t_us, x, y)`` waypoints.

    Positions are linearly interpolated between waypoints; before the first
    and after the last waypoint the object holds the end positions.  Used
    for hand-crafted scenarios (e.g. a turning vehicle) and for replaying
    annotated tracks.
    """

    waypoints: Sequence[Tuple[int, float, float]]

    _times: Tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a piecewise-linear trajectory needs at least 2 waypoints")
        times = [int(w[0]) for w in self.waypoints]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ValueError("waypoint times must be strictly increasing")
        object.__setattr__(self, "_times", tuple(times))

    @property
    def t_start_us(self) -> int:
        return self._times[0]

    @property
    def t_end_us(self) -> int:
        return self._times[-1]

    def _segment_index(self, t_us: int) -> int:
        for index in range(len(self._times) - 1):
            if t_us < self._times[index + 1]:
                return index
        return len(self._times) - 2

    def position(self, t_us: int) -> Tuple[float, float]:
        if t_us <= self.t_start_us:
            return (self.waypoints[0][1], self.waypoints[0][2])
        if t_us >= self.t_end_us:
            return (self.waypoints[-1][1], self.waypoints[-1][2])
        index = self._segment_index(t_us)
        t0, x0, y0 = self.waypoints[index]
        t1, x1, y1 = self.waypoints[index + 1]
        fraction = (t_us - t0) / (t1 - t0)
        return (x0 + fraction * (x1 - x0), y0 + fraction * (y1 - y0))

    def velocity(self, t_us: int) -> Tuple[float, float]:
        if t_us < self.t_start_us or t_us >= self.t_end_us:
            return (0.0, 0.0)
        index = self._segment_index(t_us)
        t0, x0, y0 = self.waypoints[index]
        t1, x1, y1 = self.waypoints[index + 1]
        dt = t1 - t0
        return ((x1 - x0) / dt, (y1 - y0) / dt)


def crossing_trajectory(
    width: int,
    y: float,
    speed_px_per_s: float,
    t_enter_us: int,
    object_width: float,
    direction: int = 1,
) -> ConstantVelocityTrajectory:
    """Trajectory of an object crossing the full field of view horizontally.

    Parameters
    ----------
    width:
        Sensor width in pixels.
    y:
        Vertical (lane) position of the object's bottom edge.
    speed_px_per_s:
        Horizontal speed magnitude in pixels per second.
    t_enter_us:
        Time the object's leading edge enters the frame.
    object_width:
        Width of the object, used to start/stop fully outside the frame.
    direction:
        ``+1`` for left-to-right, ``-1`` for right-to-left.
    """
    if direction not in (1, -1):
        raise ValueError(f"direction must be +1 or -1, got {direction}")
    if speed_px_per_s <= 0:
        raise ValueError(f"speed must be positive, got {speed_px_per_s}")
    travel_px = width + 2 * object_width
    duration_us = int(travel_px / speed_px_per_s * 1e6)
    if direction == 1:
        start_x = -object_width
        velocity = (speed_px_per_s, 0.0)
    else:
        start_x = float(width)
        velocity = (-speed_px_per_s, 0.0)
    return ConstantVelocityTrajectory(
        start_position=(start_x, y),
        velocity_px_per_s=velocity,
        t_start=t_enter_us,
        t_end=t_enter_us + duration_us,
    )
