"""Traffic scenario builders.

These helpers assemble complete traffic-junction scenes: vehicles arrive as
a Poisson process in a small number of horizontal lanes, classes and speeds
are drawn from configurable mixes, and optional distractors / stop-and-go
behaviour can be enabled.  The dataset builders in :mod:`repro.datasets`
use these to create the ENG-like and LT4-like recordings of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.events.noise import BackgroundActivityNoise
from repro.sensor.davis import SensorGeometry
from repro.simulation.event_generator import FoliageDistractor
from repro.simulation.objects import OBJECT_TEMPLATES, ObjectClass, SceneObject
from repro.simulation.scene import Scene, SceneConfig
from repro.simulation.trajectories import StopAndGoTrajectory, crossing_trajectory
from repro.utils.geometry import BoundingBox

#: Default class mix at the junction: mostly cars, a few two-wheelers and
#: heavy vehicles, occasional pedestrians.
DEFAULT_CLASS_MIX: Dict[ObjectClass, float] = {
    ObjectClass.CAR: 0.45,
    ObjectClass.VAN: 0.15,
    ObjectClass.BIKE: 0.15,
    ObjectClass.BUS: 0.08,
    ObjectClass.TRUCK: 0.07,
    ObjectClass.HUMAN: 0.10,
}

#: Typical speed ranges (pixels per second) per class at the ENG lens scale.
#: 66 ms frames make 15 px/s roughly 1 px/frame; the paper quotes sub-pixel
#: to 5-6 px/frame, i.e. up to ~90 px/s.
DEFAULT_SPEED_RANGES: Dict[ObjectClass, Tuple[float, float]] = {
    ObjectClass.CAR: (30.0, 90.0),
    ObjectClass.VAN: (30.0, 80.0),
    ObjectClass.BIKE: (25.0, 70.0),
    ObjectClass.BUS: (20.0, 60.0),
    ObjectClass.TRUCK: (20.0, 60.0),
    ObjectClass.HUMAN: (5.0, 15.0),
}


@dataclass
class TrafficScenarioConfig:
    """Parameters of a synthetic traffic recording.

    Parameters
    ----------
    duration_s:
        Recording length in seconds.
    geometry:
        Sensor geometry; the lens focal length scales object sizes.
    arrival_rate_per_s:
        Mean number of new objects entering the scene per second.
    lane_y_positions:
        Bottom-edge y coordinate of each traffic lane.  Lanes alternate
        direction (even indices left-to-right).
    class_mix:
        Probability of each object class.
    speed_ranges:
        Min/max speed per class in pixels per second.
    include_humans:
        When ``False`` pedestrians are removed from the mix (the paper notes
        humans are not tracked at tF = 66 ms).
    stop_and_go_probability:
        Probability that a vehicle stops mid-scene (traffic light).
    noise_rate_hz_per_pixel:
        Background-activity noise rate.
    foliage:
        Optional distractor regions (trees) to include.
    object_scale:
        Extra multiplicative scale on object silhouettes, applied on top of
        the lens scale.  LT4's 6 mm lens halves apparent sizes.
    seed:
        Seed for the arrival/class/speed draws and for the scene renderer.
    """

    duration_s: float = 60.0
    geometry: SensorGeometry = field(default_factory=SensorGeometry)
    arrival_rate_per_s: float = 0.25
    lane_y_positions: Sequence[float] = (40.0, 75.0, 110.0)
    class_mix: Dict[ObjectClass, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_MIX)
    )
    speed_ranges: Dict[ObjectClass, Tuple[float, float]] = field(
        default_factory=lambda: dict(DEFAULT_SPEED_RANGES)
    )
    include_humans: bool = False
    stop_and_go_probability: float = 0.0
    noise_rate_hz_per_pixel: float = 0.5
    foliage: List[FoliageDistractor] = field(default_factory=list)
    object_scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.arrival_rate_per_s < 0:
            raise ValueError("arrival_rate_per_s must be non-negative")
        if not self.lane_y_positions:
            raise ValueError("at least one lane is required")
        if self.object_scale <= 0:
            raise ValueError(f"object_scale must be positive, got {self.object_scale}")
        if not 0.0 <= self.stop_and_go_probability <= 1.0:
            raise ValueError("stop_and_go_probability must be in [0, 1]")

    def effective_class_mix(self) -> Dict[ObjectClass, float]:
        """Class mix with humans removed (if configured) and renormalised."""
        mix = dict(self.class_mix)
        if not self.include_humans:
            mix.pop(ObjectClass.HUMAN, None)
        total = sum(mix.values())
        if total <= 0:
            raise ValueError("class mix has zero total probability")
        return {cls: prob / total for cls, prob in mix.items()}


def build_traffic_scene(config: TrafficScenarioConfig) -> Scene:
    """Assemble a :class:`Scene` populated according to the scenario config.

    Objects arrive as a Poisson process; each arrival picks a lane (which
    fixes its direction), a class, and a speed from the class's range.
    """
    rng = np.random.default_rng(config.seed)
    geometry = config.geometry
    duration_us = int(config.duration_s * 1e6)

    scene_config = SceneConfig(
        geometry=geometry,
        noise=BackgroundActivityNoise(rate_hz_per_pixel=config.noise_rate_hz_per_pixel),
        distractors=list(config.foliage),
        seed=config.seed + 1,
    )
    scene = Scene(scene_config)

    mix = config.effective_class_mix()
    classes = list(mix.keys())
    probabilities = np.array([mix[c] for c in classes])

    expected_arrivals = config.arrival_rate_per_s * config.duration_s
    num_arrivals = int(rng.poisson(expected_arrivals))
    arrival_times = np.sort(rng.uniform(0, duration_us, size=num_arrivals)).astype(np.int64)

    lens_scale = geometry.lens_focal_length_mm / 12.0
    size_scale = lens_scale * config.object_scale

    for t_enter in arrival_times:
        object_class = classes[int(rng.choice(len(classes), p=probabilities))]
        template = OBJECT_TEMPLATES[object_class].scaled(size_scale)
        lane_index = int(rng.integers(0, len(config.lane_y_positions)))
        lane_y = float(config.lane_y_positions[lane_index])
        direction = 1 if lane_index % 2 == 0 else -1
        low, high = config.speed_ranges[object_class]
        speed = float(rng.uniform(low, high)) * lens_scale

        use_stop_and_go = (
            object_class != ObjectClass.HUMAN
            and rng.random() < config.stop_and_go_probability
        )
        if use_stop_and_go:
            stop_x = float(rng.uniform(geometry.width * 0.3, geometry.width * 0.7))
            stop_duration = int(rng.uniform(0.5e6, 2.0e6))
            travel_px = geometry.width + 2 * template.width_px
            duration_moving = travel_px / speed * 1e6
            trajectory = StopAndGoTrajectory(
                start_position=(
                    -template.width_px if direction == 1 else float(geometry.width),
                    lane_y,
                ),
                speed_px_per_s=speed * direction,
                stop_position_x=stop_x,
                stop_duration_us=stop_duration,
                t_start=int(t_enter),
                t_end=int(t_enter + duration_moving + stop_duration),
            )
        else:
            trajectory = crossing_trajectory(
                width=geometry.width,
                y=lane_y,
                speed_px_per_s=speed,
                t_enter_us=int(t_enter),
                object_width=template.width_px,
                direction=direction,
            )

        scene.add_object(
            SceneObject(
                object_id=scene.allocate_object_id(),
                template=template,
                trajectory=trajectory,
            )
        )

    return scene


def default_foliage(geometry: SensorGeometry) -> List[FoliageDistractor]:
    """A typical distractor layout: a tree canopy in the top-left corner."""
    canopy = BoundingBox(0, geometry.height * 0.75, geometry.width * 0.25, geometry.height * 0.25)
    return [FoliageDistractor(region=canopy, events_per_pixel_per_s=1.5)]
