"""Event generation from moving objects.

A stationary neuromorphic sensor responds to temporal contrast: events are
generated where the image intensity changes, i.e. at the moving edges and
high-contrast texture of an object, roughly in proportion to how far the
object moved during the interval.  :class:`ObjectEventGenerator` implements
a per-interval approximation of that behaviour:

* the leading and trailing vertical edges, the top and bottom horizontal
  edges and a fixed set of interior texture lines sweep over pixels as the
  object moves; swept pixels emit events with per-feature densities;
* interior pixels away from texture emit events at a much lower density, so
  large plain-sided vehicles produce fragmented event blobs;
* objects moving at sub-pixel speed per interval still emit a reduced number
  of events (flicker/jitter of edges), so slow objects are dim but not
  invisible — matching the paper's note that humans need a longer exposure.

This is not a photometrically accurate ESIM-style simulator, but it produces
event streams whose framed (EBBI) appearance has the properties the EBBIOT
pipeline and its baselines are sensitive to: edge-dominated silhouettes,
fragmentation, density proportional to speed and size, and realistic event
counts per frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.events.types import EVENT_DTYPE, make_packet
from repro.simulation.objects import SceneObject
from repro.utils.geometry import BoundingBox, clip_box


@dataclass
class ObjectEventGenerator:
    """Generates events for scene objects over short time intervals.

    Parameters
    ----------
    width, height:
        Sensor resolution in pixels.
    edge_thickness_px:
        Thickness of the leading/trailing edge bands that emit events.
    min_edge_activity:
        Event-density multiplier applied when the object moves less than one
        pixel in the interval (sensor jitter keeps slow edges faintly
        visible).
    on_fraction:
        Fraction of generated events with ON polarity.  A moving object
        produces ON events at one edge and OFF at the other; the EBBI path
        ignores polarity so a simple split is sufficient.
    """

    width: int
    height: int
    edge_thickness_px: float = 2.0
    min_edge_activity: float = 0.25
    on_fraction: float = 0.5

    def generate_for_object(
        self,
        scene_object: SceneObject,
        t_start_us: int,
        t_end_us: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Events emitted by one object during ``[t_start_us, t_end_us)``."""
        if t_end_us <= t_start_us:
            return np.empty(0, dtype=EVENT_DTYPE)
        if not (
            scene_object.is_active(t_start_us) or scene_object.is_active(t_end_us - 1)
        ):
            return np.empty(0, dtype=EVENT_DTYPE)

        t_mid = (t_start_us + t_end_us) // 2
        box = scene_object.bounding_box(t_mid)
        visible = clip_box(box, self.width, self.height)
        if visible is None:
            return np.empty(0, dtype=EVENT_DTYPE)

        # Distance moved during the interval controls overall event activity.
        start_box = scene_object.bounding_box(max(t_start_us, scene_object.trajectory.t_start_us))
        end_box = scene_object.bounding_box(min(t_end_us - 1, scene_object.trajectory.t_end_us - 1))
        displacement = abs(end_box.x - start_box.x) + abs(end_box.y - start_box.y)
        # Activity factor: proportional to motion, floored for slow objects.
        activity = max(min(displacement, 8.0), self.min_edge_activity)

        template = scene_object.template
        regions: List[tuple] = []

        # Leading and trailing vertical edges (strongest event sources).
        edge_w = min(self.edge_thickness_px, box.width / 2.0)
        for edge_x in (box.x, box.x2 - edge_w):
            region = clip_box(
                BoundingBox(edge_x, box.y, edge_w, box.height), self.width, self.height
            )
            if region is not None:
                regions.append((region, template.edge_event_density * activity))

        # Top and bottom horizontal edges (weaker; they move parallel to the
        # horizontal motion so they mainly produce events from jitter).
        edge_h = min(self.edge_thickness_px, box.height / 2.0)
        horizontal_density = template.edge_event_density * activity * 0.35
        for edge_y in (box.y, box.y2 - edge_h):
            region = clip_box(
                BoundingBox(box.x, edge_y, box.width, edge_h), self.width, self.height
            )
            if region is not None:
                regions.append((region, horizontal_density))

        # Interior texture lines (windows / door seams / wheel arches).
        for offset in scene_object.texture_offsets(rng):
            line_x = box.x + offset * box.width
            region = clip_box(
                BoundingBox(line_x, box.y, edge_w, box.height), self.width, self.height
            )
            if region is not None:
                regions.append((region, template.edge_event_density * activity * 0.6))

        # Plain body interior: very low density -> fragmentation of big vehicles.
        interior = clip_box(box, self.width, self.height)
        if interior is not None:
            regions.append((interior, template.body_event_density * activity * 0.3))

        packets = [
            self._sample_region(region, density, t_start_us, t_end_us, rng)
            for region, density in regions
        ]
        packets = [p for p in packets if len(p)]
        if not packets:
            return np.empty(0, dtype=EVENT_DTYPE)
        merged = np.concatenate(packets)
        merged.sort(order="t")
        return merged

    def generate_for_objects(
        self,
        scene_objects: List[SceneObject],
        t_start_us: int,
        t_end_us: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Events from all objects over the interval, merged and time sorted."""
        packets = [
            self.generate_for_object(obj, t_start_us, t_end_us, rng)
            for obj in scene_objects
        ]
        packets = [p for p in packets if len(p)]
        if not packets:
            return np.empty(0, dtype=EVENT_DTYPE)
        merged = np.concatenate(packets)
        merged.sort(order="t")
        return merged

    # -- internals --------------------------------------------------------------------

    def _sample_region(
        self,
        region: BoundingBox,
        events_per_pixel: float,
        t_start_us: int,
        t_end_us: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Sample Poisson events uniformly over a rectangular region."""
        if events_per_pixel <= 0 or region.area <= 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        expected = events_per_pixel * region.area
        count = int(rng.poisson(expected))
        if count == 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        x = rng.uniform(region.x, region.x2, size=count)
        y = rng.uniform(region.y, region.y2, size=count)
        x = np.clip(np.floor(x), 0, self.width - 1).astype(np.int64)
        y = np.clip(np.floor(y), 0, self.height - 1).astype(np.int64)
        t = rng.integers(t_start_us, t_end_us, size=count)
        p = np.where(rng.random(count) < self.on_fraction, 1, -1)
        return make_packet(x, y, t, p)


@dataclass
class FoliageDistractor:
    """A static high-activity region (tree / foliage) that emits events.

    The paper handles such distractors with a manually specified region of
    exclusion (ROE); the simulator needs to produce them so the ROE code
    path is exercised.

    Parameters
    ----------
    region:
        Area covered by the foliage.
    events_per_pixel_per_s:
        Mean event rate inside the region.
    """

    region: BoundingBox
    events_per_pixel_per_s: float = 2.0

    def generate(
        self,
        width: int,
        height: int,
        t_start_us: int,
        t_end_us: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Events emitted by the foliage during the interval."""
        visible = clip_box(self.region, width, height)
        duration_s = (t_end_us - t_start_us) * 1e-6
        if visible is None or duration_s <= 0 or self.events_per_pixel_per_s <= 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        expected = self.events_per_pixel_per_s * visible.area * duration_s
        count = int(rng.poisson(expected))
        if count == 0:
            return np.empty(0, dtype=EVENT_DTYPE)
        x = np.clip(
            np.floor(rng.uniform(visible.x, visible.x2, size=count)), 0, width - 1
        ).astype(np.int64)
        y = np.clip(
            np.floor(rng.uniform(visible.y, visible.y2, size=count)), 0, height - 1
        ).astype(np.int64)
        t = rng.integers(t_start_us, t_end_us, size=count)
        p = np.where(rng.random(count) < 0.5, 1, -1)
        packet = make_packet(x, y, t, p)
        packet.sort(order="t")
        return packet
