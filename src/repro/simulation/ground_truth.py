"""Ground-truth annotations produced by the simulator.

The paper's recordings were manually annotated with per-object bounding
boxes sampled at regular instants; the evaluation then compares tracker
boxes against ground-truth boxes at those instants (Section III-B).  The
simulator knows the true object positions, so :func:`sample_ground_truth`
produces the same kind of annotation directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.simulation.objects import SceneObject
from repro.utils.geometry import BoundingBox, clip_box


@dataclass(frozen=True)
class GroundTruthBox:
    """One annotated object instance at one sampling instant."""

    track_id: int
    object_class: str
    box: BoundingBox

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "track_id": self.track_id,
            "object_class": self.object_class,
            "x": self.box.x,
            "y": self.box.y,
            "width": self.box.width,
            "height": self.box.height,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GroundTruthBox":
        """Inverse of :meth:`to_dict`."""
        return cls(
            track_id=int(data["track_id"]),
            object_class=str(data["object_class"]),
            box=BoundingBox(
                float(data["x"]), float(data["y"]), float(data["width"]), float(data["height"])
            ),
        )


@dataclass
class GroundTruthFrame:
    """All ground-truth boxes at one sampling instant."""

    t_us: int
    boxes: List[GroundTruthBox] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.boxes)

    def track_ids(self) -> List[int]:
        """Track ids present in this frame."""
        return [box.track_id for box in self.boxes]

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {"t_us": self.t_us, "boxes": [box.to_dict() for box in self.boxes]}

    @classmethod
    def from_dict(cls, data: dict) -> "GroundTruthFrame":
        """Inverse of :meth:`to_dict`."""
        return cls(
            t_us=int(data["t_us"]),
            boxes=[GroundTruthBox.from_dict(b) for b in data["boxes"]],
        )


def sample_ground_truth(
    objects: Sequence[SceneObject],
    sample_times_us: Sequence[int],
    width: int,
    height: int,
    min_visible_area: float = 4.0,
    min_visible_fraction: float = 0.25,
) -> List[GroundTruthFrame]:
    """Sample ground-truth boxes for a set of objects at the given instants.

    Objects whose visible (clipped) area is too small — either in absolute
    pixels or as a fraction of their full silhouette — are omitted for that
    instant, matching how a human annotator would not label an object that
    has barely entered the frame.

    Parameters
    ----------
    objects:
        Scene objects with their trajectories.
    sample_times_us:
        Annotation instants (typically the EBBI frame midpoints).
    width, height:
        Sensor resolution, used to clip boxes to the visible array.
    min_visible_area:
        Minimum visible area in square pixels for an object to be annotated.
    min_visible_fraction:
        Minimum visible fraction of the full silhouette.
    """
    frames: List[GroundTruthFrame] = []
    for t_us in sample_times_us:
        frame = GroundTruthFrame(t_us=int(t_us))
        for scene_object in objects:
            if not scene_object.is_active(t_us):
                continue
            full_box = scene_object.bounding_box(t_us)
            visible = clip_box(full_box, width, height)
            if visible is None:
                continue
            if visible.area < min_visible_area:
                continue
            if full_box.area > 0 and visible.area / full_box.area < min_visible_fraction:
                continue
            frame.boxes.append(
                GroundTruthBox(
                    track_id=scene_object.object_id,
                    object_class=scene_object.object_class.value,
                    box=visible,
                )
            )
        frames.append(frame)
    return frames


def count_ground_truth_tracks(frames: Sequence[GroundTruthFrame]) -> int:
    """Number of distinct ground-truth tracks across a recording.

    Used as the per-recording weight in the paper's weighted precision /
    recall aggregation (Section III-C).
    """
    track_ids = set()
    for frame in frames:
        track_ids.update(frame.track_ids())
    return len(track_ids)


def ground_truth_frames_to_dict(frames: Sequence[GroundTruthFrame]) -> List[dict]:
    """Serialise a list of ground-truth frames."""
    return [frame.to_dict() for frame in frames]


def ground_truth_frames_from_dict(data: Sequence[dict]) -> List[GroundTruthFrame]:
    """Deserialise a list of ground-truth frames."""
    return [GroundTruthFrame.from_dict(item) for item in data]
