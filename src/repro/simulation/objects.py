"""Scene objects: vehicles, bikes and pedestrians seen side-on.

Each object is a rectangle moving along a trajectory, with an *event
texture* describing how likely each part of the silhouette is to generate
events.  Edges and wheels are high-contrast and fire many events; large
plain body panels (the side of a bus) fire very few, which is what causes
the object fragmentation the overlap tracker has to repair (Section II-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional, Tuple

import numpy as np

from repro.simulation.trajectories import Trajectory
from repro.utils.geometry import BoundingBox


class ObjectClass(str, Enum):
    """Object categories present at the traffic junction (Section III-A)."""

    HUMAN = "human"
    BIKE = "bike"
    CAR = "car"
    VAN = "van"
    TRUCK = "truck"
    BUS = "bus"


@dataclass(frozen=True)
class ObjectTemplate:
    """Class-level appearance parameters of an object seen side-on.

    Parameters
    ----------
    object_class:
        Category label.
    width_px, height_px:
        Nominal silhouette size at the ENG (12 mm lens) scale.
    edge_event_density:
        Mean events per edge pixel per frame-equivalent of motion; the
        leading/trailing vertical edges are the strongest event sources.
    body_event_density:
        Mean events per interior pixel per frame-equivalent; low values
        produce the fragmentation behaviour of plain-sided vehicles.
    texture_lines:
        Number of high-contrast vertical features inside the silhouette
        (windows, door seams, wheel arches) that also emit events.
    """

    object_class: ObjectClass
    width_px: float
    height_px: float
    edge_event_density: float
    body_event_density: float
    texture_lines: int

    def scaled(self, scale: float) -> "ObjectTemplate":
        """Template with its silhouette scaled (e.g. for a different lens)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return ObjectTemplate(
            object_class=self.object_class,
            width_px=self.width_px * scale,
            height_px=self.height_px * scale,
            edge_event_density=self.edge_event_density,
            body_event_density=self.body_event_density,
            texture_lines=self.texture_lines,
        )


#: Default templates.  Sizes follow the paper's observation that object sizes
#: span an order of magnitude in one scene; densities are chosen so large
#: vehicles fragment while small ones stay compact.
OBJECT_TEMPLATES: Dict[ObjectClass, ObjectTemplate] = {
    ObjectClass.HUMAN: ObjectTemplate(ObjectClass.HUMAN, 8, 20, 1.2, 0.30, 1),
    ObjectClass.BIKE: ObjectTemplate(ObjectClass.BIKE, 18, 16, 1.2, 0.25, 2),
    ObjectClass.CAR: ObjectTemplate(ObjectClass.CAR, 45, 22, 1.0, 0.12, 3),
    ObjectClass.VAN: ObjectTemplate(ObjectClass.VAN, 55, 30, 1.0, 0.08, 3),
    ObjectClass.TRUCK: ObjectTemplate(ObjectClass.TRUCK, 80, 34, 1.0, 0.05, 4),
    ObjectClass.BUS: ObjectTemplate(ObjectClass.BUS, 100, 38, 1.0, 0.04, 5),
}


@dataclass
class SceneObject:
    """A single moving object: a template bound to a trajectory.

    Parameters
    ----------
    object_id:
        Unique integer id within the scene; also used as the ground-truth
        track id.
    template:
        Appearance parameters.
    trajectory:
        Motion of the bottom-left corner over time.
    """

    object_id: int
    template: ObjectTemplate
    trajectory: Trajectory

    _texture_offsets: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def object_class(self) -> ObjectClass:
        """Category of the object."""
        return self.template.object_class

    @property
    def width(self) -> float:
        """Silhouette width in pixels."""
        return self.template.width_px

    @property
    def height(self) -> float:
        """Silhouette height in pixels."""
        return self.template.height_px

    def is_active(self, t_us: int) -> bool:
        """``True`` when the object exists at time ``t_us``."""
        return self.trajectory.is_active(t_us)

    def bounding_box(self, t_us: int) -> BoundingBox:
        """Ground-truth bounding box at time ``t_us``."""
        x, y = self.trajectory.position(t_us)
        return BoundingBox(x, y, self.width, self.height)

    def velocity_px_per_frame(self, t_us: int, frame_duration_us: int) -> Tuple[float, float]:
        """Velocity expressed in pixels per frame of duration ``frame_duration_us``."""
        vx, vy = self.trajectory.velocity(t_us)
        return (vx * frame_duration_us, vy * frame_duration_us)

    def texture_offsets(self, rng: np.random.Generator) -> np.ndarray:
        """Horizontal offsets (fractions of width) of interior texture lines.

        The offsets are drawn once per object and cached, so the same
        windows / door seams persist across frames of the recording.
        """
        if self._texture_offsets is None:
            count = self.template.texture_lines
            if count <= 0:
                self._texture_offsets = np.empty(0)
            else:
                # Keep texture lines away from the outer edges, which are
                # modelled separately.
                self._texture_offsets = rng.uniform(0.15, 0.85, size=count)
                self._texture_offsets.sort()
        return self._texture_offsets
