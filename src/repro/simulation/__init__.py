"""Synthetic stationary-camera traffic scene simulator.

The paper evaluates on 1.1 hours of real DAVIS recordings at a traffic
junction (Table I), which are not publicly available.  This package is the
substitution documented in DESIGN.md: a scene simulator that produces
DAVIS-style event streams from moving objects (cars, buses, bikes, humans)
seen side-on by a stationary sensor, together with the ground-truth bounding
boxes the evaluation needs.

The simulator deliberately reproduces the properties that make the real data
hard for a tracker:

* events concentrate on object edges and high-contrast texture, so large
  plain-sided vehicles *fragment* into multiple event blobs (Section II-C);
* background-activity noise produces salt-and-pepper speckle in the EBBI;
* objects in different lanes occlude each other dynamically;
* static distractors (trees / foliage) generate events inside regions of
  exclusion;
* object sizes span an order of magnitude and speeds range from sub-pixel
  to several pixels per frame.
"""

from repro.simulation.event_generator import ObjectEventGenerator
from repro.simulation.ground_truth import GroundTruthBox, GroundTruthFrame, sample_ground_truth
from repro.simulation.objects import (
    OBJECT_TEMPLATES,
    ObjectClass,
    ObjectTemplate,
    SceneObject,
)
from repro.simulation.scene import Scene, SceneConfig, SimulationResult
from repro.simulation.traffic import TrafficScenarioConfig, build_traffic_scene
from repro.simulation.trajectories import (
    ConstantVelocityTrajectory,
    PiecewiseLinearTrajectory,
    StopAndGoTrajectory,
    Trajectory,
)

__all__ = [
    "ObjectClass",
    "ObjectTemplate",
    "OBJECT_TEMPLATES",
    "SceneObject",
    "Trajectory",
    "ConstantVelocityTrajectory",
    "StopAndGoTrajectory",
    "PiecewiseLinearTrajectory",
    "ObjectEventGenerator",
    "Scene",
    "SceneConfig",
    "SimulationResult",
    "GroundTruthBox",
    "GroundTruthFrame",
    "sample_ground_truth",
    "TrafficScenarioConfig",
    "build_traffic_scene",
]
