"""Interrupt-driven duty-cycle timing and energy model (Fig. 2).

In EBBIOT the processor sleeps between frames: a timer interrupt fires every
``tF`` (66 ms), the processor wakes, reads the EBBI out of the sensor, runs
noise filtering, region proposal and tracking, and goes back to sleep.  This
module models that cycle so the system-level energy advantage of the scheme
can be quantified and plotted (the reproduction of Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Sequence


class DutyCyclePhase(str, Enum):
    """Phases of one processor duty cycle."""

    SLEEP = "sleep"
    WAKE = "wake"
    READOUT = "readout"
    PROCESS = "process"


@dataclass(frozen=True)
class DutyCycleInterval:
    """One contiguous interval of a duty-cycle trace."""

    phase: DutyCyclePhase
    t_start_us: float
    t_end_us: float

    @property
    def duration_us(self) -> float:
        """Interval length in microseconds."""
        return self.t_end_us - self.t_start_us


@dataclass
class DutyCycleTrace:
    """A sequence of duty-cycle intervals covering a span of wall-clock time."""

    intervals: List[DutyCycleInterval] = field(default_factory=list)

    def total_time_us(self) -> float:
        """Total wall-clock time covered by the trace."""
        if not self.intervals:
            return 0.0
        return self.intervals[-1].t_end_us - self.intervals[0].t_start_us

    def time_in_phase(self, phase: DutyCyclePhase) -> float:
        """Total time spent in a given phase, in microseconds."""
        return sum(i.duration_us for i in self.intervals if i.phase == phase)

    def active_fraction(self) -> float:
        """Fraction of wall-clock time the processor is awake."""
        total = self.total_time_us()
        if total == 0:
            return 0.0
        awake = total - self.time_in_phase(DutyCyclePhase.SLEEP)
        return awake / total

    def as_rows(self) -> List[dict]:
        """Trace as a list of dicts (for printing / benchmark output)."""
        return [
            {
                "phase": interval.phase.value,
                "t_start_us": interval.t_start_us,
                "t_end_us": interval.t_end_us,
                "duration_us": interval.duration_us,
            }
            for interval in self.intervals
        ]


@dataclass(frozen=True)
class DutyCycleSummary:
    """Closed-form wake/sleep/energy accounting for a processed recording.

    What a duty-cycled fleet run reports per recording: how long the
    processor was awake, what fraction of wall-clock time that is, and the
    implied energy figures from the Fig. 2 model.  Produced by
    :meth:`DutyCycleModel.summarize`; attached to
    :class:`~repro.runtime.aggregate.RecordingResult` when the pipeline
    config carries a duty-cycle model.
    """

    num_frames: int
    active_fraction: float
    sleep_fraction: float
    active_time_us: float
    sleep_time_us: float
    average_power_mw: float
    energy_uj: float
    power_saving_factor: float

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "num_frames": self.num_frames,
            "active_fraction": self.active_fraction,
            "sleep_fraction": self.sleep_fraction,
            "active_time_us": self.active_time_us,
            "sleep_time_us": self.sleep_time_us,
            "average_power_mw": self.average_power_mw,
            "energy_uj": self.energy_uj,
            "power_saving_factor": self.power_saving_factor,
        }


@dataclass
class DutyCycleModel:
    """Timing/energy model of the duty-cycled EBBIOT processor.

    Parameters
    ----------
    frame_duration_us:
        Interrupt period ``tF`` (66 000 us in the paper).
    wakeup_time_us:
        Time to wake the processor from sleep.
    readout_time_us:
        Time to drain the EBBI from the sensor.
    processing_time_us:
        Time to run noise filtering + RPN + tracker for one frame.
    sleep_power_mw, active_power_mw:
        Processor power in sleep and active states, in milliwatts.  Default
        values are representative of a Cortex-M class IoT microcontroller.
    """

    frame_duration_us: float = 66_000.0
    wakeup_time_us: float = 100.0
    readout_time_us: float = 2_000.0
    processing_time_us: float = 5_000.0
    sleep_power_mw: float = 0.05
    active_power_mw: float = 30.0

    def __post_init__(self) -> None:
        active = self.wakeup_time_us + self.readout_time_us + self.processing_time_us
        if active >= self.frame_duration_us:
            raise ValueError(
                "active time per cycle "
                f"({active} us) must be smaller than the frame duration "
                f"({self.frame_duration_us} us) for duty cycling to make sense"
            )
        if min(self.sleep_power_mw, self.active_power_mw) < 0:
            raise ValueError("power values must be non-negative")

    # -- per-cycle quantities --------------------------------------------------------

    @property
    def active_time_per_cycle_us(self) -> float:
        """Awake time per frame (wake + readout + process)."""
        return self.wakeup_time_us + self.readout_time_us + self.processing_time_us

    @property
    def sleep_time_per_cycle_us(self) -> float:
        """Sleep time per frame."""
        return self.frame_duration_us - self.active_time_per_cycle_us

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the processor is awake."""
        return self.active_time_per_cycle_us / self.frame_duration_us

    @property
    def frame_rate_hz(self) -> float:
        """Effective frame rate (≈ 15 Hz for tF = 66 ms)."""
        return 1e6 / self.frame_duration_us

    def energy_per_cycle_uj(self) -> float:
        """Energy per frame in microjoules."""
        active_s = self.active_time_per_cycle_us * 1e-6
        sleep_s = self.sleep_time_per_cycle_us * 1e-6
        return (self.active_power_mw * active_s + self.sleep_power_mw * sleep_s) * 1e3

    def average_power_mw(self) -> float:
        """Average processor power in milliwatts."""
        return self.energy_per_cycle_uj() * 1e-3 / (self.frame_duration_us * 1e-6)

    def always_on_power_mw(self) -> float:
        """Power if the processor never slept (the event-interrupt baseline)."""
        return self.active_power_mw

    def power_saving_factor(self) -> float:
        """How many times less power the duty-cycled scheme uses."""
        average = self.average_power_mw()
        if average == 0:
            return float("inf")
        return self.always_on_power_mw() / average

    def battery_life_days(self, battery_capacity_mwh: float = 10_000.0) -> float:
        """Estimated node lifetime in days for a given battery capacity."""
        if battery_capacity_mwh <= 0:
            raise ValueError("battery capacity must be positive")
        hours = battery_capacity_mwh / self.average_power_mw()
        return hours / 24.0

    def summarize(self, num_frames: int) -> DutyCycleSummary:
        """Wake/sleep/energy summary for ``num_frames`` duty cycles.

        Closed form (every cycle is identical), so fleet runs can report
        duty statistics without materialising a :class:`DutyCycleTrace`.
        Matches :meth:`simulate`: ``summarize(n).active_fraction`` equals
        ``simulate(n).active_fraction()``.
        """
        if num_frames <= 0:
            raise ValueError(f"num_frames must be positive, got {num_frames}")
        return DutyCycleSummary(
            num_frames=num_frames,
            active_fraction=self.duty_cycle,
            sleep_fraction=1.0 - self.duty_cycle,
            active_time_us=num_frames * self.active_time_per_cycle_us,
            sleep_time_us=num_frames * self.sleep_time_per_cycle_us,
            average_power_mw=self.average_power_mw(),
            energy_uj=num_frames * self.energy_per_cycle_uj(),
            power_saving_factor=self.power_saving_factor(),
        )

    # -- trace generation --------------------------------------------------------------

    def simulate(self, num_frames: int, t_start_us: float = 0.0) -> DutyCycleTrace:
        """Generate the interval trace for ``num_frames`` duty cycles.

        This reproduces the timing diagram of Fig. 2: for each frame the
        processor sleeps, wakes on the interrupt, reads the sensor out and
        processes the frame.
        """
        if num_frames <= 0:
            raise ValueError(f"num_frames must be positive, got {num_frames}")
        intervals: List[DutyCycleInterval] = []
        t = t_start_us
        for _ in range(num_frames):
            sleep_end = t + self.sleep_time_per_cycle_us
            wake_end = sleep_end + self.wakeup_time_us
            readout_end = wake_end + self.readout_time_us
            process_end = readout_end + self.processing_time_us
            intervals.append(DutyCycleInterval(DutyCyclePhase.SLEEP, t, sleep_end))
            intervals.append(DutyCycleInterval(DutyCyclePhase.WAKE, sleep_end, wake_end))
            intervals.append(
                DutyCycleInterval(DutyCyclePhase.READOUT, wake_end, readout_end)
            )
            intervals.append(
                DutyCycleInterval(DutyCyclePhase.PROCESS, readout_end, process_end)
            )
            t += self.frame_duration_us
        return DutyCycleTrace(intervals)

    def compare_frame_durations(
        self, frame_durations_us: Sequence[float]
    ) -> List[dict]:
        """Sweep ``tF`` and report duty cycle / power for each value.

        Supports the paper's remark that the interrupt-driven scheme "loses
        appeal as tF becomes smaller".
        """
        rows = []
        for tf in frame_durations_us:
            model = DutyCycleModel(
                frame_duration_us=tf,
                wakeup_time_us=self.wakeup_time_us,
                readout_time_us=self.readout_time_us,
                processing_time_us=self.processing_time_us,
                sleep_power_mw=self.sleep_power_mw,
                active_power_mw=self.active_power_mw,
            )
            rows.append(
                {
                    "frame_duration_us": tf,
                    "frame_rate_hz": model.frame_rate_hz,
                    "duty_cycle": model.duty_cycle,
                    "average_power_mw": model.average_power_mw(),
                    "power_saving_factor": model.power_saving_factor(),
                }
            )
        return rows
