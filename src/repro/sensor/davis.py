"""DAVIS sensor geometry and pixel-latch ("sensor as memory") readout model.

The paper's key observation (Section II-A) is that an NVS pixel that has
fired an event is not reset until the event is read out, so the sensor array
itself stores a binary image of everything that happened while the processor
slept.  :class:`DavisSensor` models exactly that: events are latched into a
per-pixel flag, and a readout returns the binary frame and clears the
latches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.events.types import EVENT_DTYPE


@dataclass(frozen=True)
class SensorGeometry:
    """Resolution and optics of the sensor.

    Parameters
    ----------
    width, height:
        Pixel array size (``A x B``).  The DAVIS used in the paper is
        240 x 180.
    lens_focal_length_mm:
        Lens focal length; the two recordings in Table I use 12 mm (ENG) and
        6 mm (LT4), which changes the apparent size and speed of objects.
    """

    width: int = 240
    height: int = 180
    lens_focal_length_mm: float = 12.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"sensor resolution must be positive, got {self.width}x{self.height}"
            )
        if self.lens_focal_length_mm <= 0:
            raise ValueError(
                f"lens focal length must be positive, got {self.lens_focal_length_mm}"
            )

    @property
    def num_pixels(self) -> int:
        """Total pixel count ``A * B``."""
        return self.width * self.height

    @property
    def resolution(self) -> Tuple[int, int]:
        """Resolution as ``(width, height)``."""
        return (self.width, self.height)

    def scale_relative_to(self, reference: "SensorGeometry") -> float:
        """Apparent-size scale factor relative to another lens setting.

        A 6 mm lens makes objects appear half the size they would with a
        12 mm lens at the same distance; this helper is used by the dataset
        builders to derive LT4-like object sizes from ENG-like ones.
        """
        return self.lens_focal_length_mm / reference.lens_focal_length_mm


#: The DAVIS240 geometry used throughout the paper.
DAVIS240 = SensorGeometry(width=240, height=180, lens_focal_length_mm=12.0)


@dataclass
class DavisSensor:
    """Stateful pixel-latch model of a DAVIS sensor.

    Events are pushed into the sensor with :meth:`accumulate`; each event
    sets the corresponding pixel latch (optionally recording polarity).  A
    :meth:`readout` returns the accumulated binary frame — the EBBI — and
    resets all latches, modelling the processor waking up on its ``tF``
    interrupt and draining the sensor.

    Parameters
    ----------
    geometry:
        Sensor geometry (defaults to DAVIS240).
    track_polarity:
        When ``True`` the sensor also keeps separate ON/OFF latch planes,
        which some downstream classifiers want.  The EBBIOT pipeline itself
        ignores polarity (Section II-A: "only one possible event per pixel,
        ignoring polarity").
    """

    geometry: SensorGeometry = field(default_factory=lambda: DAVIS240)
    track_polarity: bool = False

    _latch: np.ndarray = field(init=False, repr=False)
    _on_latch: Optional[np.ndarray] = field(init=False, repr=False, default=None)
    _off_latch: Optional[np.ndarray] = field(init=False, repr=False, default=None)
    _events_since_readout: int = field(init=False, default=0)
    _total_events: int = field(init=False, default=0)
    _total_readouts: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.reset()

    # -- state management ----------------------------------------------------------

    def reset(self) -> None:
        """Clear all pixel latches and statistics."""
        height, width = self.geometry.height, self.geometry.width
        self._latch = np.zeros((height, width), dtype=np.uint8)
        if self.track_polarity:
            self._on_latch = np.zeros((height, width), dtype=np.uint8)
            self._off_latch = np.zeros((height, width), dtype=np.uint8)
        self._events_since_readout = 0
        self._total_events = 0
        self._total_readouts = 0

    # -- event accumulation --------------------------------------------------------

    def accumulate(self, events: np.ndarray) -> None:
        """Latch a packet of events into the pixel array.

        Multiple events at the same pixel leave a single latched ``1`` —
        exactly the information loss the EBBI accepts in exchange for the
        memory savings of Eq. (1).
        """
        if events.dtype != EVENT_DTYPE:
            raise TypeError(f"events must have dtype {EVENT_DTYPE}, got {events.dtype}")
        if len(events) == 0:
            return
        x = events["x"]
        y = events["y"]
        if (
            x.min() < 0
            or x.max() >= self.geometry.width
            or y.min() < 0
            or y.max() >= self.geometry.height
        ):
            raise ValueError("event coordinates fall outside the sensor array")
        self._latch[y, x] = 1
        if self.track_polarity:
            on = events["p"] > 0
            self._on_latch[y[on], x[on]] = 1
            self._off_latch[y[~on], x[~on]] = 1
        self._events_since_readout += len(events)
        self._total_events += len(events)

    # -- readout ---------------------------------------------------------------------

    def peek(self) -> np.ndarray:
        """Return a copy of the current latch state without clearing it."""
        return self._latch.copy()

    def readout(self) -> np.ndarray:
        """Read the accumulated binary frame and reset the latches.

        Returns
        -------
        numpy.ndarray
            ``(height, width)`` uint8 binary frame — the EBBI.
        """
        frame = self._latch.copy()
        self._latch.fill(0)
        if self.track_polarity:
            self._on_latch.fill(0)
            self._off_latch.fill(0)
        self._events_since_readout = 0
        self._total_readouts += 1
        return frame

    def readout_polarity(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read the combined, ON and OFF latch planes, then reset.

        Only available when ``track_polarity`` is enabled.
        """
        if not self.track_polarity:
            raise RuntimeError("polarity readout requires track_polarity=True")
        combined = self._latch.copy()
        on = self._on_latch.copy()
        off = self._off_latch.copy()
        self._latch.fill(0)
        self._on_latch.fill(0)
        self._off_latch.fill(0)
        self._events_since_readout = 0
        self._total_readouts += 1
        return combined, on, off

    # -- statistics -------------------------------------------------------------------

    @property
    def events_since_readout(self) -> int:
        """Events accumulated since the last readout."""
        return self._events_since_readout

    @property
    def active_pixel_count(self) -> int:
        """Number of currently latched pixels."""
        return int(self._latch.sum())

    @property
    def active_pixel_fraction(self) -> float:
        """Fraction of latched pixels (the paper's ``alpha``)."""
        return self.active_pixel_count / self.geometry.num_pixels

    @property
    def total_events(self) -> int:
        """Total events accumulated over the sensor's lifetime."""
        return self._total_events

    @property
    def total_readouts(self) -> int:
        """Total number of readouts performed."""
        return self._total_readouts

    def mean_events_per_frame(self) -> float:
        """Average events per readout so far (the paper's ``n``)."""
        if self._total_readouts == 0:
            return 0.0
        # Events still latched but not yet read out are excluded on purpose.
        return (self._total_events - self._events_since_readout) / self._total_readouts
