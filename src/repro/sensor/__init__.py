"""DAVIS sensor model: geometry, pixel-latch readout and duty-cycled timing.

The EBBIOT scheme re-uses the sensor pixel array as a one-bit memory: pixels
that fire are not reset until read out, so while the processor sleeps the
sensor itself accumulates the event-based binary image (Section II-A,
Fig. 2).  This package models that behaviour plus the interrupt-driven
duty-cycle timing / energy budget of the processor.
"""

from repro.sensor.davis import DavisSensor, SensorGeometry
from repro.sensor.duty_cycle import DutyCycleModel, DutyCyclePhase, DutyCycleTrace

__all__ = [
    "DavisSensor",
    "SensorGeometry",
    "DutyCycleModel",
    "DutyCyclePhase",
    "DutyCycleTrace",
]
