"""Annotation containers with (de)serialisation for synthetic recordings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.simulation.ground_truth import (
    GroundTruthFrame,
    ground_truth_frames_from_dict,
    ground_truth_frames_to_dict,
)


@dataclass
class RecordingAnnotations:
    """Ground-truth annotations for one recording.

    Attributes
    ----------
    frames:
        Ground-truth boxes sampled at regular instants.
    annotation_interval_us:
        Spacing of the annotation instants.
    """

    frames: List[GroundTruthFrame] = field(default_factory=list)
    annotation_interval_us: int = 66_000

    def __len__(self) -> int:
        return len(self.frames)

    def num_tracks(self) -> int:
        """Number of distinct ground-truth tracks (the evaluation weight)."""
        track_ids = set()
        for frame in self.frames:
            track_ids.update(frame.track_ids())
        return len(track_ids)

    def num_boxes(self) -> int:
        """Total annotated boxes across all instants."""
        return sum(len(frame) for frame in self.frames)

    def boxes_per_class(self) -> Dict[str, int]:
        """Annotated box count per object class."""
        counts: Dict[str, int] = {}
        for frame in self.frames:
            for box in frame.boxes:
                counts[box.object_class] = counts.get(box.object_class, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "annotation_interval_us": self.annotation_interval_us,
            "frames": ground_truth_frames_to_dict(self.frames),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecordingAnnotations":
        """Inverse of :meth:`to_dict`."""
        return cls(
            frames=ground_truth_frames_from_dict(data.get("frames", [])),
            annotation_interval_us=int(data.get("annotation_interval_us", 66_000)),
        )
