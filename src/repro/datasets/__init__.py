"""Datasets: synthetic Table I recordings and manifest-backed on-disk corpora.

Two halves:

* :mod:`repro.datasets.synthetic` renders Table I-like recordings with the
  traffic simulator;
* :mod:`repro.datasets.recorded` reads/writes manifest-backed datasets of
  recorded event files (any :data:`repro.events.io.EVENT_FORMATS` format)
  and exports synthetic fleets to that layout, so every execution layer can
  run from disk the way the paper's evaluation ran from DAVIS recordings.

Synthetic datasets reproduce the structure of Table I.

The paper's two recordings (ENG, 12 mm lens, ~3000 s, 107.5 M events and
LT4, 6 mm lens, ~1000 s, 12.5 M events) are replaced by synthetic
recordings with the same structure: two sites with different lens settings,
different traffic densities and different durations.  Full-length versions
would take a long time to simulate in pure Python, so the builders generate
a *scaled* recording (default 60 s / 30 s) and report both the simulated
statistics and the values extrapolated to the paper's durations.
"""

from repro.datasets.annotations import RecordingAnnotations
from repro.datasets.recorded import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    DatasetManifest,
    LoadedRecording,
    RecordingEntry,
    discover_datasets,
    export_fleet,
    load_manifest,
)
from repro.datasets.synthetic import (
    DatasetSpec,
    ENG_LIKE_SPEC,
    LT4_LIKE_SPEC,
    SyntheticRecording,
    build_recording,
    build_table1_datasets,
)

__all__ = [
    "RecordingAnnotations",
    "DatasetSpec",
    "ENG_LIKE_SPEC",
    "LT4_LIKE_SPEC",
    "SyntheticRecording",
    "build_recording",
    "build_table1_datasets",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "DatasetManifest",
    "LoadedRecording",
    "RecordingEntry",
    "discover_datasets",
    "export_fleet",
    "load_manifest",
]
