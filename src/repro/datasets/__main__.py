"""Command-line entry point: ``python -m repro.datasets``.

Three subcommands:

* **export** — render a synthetic fleet and snapshot it as a
  manifest-backed on-disk dataset (the recorded-workload corpus CI and the
  replay CLIs consume).
* **show** — print one dataset's recording table.
* **list** — discover dataset directories under a root.

Examples
--------
Export a four-scene fleet and replay it through the batch runtime::

    PYTHONPATH=src python -m repro.datasets export --scenes 4 --out dataset/
    PYTHONPATH=src python -m repro.runtime --dataset dataset/

Inspect what is on disk::

    PYTHONPATH=src python -m repro.datasets show dataset/
    PYTHONPATH=src python -m repro.datasets list .
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.datasets.recorded import (
    DatasetManifest,
    discover_datasets,
    export_fleet,
)
from repro.events.io import EVENT_FORMATS


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (separate so tests can introspect it)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets",
        description="Export, inspect and discover manifest-backed event datasets.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    export = commands.add_parser(
        "export", help="render a synthetic fleet and write it as a dataset"
    )
    export.add_argument(
        "--out", required=True, metavar="DIR", help="destination dataset directory"
    )
    export.add_argument(
        "--scenes", type=int, default=4, help="number of scenes to render (default 4)"
    )
    export.add_argument(
        "--duration",
        type=float,
        default=4.0,
        help="length of each recording in seconds (default 4)",
    )
    export.add_argument(
        "--seed", type=int, default=0, help="base seed for the fleet's traffic draws"
    )
    export.add_argument(
        "--format",
        choices=sorted(EVENT_FORMATS),
        default="npz",
        help="event file format (default npz)",
    )
    export.add_argument(
        "--name", default=None, help="dataset name (default: directory name)"
    )

    show = commands.add_parser("show", help="print one dataset's recording table")
    show.add_argument("dataset", metavar="DIR", help="dataset directory (or manifest)")

    discover = commands.add_parser(
        "list", help="discover dataset directories under a root"
    )
    discover.add_argument("root", metavar="DIR", nargs="?", default=".")
    return parser


def run_export(args: argparse.Namespace) -> int:
    if args.scenes <= 0:
        print("error: --scenes must be positive", file=sys.stderr)
        return 2
    if args.duration <= 0:
        print("error: --duration must be positive", file=sys.stderr)
        return 2
    # Imported here: only the export subcommand renders scenes, and
    # runtime.scenes itself imports this package.
    from repro.runtime.scenes import build_scene_recordings

    print(
        f"rendering {args.scenes} synthetic scene(s) of {args.duration:.1f} s each ...",
        flush=True,
    )
    recordings = build_scene_recordings(
        args.scenes, duration_s=args.duration, base_seed=args.seed
    )
    manifest = export_fleet(
        recordings,
        args.out,
        format=args.format,
        name=args.name,
        dataset_metadata={
            "exporter": "repro.datasets export",
            "scenes": args.scenes,
            "duration_s": args.duration,
            "seed": args.seed,
        },
    )
    print(manifest.format_table())
    print(f"wrote {len(manifest)} recording(s) + manifest to {manifest.manifest_path}")
    return 0


def run_show(args: argparse.Namespace) -> int:
    try:
        manifest = DatasetManifest.load(args.dataset)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(manifest.format_table())
    return 0


def run_list(args: argparse.Namespace) -> int:
    datasets = discover_datasets(args.root)
    if not datasets:
        print(f"no datasets found under {args.root}")
        return 0
    for directory in datasets:
        try:
            summary = DatasetManifest.load(directory).summary()
            print(
                f"{directory}  {summary['num_recordings']} recording(s), "
                f"{summary['total_events']} events, tags: "
                f"{','.join(summary['scene_tags']) or '-'}"
            )
        except ValueError as error:
            print(f"{directory}  INVALID: {error}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch to the selected subcommand.  Returns the exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "export":
        return run_export(args)
    if args.command == "show":
        return run_show(args)
    return run_list(args)


if __name__ == "__main__":
    raise SystemExit(main())
