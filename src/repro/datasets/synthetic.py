"""ENG-like and LT4-like synthetic recordings (Table I substitution).

Each :class:`DatasetSpec` describes one recording site: its lens, traffic
density, noise level and the full-length duration / event count the paper
reports.  :func:`build_recording` renders a scaled-down version with the
traffic simulator and wraps it with annotations and metadata;
:func:`build_table1_datasets` builds both sites and produces the rows of the
Table I reproduction (simulated values plus extrapolations to the paper's
full durations).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.datasets.annotations import RecordingAnnotations
from repro.sensor.davis import SensorGeometry
from repro.simulation.event_generator import FoliageDistractor
from repro.simulation.scene import SimulationResult
from repro.simulation.traffic import TrafficScenarioConfig, build_traffic_scene
from repro.utils.geometry import BoundingBox


@dataclass(frozen=True)
class DatasetSpec:
    """Specification of one recording site.

    Parameters
    ----------
    name:
        Site name (ENG / LT4 in the paper).
    lens_focal_length_mm:
        Lens used at the site (12 mm for ENG, 6 mm for LT4).
    paper_duration_s:
        Full recording duration reported in Table I.
    paper_num_events:
        Full event count reported in Table I.
    simulated_duration_s:
        Duration actually rendered by the simulator (laptop-scale).
    arrival_rate_per_s:
        Traffic density.
    noise_rate_hz_per_pixel:
        Background-activity noise rate; the ENG site's higher event count
        per second corresponds to denser traffic and a noisier sensor setup.
    include_foliage:
        Whether to add a tree-canopy distractor (exercises the ROE).
    seed:
        Seed for the recording's traffic draws.
    """

    name: str
    lens_focal_length_mm: float
    paper_duration_s: float
    paper_num_events: float
    simulated_duration_s: float
    arrival_rate_per_s: float
    noise_rate_hz_per_pixel: float
    include_foliage: bool
    seed: int


#: ENG: 12 mm lens, ~50 minutes, 107.5 M events (≈ 36 kev/s) — busy junction.
ENG_LIKE_SPEC = DatasetSpec(
    name="ENG",
    lens_focal_length_mm=12.0,
    paper_duration_s=2998.4,
    paper_num_events=107.5e6,
    simulated_duration_s=60.0,
    arrival_rate_per_s=0.35,
    noise_rate_hz_per_pixel=0.6,
    include_foliage=True,
    seed=12,
)

#: LT4: 6 mm lens, ~17 minutes, 12.5 M events (≈ 12.5 kev/s) — quieter site.
LT4_LIKE_SPEC = DatasetSpec(
    name="LT4",
    lens_focal_length_mm=6.0,
    paper_duration_s=999.5,
    paper_num_events=12.5e6,
    simulated_duration_s=30.0,
    arrival_rate_per_s=0.2,
    noise_rate_hz_per_pixel=0.3,
    include_foliage=False,
    seed=46,
)


@dataclass
class SyntheticRecording:
    """A rendered synthetic recording with annotations and metadata."""

    spec: DatasetSpec
    result: SimulationResult
    annotations: RecordingAnnotations

    @property
    def name(self) -> str:
        """Recording / site name."""
        return self.spec.name

    @property
    def stream(self):
        """The rendered event stream."""
        return self.result.stream

    def roe_boxes(self) -> List[BoundingBox]:
        """Regions of exclusion covering the recording's static distractors.

        The paper assumes the ROE is specified manually by the operator; for
        the synthetic recordings it is derived from the known distractor
        regions (padded by one pixel), exactly what an operator would draw.
        """
        return [d.region.expanded(1.0) for d in self.result.config.distractors]

    def table1_row(self) -> Dict[str, object]:
        """One row of the Table I reproduction.

        Reports the simulated duration and event count, the implied event
        rate, and the extrapolation of that rate to the paper's full
        recording duration, alongside the paper's own numbers.
        """
        simulated_duration = self.result.duration_s
        simulated_events = self.result.num_events
        event_rate = simulated_events / simulated_duration if simulated_duration else 0.0
        return {
            "location": self.spec.name,
            "lens_mm": self.spec.lens_focal_length_mm,
            "simulated_duration_s": simulated_duration,
            "simulated_num_events": simulated_events,
            "event_rate_per_s": event_rate,
            "extrapolated_num_events": event_rate * self.spec.paper_duration_s,
            "paper_duration_s": self.spec.paper_duration_s,
            "paper_num_events": self.spec.paper_num_events,
            "num_ground_truth_tracks": self.annotations.num_tracks(),
        }


def _scenario_config(
    spec: DatasetSpec, frame_duration_us: int
) -> TrafficScenarioConfig:
    """Translate a dataset spec into a traffic scenario configuration."""
    geometry = SensorGeometry(
        width=240, height=180, lens_focal_length_mm=spec.lens_focal_length_mm
    )
    foliage: List[FoliageDistractor] = []
    if spec.include_foliage:
        canopy = BoundingBox(0, geometry.height * 0.78, geometry.width * 0.22, geometry.height * 0.22)
        foliage.append(FoliageDistractor(region=canopy, events_per_pixel_per_s=1.5))
    return TrafficScenarioConfig(
        duration_s=spec.simulated_duration_s,
        geometry=geometry,
        arrival_rate_per_s=spec.arrival_rate_per_s,
        noise_rate_hz_per_pixel=spec.noise_rate_hz_per_pixel,
        foliage=foliage,
        seed=spec.seed,
    )


def build_recording(
    spec: DatasetSpec,
    frame_duration_us: int = 66_000,
    duration_override_s: Optional[float] = None,
) -> SyntheticRecording:
    """Render one synthetic recording from its spec.

    Parameters
    ----------
    spec:
        Site specification.
    frame_duration_us:
        Annotation interval (matches the EBBIOT frame duration so GT
        instants align with frame midpoints).
    duration_override_s:
        Render a shorter/longer version than the spec's default (tests use
        a few seconds; benchmarks use the full spec duration).
    """
    if duration_override_s is not None:
        spec = replace(spec, simulated_duration_s=duration_override_s)
    config = _scenario_config(spec, frame_duration_us)
    scene = build_traffic_scene(config)
    result = scene.render(
        duration_us=int(spec.simulated_duration_s * 1e6),
        ground_truth_interval_us=frame_duration_us,
    )
    annotations = RecordingAnnotations(
        frames=result.ground_truth, annotation_interval_us=frame_duration_us
    )
    return SyntheticRecording(spec=spec, result=result, annotations=annotations)


def build_table1_datasets(
    frame_duration_us: int = 66_000,
    duration_override_s: Optional[float] = None,
) -> List[SyntheticRecording]:
    """Build both Table I recordings (ENG-like then LT4-like)."""
    return [
        build_recording(ENG_LIKE_SPEC, frame_duration_us, duration_override_s),
        build_recording(LT4_LIKE_SPEC, frame_duration_us, duration_override_s),
    ]
