"""Manifest-backed on-disk datasets of recorded event streams.

The paper's evaluation runs on *recorded* traffic data: per-site recordings
with manual annotations (Table I).  This module gives the repo the same
workload shape without shipping binaries in the tree — a **dataset** is a
directory with a ``manifest.json`` describing its recordings:

.. code-block:: text

    dataset/
      manifest.json            # DatasetManifest: recordings, tags, metadata
      ENG-00.events.npz        # events in any EVENT_FORMATS format
      ENG-00.annotations.json  # RecordingAnnotations (optional per entry)
      LT4-01.events.npz
      ...

:func:`export_fleet` snapshots any rendered synthetic fleet into that
layout (so CI can build a recorded corpus on the fly), and the manifest's
:meth:`~DatasetManifest.load_entry` reads a recording back as an
:class:`~repro.events.stream.EventStream` plus its annotations and
regions of exclusion — everything ``repro.runtime --dataset`` and the
serving replay path need to reproduce the source fleet's evaluation
exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.datasets.annotations import RecordingAnnotations
from repro.events.io import EVENT_FORMATS, load_events
from repro.events.stream import EventStream
from repro.utils.geometry import BoundingBox

PathLike = Union[str, Path]

#: File name every dataset directory is identified by.
MANIFEST_NAME = "manifest.json"

#: Manifest schema version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class RecordingEntry:
    """One recording listed in a dataset manifest.

    Attributes
    ----------
    name:
        Recording identifier, unique within the dataset.
    events_file:
        Path of the event file, relative to the manifest directory.
    format:
        Event file format (a key of :data:`repro.events.io.EVENT_FORMATS`).
    width, height:
        Sensor resolution of the recording.
    num_events, duration_us:
        Stream statistics recorded at export time; :meth:`DatasetManifest
        .load_entry` cross-checks the event count so silent truncation of
        an event file cannot masquerade as a quiet recording.
    annotations_file:
        Optional path (relative) of the recording's ground-truth
        annotations JSON (:meth:`RecordingAnnotations.to_dict` layout).
    scene_tags:
        Free-form tags (site type, weather, ...) used for filtering.
    roe_boxes:
        Regions of exclusion as ``[x, y, width, height]`` rows — the
        operator-drawn static-distractor masks the pipeline config needs to
        reproduce the source run.
    metadata:
        Free-form JSON metadata (lens, seed, simulator spec, ...).
    """

    name: str
    events_file: str
    format: str
    width: int
    height: int
    num_events: int
    duration_us: int
    annotations_file: Optional[str] = None
    scene_tags: List[str] = field(default_factory=list)
    roe_boxes: List[List[float]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.format not in EVENT_FORMATS:
            raise ValueError(
                f"recording {self.name!r}: unknown event format {self.format!r} "
                f"(available: {sorted(EVENT_FORMATS)})"
            )
        for row in self.roe_boxes:
            if len(row) != 4:
                raise ValueError(
                    f"recording {self.name!r}: roe_boxes rows must be "
                    f"[x, y, width, height], got {list(row)}"
                )

    def roe_bounding_boxes(self) -> List[BoundingBox]:
        """The regions of exclusion as :class:`BoundingBox` objects."""
        return [BoundingBox(*row) for row in self.roe_boxes]

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "events_file": self.events_file,
            "format": self.format,
            "width": self.width,
            "height": self.height,
            "num_events": self.num_events,
            "duration_us": self.duration_us,
            "annotations_file": self.annotations_file,
            "scene_tags": list(self.scene_tags),
            "roe_boxes": [list(row) for row in self.roe_boxes],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: dict, source: str = "manifest") -> "RecordingEntry":
        """Inverse of :meth:`to_dict`, with explicit missing-key errors."""
        required = ("name", "events_file", "format", "width", "height")
        missing = [key for key in required if key not in data]
        if missing:
            raise ValueError(
                f"{source}: recording entry is missing keys {missing} "
                f"(got {sorted(data)})"
            )
        return cls(
            name=str(data["name"]),
            events_file=str(data["events_file"]),
            format=str(data["format"]),
            width=int(data["width"]),
            height=int(data["height"]),
            num_events=int(data.get("num_events", -1)),
            duration_us=int(data.get("duration_us", -1)),
            annotations_file=data.get("annotations_file"),
            scene_tags=[str(tag) for tag in data.get("scene_tags", [])],
            roe_boxes=[[float(v) for v in row] for row in data.get("roe_boxes", [])],
            metadata=dict(data.get("metadata", {})),
        )


@dataclass
class LoadedRecording:
    """One recording read back from disk, ready to become a runner job."""

    name: str
    stream: EventStream
    annotations: Optional[RecordingAnnotations]
    roe_boxes: List[BoundingBox]
    scene_tags: List[str]
    metadata: Dict[str, object]

    @property
    def ground_truth(self):
        """Ground-truth frames, or ``None`` when unannotated."""
        return list(self.annotations.frames) if self.annotations else None


@dataclass
class DatasetManifest:
    """The parsed ``manifest.json`` of one dataset directory.

    Attributes
    ----------
    root:
        Directory the manifest lives in; entry paths resolve against it.
    name:
        Dataset name.
    recordings:
        The dataset's recordings, in manifest order.
    metadata:
        Free-form dataset-level metadata (exporter arguments, notes).
    version:
        Manifest schema version.
    """

    root: Path
    name: str
    recordings: List[RecordingEntry] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def __len__(self) -> int:
        return len(self.recordings)

    def __iter__(self) -> Iterator[RecordingEntry]:
        return iter(self.recordings)

    @property
    def manifest_path(self) -> Path:
        """Path of the manifest file itself."""
        return Path(self.root) / MANIFEST_NAME

    def entry(self, name: str) -> RecordingEntry:
        """The entry called ``name`` (:class:`KeyError` when absent)."""
        for entry in self.recordings:
            if entry.name == name:
                return entry
        raise KeyError(
            f"dataset {self.name!r} has no recording {name!r}; "
            f"available: {[e.name for e in self.recordings]}"
        )

    def filtered(self, tag: str) -> List[RecordingEntry]:
        """Entries carrying ``tag`` in their scene tags."""
        return [entry for entry in self.recordings if tag in entry.scene_tags]

    # -- IO ------------------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable representation (``root`` stays implicit)."""
        return {
            "manifest_version": self.version,
            "name": self.name,
            "metadata": dict(self.metadata),
            "recordings": [entry.to_dict() for entry in self.recordings],
        }

    def save(self) -> Path:
        """Write ``manifest.json`` into :attr:`root`; returns its path."""
        path = self.manifest_path
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "DatasetManifest":
        """Load a manifest from a dataset directory or a manifest file.

        Raises
        ------
        FileNotFoundError
            When no ``manifest.json`` exists at/under ``path``.
        ValueError
            When the manifest is malformed or a newer schema version —
            named explicitly so the replay CLI can report the actual
            problem instead of a raw ``KeyError``.
        """
        path = Path(path)
        manifest_path = path / MANIFEST_NAME if path.is_dir() else path
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"no dataset manifest at {manifest_path} "
                f"(expected a directory containing {MANIFEST_NAME})"
            )
        with open(manifest_path, "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(f"{manifest_path} is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ValueError(f"{manifest_path}: manifest must be a JSON object")
        version = int(data.get("manifest_version", 0))
        if not 1 <= version <= MANIFEST_VERSION:
            raise ValueError(
                f"{manifest_path}: unsupported manifest_version {version} "
                f"(this library reads versions 1..{MANIFEST_VERSION})"
            )
        if "recordings" not in data:
            raise ValueError(f"{manifest_path}: manifest has no 'recordings' list")
        recordings = [
            RecordingEntry.from_dict(item, source=str(manifest_path))
            for item in data["recordings"]
        ]
        names = [entry.name for entry in recordings]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(
                f"{manifest_path}: duplicate recording names {duplicates}"
            )
        return cls(
            root=manifest_path.parent,
            name=str(data.get("name", manifest_path.parent.name)),
            recordings=recordings,
            metadata=dict(data.get("metadata", {})),
            version=version,
        )

    # -- recording access ----------------------------------------------------------------

    def load_entry(self, entry: Union[str, RecordingEntry]) -> LoadedRecording:
        """Read one recording's events (and annotations) back from disk."""
        if isinstance(entry, str):
            entry = self.entry(entry)
        events_path = Path(self.root) / entry.events_file
        if not events_path.exists():
            raise FileNotFoundError(
                f"dataset {self.name!r}: recording {entry.name!r} points at "
                f"missing event file {events_path}"
            )
        stream = load_events(
            events_path, format=entry.format, width=entry.width, height=entry.height
        )
        if stream.resolution != (entry.width, entry.height):
            raise ValueError(
                f"dataset {self.name!r}: recording {entry.name!r} resolution "
                f"{stream.resolution} does not match the manifest's "
                f"({entry.width}, {entry.height})"
            )
        if entry.num_events >= 0 and len(stream) != entry.num_events:
            raise ValueError(
                f"dataset {self.name!r}: recording {entry.name!r} has "
                f"{len(stream)} events but the manifest promises "
                f"{entry.num_events} — the event file is stale or truncated"
            )
        annotations = None
        if entry.annotations_file:
            annotations_path = Path(self.root) / entry.annotations_file
            if not annotations_path.exists():
                raise FileNotFoundError(
                    f"dataset {self.name!r}: recording {entry.name!r} points at "
                    f"missing annotations file {annotations_path}"
                )
            with open(annotations_path, "r", encoding="utf-8") as handle:
                annotations = RecordingAnnotations.from_dict(json.load(handle))
        return LoadedRecording(
            name=entry.name,
            stream=stream,
            annotations=annotations,
            roe_boxes=entry.roe_bounding_boxes(),
            scene_tags=list(entry.scene_tags),
            metadata=dict(entry.metadata),
        )

    def load_all(self) -> List[LoadedRecording]:
        """Read every recording in manifest order."""
        return [self.load_entry(entry) for entry in self.recordings]

    # -- reporting -----------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Dataset-level statistics for ``python -m repro.datasets show``."""
        return {
            "name": self.name,
            "root": str(self.root),
            "num_recordings": len(self.recordings),
            "total_events": sum(max(0, e.num_events) for e in self.recordings),
            "total_duration_s": sum(
                max(0, e.duration_us) for e in self.recordings
            )
            * 1e-6,
            "formats": sorted({e.format for e in self.recordings}),
            "scene_tags": sorted({t for e in self.recordings for t in e.scene_tags}),
            "annotated": sum(1 for e in self.recordings if e.annotations_file),
        }

    def format_table(self) -> str:
        """Human-readable per-recording listing."""
        header = (
            f"{'recording':<12} {'format':<7} {'res':>9} {'events':>10} "
            f"{'secs':>7} {'gt':>3} tags"
        )
        lines = [header, "-" * len(header)]
        for entry in self.recordings:
            lines.append(
                f"{entry.name:<12} {entry.format:<7} "
                f"{entry.width}x{entry.height:>4} {entry.num_events:>10} "
                f"{entry.duration_us * 1e-6:>7.1f} "
                f"{'yes' if entry.annotations_file else ' no'} "
                f"{','.join(entry.scene_tags)}"
            )
        summary = self.summary()
        lines.append("-" * len(header))
        lines.append(
            f"dataset {self.name!r}: {summary['num_recordings']} recording(s), "
            f"{summary['total_events']} events, "
            f"{summary['total_duration_s']:.1f} s of sensor time, "
            f"{summary['annotated']} annotated"
        )
        return "\n".join(lines)


def discover_datasets(root: PathLike) -> List[Path]:
    """Dataset directories at/under ``root`` (those holding a manifest).

    ``root`` itself counts when it contains a ``manifest.json``.  Results
    are sorted for determinism.
    """
    root = Path(root)
    if not root.exists():
        return []
    found = {p.parent for p in root.rglob(MANIFEST_NAME)}
    return sorted(found)


def load_manifest(path: PathLike) -> DatasetManifest:
    """Convenience alias for :meth:`DatasetManifest.load`."""
    return DatasetManifest.load(path)


def export_fleet(
    recordings: Sequence,
    directory: PathLike,
    format: str = "npz",
    name: Optional[str] = None,
    dataset_metadata: Optional[Dict[str, object]] = None,
) -> DatasetManifest:
    """Snapshot rendered synthetic recordings as a manifest-backed dataset.

    Writes one event file (in ``format``) and one annotations JSON per
    recording plus the ``manifest.json``, so CI and tests can build a
    recorded corpus on the fly instead of shipping binaries.  Replaying the
    result through ``python -m repro.runtime --dataset`` reproduces the
    source fleet's pooled CLEAR-MOT digits exactly: events, annotations and
    regions of exclusion all round-trip losslessly.

    Parameters
    ----------
    recordings:
        :class:`~repro.datasets.synthetic.SyntheticRecording` objects (or
        anything with ``name``, ``stream``, ``annotations``, ``roe_boxes()``
        and an optional ``spec``).
    directory:
        Destination dataset directory (created when missing).
    format:
        Event file format; a key of :data:`repro.events.io.EVENT_FORMATS`.
    name:
        Dataset name (defaults to the directory name).
    dataset_metadata:
        Extra dataset-level metadata merged into the manifest.
    """
    if format not in EVENT_FORMATS:
        raise ValueError(
            f"unknown event format {format!r}; available: {sorted(EVENT_FORMATS)}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    event_format = EVENT_FORMATS[format]
    entries: List[RecordingEntry] = []
    for recording in recordings:
        stream: EventStream = recording.stream
        events_file = f"{recording.name}.events{event_format.suffix}"
        event_format.save(directory / events_file, stream)
        annotations_file = None
        annotations = getattr(recording, "annotations", None)
        if annotations is not None and len(annotations):
            annotations_file = f"{recording.name}.annotations.json"
            with open(directory / annotations_file, "w", encoding="utf-8") as handle:
                json.dump(annotations.to_dict(), handle)
                handle.write("\n")
        roe = [
            [box.x, box.y, box.width, box.height] for box in recording.roe_boxes()
        ]
        spec = getattr(recording, "spec", None)
        metadata: Dict[str, object] = {}
        if spec is not None:
            metadata = {
                "site": spec.name.split("-")[0],
                "lens_focal_length_mm": spec.lens_focal_length_mm,
                "seed": spec.seed,
                "noise_rate_hz_per_pixel": spec.noise_rate_hz_per_pixel,
            }
        entries.append(
            RecordingEntry(
                name=recording.name,
                events_file=events_file,
                format=format,
                width=stream.width,
                height=stream.height,
                num_events=len(stream),
                duration_us=stream.duration_us,
                annotations_file=annotations_file,
                scene_tags=[recording.name.split("-")[0].lower()],
                roe_boxes=roe,
                metadata=metadata,
            )
        )
    manifest = DatasetManifest(
        root=directory,
        name=name or directory.name,
        recordings=entries,
        metadata=dict(dataset_metadata or {}),
    )
    manifest.save()
    return manifest
