"""Shared tracker interfaces and track output data structures.

Every tracker in this library — the EBBIOT overlap tracker, the Kalman
filter baseline and the EBMS baseline — reports its per-frame output as a
list of :class:`TrackObservation` so the evaluation harness can treat them
uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.utils.geometry import BoundingBox


class TrackState(str, Enum):
    """Lifecycle state of a track."""

    TENTATIVE = "tentative"
    CONFIRMED = "confirmed"
    LOST = "lost"


@dataclass(frozen=True)
class TrackObservation:
    """One tracker box reported at one frame instant.

    Attributes
    ----------
    track_id:
        Stable identifier of the track within its tracker.
    box:
        Reported bounding box.
    t_us:
        Time of the report (frame midpoint).
    velocity:
        Estimated velocity ``(vx, vy)`` in pixels per frame, when available.
    state:
        Lifecycle state of the track at this instant.
    """

    track_id: int
    box: BoundingBox
    t_us: int
    velocity: Optional[tuple] = None
    state: TrackState = TrackState.CONFIRMED

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "track_id": self.track_id,
            "t_us": self.t_us,
            "x": self.box.x,
            "y": self.box.y,
            "width": self.box.width,
            "height": self.box.height,
            "velocity": list(self.velocity) if self.velocity is not None else None,
            "state": self.state.value,
        }


@dataclass
class TrackHistory:
    """Accumulated per-track output over a whole recording."""

    observations: List[TrackObservation] = field(default_factory=list)

    def append(self, observation: TrackObservation) -> None:
        """Add one observation."""
        self.observations.append(observation)

    def extend(self, observations: Sequence[TrackObservation]) -> None:
        """Add several observations."""
        self.observations.extend(observations)

    def by_frame(self) -> Dict[int, List[TrackObservation]]:
        """Group observations by their frame timestamp."""
        frames: Dict[int, List[TrackObservation]] = {}
        for observation in self.observations:
            frames.setdefault(observation.t_us, []).append(observation)
        return frames

    def track_ids(self) -> List[int]:
        """Distinct track ids present in the history."""
        return sorted({o.track_id for o in self.observations})

    def __len__(self) -> int:
        return len(self.observations)


class TrackerBase(abc.ABC):
    """Common interface of frame-driven trackers.

    Frame-driven trackers (EBBIOT's overlap tracker, the KF baseline)
    consume one list of region proposals per frame.  The event-driven EBMS
    baseline additionally exposes ``process_events``; its ``process_frame``
    accepts the frame's raw events for interface compatibility.
    """

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all tracker state."""

    @abc.abstractmethod
    def process_frame(self, proposals, t_us: int) -> List[TrackObservation]:
        """Advance the tracker by one frame and return the active tracks."""

    @property
    @abc.abstractmethod
    def num_active_tracks(self) -> int:
        """Number of currently active (allocated) tracks."""
