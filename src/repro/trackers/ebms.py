"""Event-based mean-shift (EBMS) cluster tracker.

The fully event-driven baseline the paper compares against (Section II-C,
Eq. (8)) is the cluster tracker of Delbruck & Lang ("Robotic goalie",
Frontiers in Neuroscience 2013): every event either joins the nearest
existing cluster — shifting the cluster centre towards it (the "mean shift")
— or, if no cluster is close enough, seeds a new potential cluster.
Clusters become visible once they have absorbed enough events, merge when
they collide, and decay when no events support them.  Cluster velocity is
estimated by least-squares regression over the last ``history_length``
positions, matching the paper's assumption that "past 10 positions of a
cluster is used to calculate the current velocity".

The tracker consumes *NN-filtered* events (the event-driven pipeline is
NN-filt → EBMS).  For evaluation it is sampled at the same frame instants
as the frame-based trackers via :meth:`EbmsTracker.process_frame`.

The per-event loop exists twice: :meth:`EbmsTracker.process_events_scalar`
is the sequential reference (one event at a time, exactly as an embedded
event processor would run it), and the default
:meth:`EbmsTracker.process_events` is a screened fast path that reaches
bit-identical cluster state — same centres, spreads, counts, histories,
merges and decays — by skipping only work the reference provably would not
do (see the method docstring).  ``REPRO_FORCE_SCALAR=1`` or
``EbmsTracker(vectorized=False)`` pins the reference path;
``tests/test_event_path_parity.py`` asserts the equivalence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.trackers.base import TrackerBase, TrackObservation, TrackState
from repro.utils.fastpath import scalar_forced
from repro.utils.geometry import BoundingBox

#: Sub-chunk size for the vectorized distance screen: one ``chunk x CL``
#: chebyshev-distance evaluation per screen rebuild.
EBMS_SCREEN_CHUNK = 512


@dataclass
class EbmsConfig:
    """Parameters of the EBMS cluster tracker.

    Parameters
    ----------
    max_clusters:
        Maximum simultaneous clusters ``CLmax`` (8 in the paper).
    cluster_radius_px:
        Capture radius of a cluster: events within this distance of a
        cluster centre are assigned to it.
    mixing_factor:
        Fraction by which the cluster centre moves towards each assigned
        event (the mean-shift step size).
    support_threshold_events:
        Events a potential cluster must absorb before it becomes visible.
    decay_time_us:
        A cluster not updated for this long is removed.
    history_length:
        Number of past positions used for the least-squares velocity fit
        (10 in the paper's cost model).
    history_interval_us:
        Minimum spacing between stored history positions.  Sampling the
        cluster centre at most every few milliseconds makes the velocity
        regression span a meaningful time window instead of the last handful
        of (microsecond-spaced) events.
    merge_distance_px:
        Two clusters closer than this are merged.
    """

    max_clusters: int = 8
    cluster_radius_px: float = 25.0
    mixing_factor: float = 0.1
    support_threshold_events: int = 60
    decay_time_us: int = 150_000
    history_length: int = 10
    history_interval_us: int = 10_000
    merge_distance_px: float = 15.0

    def __post_init__(self) -> None:
        if self.max_clusters < 1:
            raise ValueError(f"max_clusters must be >= 1, got {self.max_clusters}")
        if self.cluster_radius_px <= 0:
            raise ValueError("cluster_radius_px must be positive")
        if not 0.0 < self.mixing_factor <= 1.0:
            raise ValueError("mixing_factor must be in (0, 1]")
        if self.support_threshold_events < 1:
            raise ValueError("support_threshold_events must be >= 1")
        if self.decay_time_us <= 0:
            raise ValueError("decay_time_us must be positive")
        if self.history_length < 2:
            raise ValueError("history_length must be >= 2")
        if self.history_interval_us < 0:
            raise ValueError("history_interval_us must be non-negative")


@dataclass
class EbmsCluster:
    """One mean-shift cluster."""

    cluster_id: int
    cx: float
    cy: float
    last_update_us: int
    event_count: int = 0
    visible: bool = False
    # Spread estimates drive the reported box size.
    spread_x: float = 10.0
    spread_y: float = 10.0
    position_history: Deque[Tuple[int, float, float]] = field(default_factory=deque)

    def box(self) -> BoundingBox:
        """Bounding box derived from the cluster centre and spread."""
        width = max(4.0, 2.5 * self.spread_x)
        height = max(4.0, 2.5 * self.spread_y)
        return BoundingBox.from_center(self.cx, self.cy, width, height)

    def velocity(self) -> Tuple[float, float]:
        """Velocity in pixels per second from a least-squares fit of history.

        The slope of an ordinary least-squares line through ``history_length``
        points has the closed form ``cov(t, x) / var(t)``; with at most ten
        points the direct sums beat a general ``lstsq`` solve by two orders
        of magnitude, which matters because every visible cluster is fitted
        at every sampled frame.
        """
        if len(self.position_history) < 2:
            return (0.0, 0.0)
        entries = list(self.position_history)
        t0 = entries[0][0]
        if entries[-1][0] <= t0:
            return (0.0, 0.0)
        count = len(entries)
        times_s = [(entry[0] - t0) * 1e-6 for entry in entries]
        mean_t = sum(times_s) / count
        mean_x = sum(entry[1] for entry in entries) / count
        mean_y = sum(entry[2] for entry in entries) / count
        var_t = 0.0
        cov_tx = 0.0
        cov_ty = 0.0
        for offset_t, entry in zip(times_s, entries):
            dt = offset_t - mean_t
            var_t += dt * dt
            cov_tx += dt * (entry[1] - mean_x)
            cov_ty += dt * (entry[2] - mean_y)
        if var_t <= 0.0:
            return (0.0, 0.0)
        return (cov_tx / var_t, cov_ty / var_t)


@dataclass(frozen=True)
class EbmsState:
    """Immutable snapshot of an :class:`EbmsTracker`'s full state.

    Clusters are deep-copied (their position-history deques included) so the
    live tracker can keep mutating without disturbing the checkpoint.
    """

    clusters: Tuple[EbmsCluster, ...]
    next_cluster_id: int
    events_processed: int
    merges: int
    frames_processed: int
    total_visible_clusters: int


def _copy_cluster(cluster: EbmsCluster) -> EbmsCluster:
    """Deep copy of one cluster (fresh deque, same entries)."""
    copied = EbmsCluster(
        cluster_id=cluster.cluster_id,
        cx=cluster.cx,
        cy=cluster.cy,
        last_update_us=cluster.last_update_us,
        event_count=cluster.event_count,
        visible=cluster.visible,
        spread_x=cluster.spread_x,
        spread_y=cluster.spread_y,
    )
    copied.position_history.extend(cluster.position_history)
    return copied


class EbmsTracker(TrackerBase):
    """Event-based mean-shift cluster tracker.

    ``vectorized=False`` pins this instance to the scalar reference loop
    (the ``REPRO_FORCE_SCALAR`` environment variable overrides all
    instances); both paths produce bit-identical cluster state.
    """

    def __init__(
        self, config: Optional[EbmsConfig] = None, vectorized: bool = True
    ) -> None:
        self.config = config or EbmsConfig()
        self.vectorized = vectorized
        self._clusters: Dict[int, EbmsCluster] = {}
        self._next_cluster_id = 1
        self._events_processed = 0
        self._merges = 0
        self._frames_processed = 0
        self._total_visible_clusters = 0
        # Conservatively assume a residual close pair may exist until a full
        # merge pass proves otherwise (see process_events); running an extra
        # pass is always semantically identical to the reference, which runs
        # one after every assigned event.
        self._merge_residual = True

    # -- TrackerBase interface ---------------------------------------------------------------

    def reset(self) -> None:
        """Clear all clusters and statistics."""
        self._clusters.clear()
        self._next_cluster_id = 1
        self._events_processed = 0
        self._merges = 0
        self._frames_processed = 0
        self._total_visible_clusters = 0
        self._merge_residual = True

    @property
    def num_active_tracks(self) -> int:
        """Number of visible clusters."""
        return sum(1 for c in self._clusters.values() if c.visible)

    @property
    def num_clusters(self) -> int:
        """Number of clusters including not-yet-visible potential clusters."""
        return len(self._clusters)

    @property
    def events_processed(self) -> int:
        """Total events processed since the last reset."""
        return self._events_processed

    @property
    def merges_performed(self) -> int:
        """Number of cluster merges performed."""
        return self._merges

    @property
    def mean_visible_clusters(self) -> float:
        """Mean visible clusters per sampled frame (the paper's ``CL`` ≈ 2)."""
        if self._frames_processed == 0:
            return 0.0
        return self._total_visible_clusters / self._frames_processed

    def snapshot(self) -> EbmsState:
        """Capture the complete tracker state (clusters deep-copied)."""
        return EbmsState(
            clusters=tuple(_copy_cluster(c) for c in self._clusters.values()),
            next_cluster_id=self._next_cluster_id,
            events_processed=self._events_processed,
            merges=self._merges,
            frames_processed=self._frames_processed,
            total_visible_clusters=self._total_visible_clusters,
        )

    def restore(self, state: EbmsState) -> None:
        """Reinstate a previously captured :class:`EbmsState`."""
        self._clusters = {
            cluster.cluster_id: _copy_cluster(cluster) for cluster in state.clusters
        }
        self._next_cluster_id = state.next_cluster_id
        self._events_processed = state.events_processed
        self._merges = state.merges
        self._frames_processed = state.frames_processed
        self._total_visible_clusters = state.total_visible_clusters
        # The snapshot does not track merge-pass residue; assume the worst.
        self._merge_residual = True

    # -- event-driven operation ------------------------------------------------------------------

    def process_events(self, events: np.ndarray) -> None:
        """Feed a time-sorted packet of (NN-filtered) events to the tracker.

        Dispatches to the screened fast path unless the scalar reference is
        forced; the resulting cluster state is bit-identical either way.
        """
        if not self.vectorized or len(events) < 2 or scalar_forced():
            return self.process_events_scalar(events)
        return self._process_events_fast(events)

    def process_events_scalar(self, events: np.ndarray) -> None:
        """The sequential per-event reference implementation."""
        config = self.config
        for index in range(len(events)):
            x = float(events["x"][index])
            y = float(events["y"][index])
            t = int(events["t"][index])
            self._events_processed += 1

            cluster = self._nearest_cluster(x, y)
            if cluster is None:
                if len(self._clusters) < config.max_clusters:
                    self._seed_cluster(x, y, t)
                continue

            # Mean-shift update of the cluster centre towards the event.
            mix = config.mixing_factor
            distance_x = x - cluster.cx
            distance_y = y - cluster.cy
            cluster.cx += mix * distance_x
            cluster.cy += mix * distance_y
            cluster.spread_x = (1 - mix) * cluster.spread_x + mix * abs(distance_x)
            cluster.spread_y = (1 - mix) * cluster.spread_y + mix * abs(distance_y)
            cluster.event_count += 1
            cluster.last_update_us = t
            if not cluster.visible and cluster.event_count >= config.support_threshold_events:
                cluster.visible = True
            # Sample the position history at a bounded rate so the velocity
            # regression spans a meaningful time window.
            if (
                not cluster.position_history
                or t - cluster.position_history[-1][0] >= config.history_interval_us
            ):
                cluster.position_history.append((t, cluster.cx, cluster.cy))
                while len(cluster.position_history) > config.history_length:
                    cluster.position_history.popleft()

            self._decay_clusters(t)
            self._merge_close_clusters()
        # The reference loop does not track merge-pass residue; leave the
        # fast path conservative in case the two are interleaved.
        self._merge_residual = True

    def _process_events_fast(self, events: np.ndarray) -> None:
        """Screened fast path — bit-identical to the scalar reference.

        The reference loop is sequential (every assigned event moves its
        cluster, which changes the next event's assignment), but almost all
        of its per-event work is provably skippable:

        * **Vectorized distance screen.**  Per sub-chunk, one NumPy pass
          computes every event's chebyshev distance to the chunk-start
          cluster centres.  An assignment moves a centre by at most
          ``mixing_factor * cluster_radius_px`` per axis, so an event whose
          chunk-start distance exceeds ``radius + drift * assigned_so_far``
          is guaranteed to miss every cluster at its processing moment —
          with the cluster set full, such events are pure skips (the
          reference would only count them), and runs of them are skipped in
          bulk without touching Python-level cluster math.
        * **Deadline-gated decay.**  The reference calls ``_decay_clusters``
          after every assigned event; it is a no-op until ``t`` exceeds
          ``min(last_update) + decay_time_us``, so the fast path only calls
          it past that deadline.
        * **Move-gated merging.**  The reference runs a full merge pass
          after every assigned event; a pass can only merge if the just-
          moved cluster came within ``merge_distance_px`` of another, or if
          a previous pass merged (cascade residue, tracked by
          ``_merge_residual``) or seeded within reach.  Otherwise the pass
          is provably empty and is skipped; when the gate trips, the *same*
          ``_merge_close_clusters`` routine runs, preserving the reference's
          exact pair ordering and cascade behaviour.

        Any event that changes the cluster *set* (seed, merge, decay
        removal) invalidates the screen; the outer loop then rebuilds it
        from the current state and continues.  All floating-point updates
        use the very expressions of the reference on the same Python floats,
        so centres, spreads and histories agree bit for bit.
        """
        config = self.config
        n = len(events)
        xs = events["x"].astype(np.float64)
        ys = events["y"].astype(np.float64)
        xs_list = xs.tolist()
        ys_list = ys.tolist()
        ts_list = events["t"].astype(np.int64).tolist()
        radius = config.cluster_radius_px
        mix = config.mixing_factor
        one_minus_mix = 1 - mix
        decay_us = config.decay_time_us
        merge_dist = config.merge_distance_px
        max_clusters = config.max_clusters
        interval = config.history_interval_us
        history_length = config.history_length
        support_threshold = config.support_threshold_events
        seed_can_pair = merge_dist > radius
        processed = 0

        i = 0
        while i < n:
            if not self._clusters:
                # No clusters: the event misses everything and seeds (a lone
                # cluster cannot pair, so no merge residue).
                processed += 1
                self._seed_cluster(xs_list[i], ys_list[i], ts_list[i])
                i += 1
                continue
            # Mirror the cluster state into flat locals: the inner loop runs
            # on list indexing and plain floats, and the objects are synced
            # back only at lifecycle points (decay/merge/seed/chunk end).
            clusters = list(self._clusters.values())
            num_clusters = len(clusters)
            cx_list = [c.cx for c in clusters]
            cy_list = [c.cy for c in clusters]
            spread_x_list = [c.spread_x for c in clusters]
            spread_y_list = [c.spread_y for c in clusters]
            count_list = [c.event_count for c in clusters]
            visible_list = [c.visible for c in clusters]
            update_list = [c.last_update_us for c in clusters]
            histories = [c.position_history for c in clusters]
            at_capacity = num_clusters >= max_clusters

            def sync_clusters() -> None:
                for k in range(num_clusters):
                    mirror = clusters[k]
                    mirror.cx = cx_list[k]
                    mirror.cy = cy_list[k]
                    mirror.spread_x = spread_x_list[k]
                    mirror.spread_y = spread_y_list[k]
                    mirror.event_count = count_list[k]
                    mirror.visible = visible_list[k]
                    mirror.last_update_us = update_list[k]

            # Merge-gate baseline: a pair's gap can shrink by at most the
            # two clusters' drifts since the baseline, so while the moved
            # cluster's drift plus the largest drift fits inside its
            # baseline slack, no pair test is needed at all.  Slack is kept
            # per cluster (all measured at one baseline instant) so two
            # clusters sitting close only tax their own assignments.
            def compute_slacks() -> list:
                slacks = [float("inf")] * num_clusters
                for a in range(num_clusters):
                    ax = cx_list[a]
                    ay = cy_list[a]
                    nearest_gap = slacks[a]
                    for b in range(num_clusters):
                        if b == a:
                            continue
                        dx = ax - cx_list[b]
                        if dx < 0.0:
                            dx = -dx
                        dy = ay - cy_list[b]
                        if dy < 0.0:
                            dy = -dy
                        gap = dx if dx > dy else dy
                        if gap < nearest_gap:
                            nearest_gap = gap
                    slacks[a] = nearest_gap - merge_dist
                return slacks

            slack_list = compute_slacks()
            # Screen-validity bookkeeping uses each cluster's actual
            # *displacement* from the reference positions, not its summed
            # path length: a mean-shift cluster oscillates around its blob,
            # so displacement stays small while path length grows without
            # bound — this is what keeps the chunk-start screen usable.
            # Two baselines: the chunk start (miss screen + argmin
            # validity) and the merge-gate anchor (re-anchorable mid-chunk).
            start_x = list(cx_list)
            start_y = list(cy_list)
            disp = [0.0] * num_clusters
            max_disp = 0.0
            anchor_x = list(cx_list)
            anchor_y = list(cy_list)
            gate_max = 0.0
            since_rebase = 0

            stop = min(i + EBMS_SCREEN_CHUNK, n)
            distance_stack = np.maximum(
                np.abs(xs[i:stop, None] - np.array(cx_list)[None, :]),
                np.abs(ys[i:stop, None] - np.array(cy_list)[None, :]),
            )
            # Best / second-best chunk-start distances: while the clusters'
            # displacements keep the ordering unambiguous, the argmin *is*
            # the nearest cluster and the per-event Python scan is skipped.
            nearest = distance_stack.argmin(axis=1).tolist()
            dmin = distance_stack.min(axis=1).tolist()
            if num_clusters > 1:
                second = np.partition(distance_stack, 1, axis=1)[:, 1].tolist()
            else:
                second = [float("inf")] * (stop - i)
            deadline = min(update_list) + decay_us
            miss_limit = radius  # = radius + max_disp, kept in sync below
            base = i
            j = i
            while j < stop:
                event_dmin = dmin[j - base]
                if event_dmin > miss_limit:
                    # Guaranteed miss at processing time.
                    if at_capacity:
                        # Nothing moves during a run of misses, so the limit
                        # is constant: skip the whole run in one scan.
                        k = j + 1
                        while k < stop and dmin[k - base] > miss_limit:
                            k += 1
                        processed += k - j
                        j = k
                        continue
                    processed += 1
                    sync_clusters()
                    self._seed_cluster(xs_list[j], ys_list[j], ts_list[j])
                    if seed_can_pair:
                        self._merge_residual = True
                    j += 1
                    break
                x = xs_list[j]
                y = ys_list[j]
                t = ts_list[j]
                processed += 1
                nearest_index = nearest[j - base]
                nearest_disp = disp[nearest_index]
                second_distance = second[j - base]
                if (
                    event_dmin + nearest_disp <= radius
                    and second_distance - event_dmin > nearest_disp + max_disp
                ):
                    # The chunk-start argmin is still the unique nearest
                    # cluster and still within radius: assign directly.
                    best_index = nearest_index
                elif second_distance - max_disp > radius:
                    # Every cluster except the chunk-start nearest is
                    # provably out of reach: one exact distance decides
                    # between assigning to it and missing entirely.
                    dx = x - cx_list[nearest_index]
                    if dx < 0.0:
                        dx = -dx
                    dy = y - cy_list[nearest_index]
                    if dy < 0.0:
                        dy = -dy
                    if (dx if dx > dy else dy) <= radius:
                        best_index = nearest_index
                    else:
                        if at_capacity:
                            j += 1
                            continue
                        sync_clusters()
                        self._seed_cluster(x, y, t)
                        if seed_can_pair:
                            self._merge_residual = True
                        j += 1
                        break
                else:
                    # Exact nearest-cluster test, same dict order and <= tie
                    # break as the reference's _nearest_cluster.
                    best_index = -1
                    best_distance = radius
                    for k in range(num_clusters):
                        dx = x - cx_list[k]
                        if dx < 0.0:
                            dx = -dx
                        dy = y - cy_list[k]
                        if dy < 0.0:
                            dy = -dy
                        distance = dx if dx > dy else dy
                        if distance <= best_distance:
                            best_index = k
                            best_distance = distance
                    if best_index < 0:
                        if at_capacity:
                            j += 1
                            continue
                        sync_clusters()
                        self._seed_cluster(x, y, t)
                        if seed_can_pair:
                            self._merge_residual = True
                        j += 1
                        break
                # Mean-shift update: identical arithmetic to the reference.
                cx = cx_list[best_index]
                cy = cy_list[best_index]
                distance_x = x - cx
                distance_y = y - cy
                cx += mix * distance_x
                cy += mix * distance_y
                cx_list[best_index] = cx
                cy_list[best_index] = cy
                if distance_x < 0.0:
                    distance_x = -distance_x
                if distance_y < 0.0:
                    distance_y = -distance_y
                spread_x_list[best_index] = (
                    one_minus_mix * spread_x_list[best_index] + mix * distance_x
                )
                spread_y_list[best_index] = (
                    one_minus_mix * spread_y_list[best_index] + mix * distance_y
                )
                count = count_list[best_index] + 1
                count_list[best_index] = count
                update_list[best_index] = t
                if not visible_list[best_index] and count >= support_threshold:
                    visible_list[best_index] = True
                history = histories[best_index]
                if not history or t - history[-1][0] >= interval:
                    history.append((t, cx, cy))
                    while len(history) > history_length:
                        history.popleft()
                j += 1
                # Refresh the displacement bounds from the actual new
                # position.  The lazy maxima only ever grow (a cluster that
                # wanders back leaves them conservatively high until the
                # next screen/anchor rebuild), which keeps them upper
                # bounds without rescanning all clusters.
                ddx = cx - start_x[best_index]
                if ddx < 0.0:
                    ddx = -ddx
                ddy = cy - start_y[best_index]
                if ddy < 0.0:
                    ddy = -ddy
                disp_k = ddx if ddx > ddy else ddy
                disp[best_index] = disp_k
                if disp_k > max_disp:
                    max_disp = disp_k
                    miss_limit = radius + max_disp
                gdx = cx - anchor_x[best_index]
                if gdx < 0.0:
                    gdx = -gdx
                gdy = cy - anchor_y[best_index]
                if gdy < 0.0:
                    gdy = -gdy
                gate_k = gdx if gdx > gdy else gdy
                if gate_k > gate_max:
                    gate_max = gate_k
                since_rebase += 1
                # Lifecycle, in the reference's order: decay, then merge.
                removed = False
                if t > deadline:
                    sync_clusters()
                    before = len(self._clusters)
                    self._decay_clusters(t)
                    removed = len(self._clusters) != before
                    if not removed:
                        deadline = min(update_list) + decay_us
                need_pass = self._merge_residual
                if not need_pass and gate_k + gate_max > slack_list[best_index]:
                    # Drift budget exhausted: exact test of the moved cluster
                    # against the others (only its pairs can newly violate).
                    for k in range(num_clusters):
                        if k == best_index:
                            continue
                        dx = cx - cx_list[k]
                        if dx < 0.0:
                            dx = -dx
                        dy = cy - cy_list[k]
                        if dy < 0.0:
                            dy = -dy
                        if (dx if dx > dy else dy) < merge_dist:
                            need_pass = True
                            break
                    if not need_pass and since_rebase >= 64:
                        # Amortized re-anchor: reset the displacement budget
                        # at the current positions so accumulated movement
                        # stops tripping the gate for well-separated
                        # clusters.
                        slack_list = compute_slacks()
                        anchor_x = list(cx_list)
                        anchor_y = list(cy_list)
                        gate_max = 0.0
                        since_rebase = 0
                if need_pass:
                    sync_clusters()
                    merges_before = self._merges
                    self._merge_close_clusters()
                    merged_now = self._merges != merges_before
                    self._merge_residual = merged_now
                    if merged_now:
                        break
                if removed:
                    break
            else:
                # Chunk drained with no set change: publish the mirrors.
                sync_clusters()
                i = j
                continue
            # The inner loop broke on a cluster-set change (seed, merge,
            # decay removal) or a stale screen: screen and mirrors are
            # rebuilt at the top.  Decay/merge paths synced before mutating;
            # seed and stale-screen paths synced explicitly; nothing was
            # mirrored after the sync.
            i = j
        self._events_processed += processed

    def process_frame(
        self, events: np.ndarray, t_us: int
    ) -> List[TrackObservation]:
        """Feed one frame's events, then report the visible clusters.

        Unlike the frame-based trackers the argument is the frame's raw
        (NN-filtered) event packet rather than region proposals; the shared
        signature lets the evaluation harness drive all trackers the same way.
        """
        self.process_events(events)
        # Clusters that received no events this frame still age out.
        self._decay_clusters(t_us)
        self._frames_processed += 1
        observations: List[TrackObservation] = []
        for cluster in self._clusters.values():
            if not cluster.visible:
                continue
            velocity_px_per_s = cluster.velocity()
            observations.append(
                TrackObservation(
                    track_id=cluster.cluster_id,
                    box=cluster.box(),
                    t_us=t_us,
                    velocity=velocity_px_per_s,
                    state=TrackState.CONFIRMED,
                )
            )
        self._total_visible_clusters += len(observations)
        return observations

    # -- internals -----------------------------------------------------------------------------------

    def _nearest_cluster(self, x: float, y: float) -> Optional[EbmsCluster]:
        """Closest cluster whose capture radius contains the event, if any."""
        best_cluster: Optional[EbmsCluster] = None
        best_distance = self.config.cluster_radius_px
        for cluster in self._clusters.values():
            distance = max(abs(x - cluster.cx), abs(y - cluster.cy))
            if distance <= best_distance:
                best_cluster = cluster
                best_distance = distance
        return best_cluster

    def _seed_cluster(self, x: float, y: float, t: int) -> None:
        """Create a new potential cluster at the event position."""
        cluster = EbmsCluster(
            cluster_id=self._next_cluster_id,
            cx=x,
            cy=y,
            last_update_us=t,
            event_count=1,
        )
        cluster.position_history.append((t, x, y))
        self._clusters[cluster.cluster_id] = cluster
        self._next_cluster_id += 1

    def _decay_clusters(self, now_us: int) -> None:
        """Remove clusters that have not been updated recently."""
        stale = [
            cluster_id
            for cluster_id, cluster in self._clusters.items()
            if now_us - cluster.last_update_us > self.config.decay_time_us
        ]
        for cluster_id in stale:
            del self._clusters[cluster_id]

    def _merge_close_clusters(self) -> None:
        """Merge pairs of clusters whose centres are too close."""
        cluster_ids = list(self._clusters.keys())
        for i in range(len(cluster_ids)):
            for j in range(i + 1, len(cluster_ids)):
                id_i, id_j = cluster_ids[i], cluster_ids[j]
                if id_i not in self._clusters or id_j not in self._clusters:
                    continue
                cluster_i = self._clusters[id_i]
                cluster_j = self._clusters[id_j]
                distance = max(
                    abs(cluster_i.cx - cluster_j.cx), abs(cluster_i.cy - cluster_j.cy)
                )
                if distance >= self.config.merge_distance_px:
                    continue
                # Keep the cluster with more support; absorb the other.
                keep, drop = (
                    (cluster_i, cluster_j)
                    if cluster_i.event_count >= cluster_j.event_count
                    else (cluster_j, cluster_i)
                )
                total = keep.event_count + drop.event_count
                keep.cx = (keep.cx * keep.event_count + drop.cx * drop.event_count) / total
                keep.cy = (keep.cy * keep.event_count + drop.cy * drop.event_count) / total
                keep.event_count = total
                keep.spread_x = max(keep.spread_x, drop.spread_x)
                keep.spread_y = max(keep.spread_y, drop.spread_y)
                keep.visible = keep.visible or drop.visible
                keep.last_update_us = max(keep.last_update_us, drop.last_update_us)
                del self._clusters[drop.cluster_id]
                self._merges += 1
