"""Event-based mean-shift (EBMS) cluster tracker.

The fully event-driven baseline the paper compares against (Section II-C,
Eq. (8)) is the cluster tracker of Delbruck & Lang ("Robotic goalie",
Frontiers in Neuroscience 2013): every event either joins the nearest
existing cluster — shifting the cluster centre towards it (the "mean shift")
— or, if no cluster is close enough, seeds a new potential cluster.
Clusters become visible once they have absorbed enough events, merge when
they collide, and decay when no events support them.  Cluster velocity is
estimated by least-squares regression over the last ``history_length``
positions, matching the paper's assumption that "past 10 positions of a
cluster is used to calculate the current velocity".

The tracker consumes *NN-filtered* events (the event-driven pipeline is
NN-filt → EBMS).  For evaluation it is sampled at the same frame instants
as the frame-based trackers via :meth:`EbmsTracker.process_frame`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.trackers.base import TrackerBase, TrackObservation, TrackState
from repro.utils.geometry import BoundingBox


@dataclass
class EbmsConfig:
    """Parameters of the EBMS cluster tracker.

    Parameters
    ----------
    max_clusters:
        Maximum simultaneous clusters ``CLmax`` (8 in the paper).
    cluster_radius_px:
        Capture radius of a cluster: events within this distance of a
        cluster centre are assigned to it.
    mixing_factor:
        Fraction by which the cluster centre moves towards each assigned
        event (the mean-shift step size).
    support_threshold_events:
        Events a potential cluster must absorb before it becomes visible.
    decay_time_us:
        A cluster not updated for this long is removed.
    history_length:
        Number of past positions used for the least-squares velocity fit
        (10 in the paper's cost model).
    history_interval_us:
        Minimum spacing between stored history positions.  Sampling the
        cluster centre at most every few milliseconds makes the velocity
        regression span a meaningful time window instead of the last handful
        of (microsecond-spaced) events.
    merge_distance_px:
        Two clusters closer than this are merged.
    """

    max_clusters: int = 8
    cluster_radius_px: float = 25.0
    mixing_factor: float = 0.1
    support_threshold_events: int = 60
    decay_time_us: int = 150_000
    history_length: int = 10
    history_interval_us: int = 10_000
    merge_distance_px: float = 15.0

    def __post_init__(self) -> None:
        if self.max_clusters < 1:
            raise ValueError(f"max_clusters must be >= 1, got {self.max_clusters}")
        if self.cluster_radius_px <= 0:
            raise ValueError("cluster_radius_px must be positive")
        if not 0.0 < self.mixing_factor <= 1.0:
            raise ValueError("mixing_factor must be in (0, 1]")
        if self.support_threshold_events < 1:
            raise ValueError("support_threshold_events must be >= 1")
        if self.decay_time_us <= 0:
            raise ValueError("decay_time_us must be positive")
        if self.history_length < 2:
            raise ValueError("history_length must be >= 2")
        if self.history_interval_us < 0:
            raise ValueError("history_interval_us must be non-negative")


@dataclass
class EbmsCluster:
    """One mean-shift cluster."""

    cluster_id: int
    cx: float
    cy: float
    last_update_us: int
    event_count: int = 0
    visible: bool = False
    # Spread estimates drive the reported box size.
    spread_x: float = 10.0
    spread_y: float = 10.0
    position_history: Deque[Tuple[int, float, float]] = field(default_factory=deque)

    def box(self) -> BoundingBox:
        """Bounding box derived from the cluster centre and spread."""
        width = max(4.0, 2.5 * self.spread_x)
        height = max(4.0, 2.5 * self.spread_y)
        return BoundingBox.from_center(self.cx, self.cy, width, height)

    def velocity(self) -> Tuple[float, float]:
        """Velocity in pixels per second from a least-squares fit of history."""
        if len(self.position_history) < 2:
            return (0.0, 0.0)
        times = np.array([entry[0] for entry in self.position_history], dtype=np.float64)
        xs = np.array([entry[1] for entry in self.position_history])
        ys = np.array([entry[2] for entry in self.position_history])
        times_s = (times - times[0]) * 1e-6
        if times_s[-1] <= 0:
            return (0.0, 0.0)
        # Least-squares slope of position vs time.
        design = np.vstack([times_s, np.ones_like(times_s)]).T
        vx = float(np.linalg.lstsq(design, xs, rcond=None)[0][0])
        vy = float(np.linalg.lstsq(design, ys, rcond=None)[0][0])
        return (vx, vy)


@dataclass(frozen=True)
class EbmsState:
    """Immutable snapshot of an :class:`EbmsTracker`'s full state.

    Clusters are deep-copied (their position-history deques included) so the
    live tracker can keep mutating without disturbing the checkpoint.
    """

    clusters: Tuple[EbmsCluster, ...]
    next_cluster_id: int
    events_processed: int
    merges: int
    frames_processed: int
    total_visible_clusters: int


def _copy_cluster(cluster: EbmsCluster) -> EbmsCluster:
    """Deep copy of one cluster (fresh deque, same entries)."""
    copied = EbmsCluster(
        cluster_id=cluster.cluster_id,
        cx=cluster.cx,
        cy=cluster.cy,
        last_update_us=cluster.last_update_us,
        event_count=cluster.event_count,
        visible=cluster.visible,
        spread_x=cluster.spread_x,
        spread_y=cluster.spread_y,
    )
    copied.position_history.extend(cluster.position_history)
    return copied


class EbmsTracker(TrackerBase):
    """Event-based mean-shift cluster tracker."""

    def __init__(self, config: Optional[EbmsConfig] = None) -> None:
        self.config = config or EbmsConfig()
        self._clusters: Dict[int, EbmsCluster] = {}
        self._next_cluster_id = 1
        self._events_processed = 0
        self._merges = 0
        self._frames_processed = 0
        self._total_visible_clusters = 0

    # -- TrackerBase interface ---------------------------------------------------------------

    def reset(self) -> None:
        """Clear all clusters and statistics."""
        self._clusters.clear()
        self._next_cluster_id = 1
        self._events_processed = 0
        self._merges = 0
        self._frames_processed = 0
        self._total_visible_clusters = 0

    @property
    def num_active_tracks(self) -> int:
        """Number of visible clusters."""
        return sum(1 for c in self._clusters.values() if c.visible)

    @property
    def num_clusters(self) -> int:
        """Number of clusters including not-yet-visible potential clusters."""
        return len(self._clusters)

    @property
    def events_processed(self) -> int:
        """Total events processed since the last reset."""
        return self._events_processed

    @property
    def merges_performed(self) -> int:
        """Number of cluster merges performed."""
        return self._merges

    @property
    def mean_visible_clusters(self) -> float:
        """Mean visible clusters per sampled frame (the paper's ``CL`` ≈ 2)."""
        if self._frames_processed == 0:
            return 0.0
        return self._total_visible_clusters / self._frames_processed

    def snapshot(self) -> EbmsState:
        """Capture the complete tracker state (clusters deep-copied)."""
        return EbmsState(
            clusters=tuple(_copy_cluster(c) for c in self._clusters.values()),
            next_cluster_id=self._next_cluster_id,
            events_processed=self._events_processed,
            merges=self._merges,
            frames_processed=self._frames_processed,
            total_visible_clusters=self._total_visible_clusters,
        )

    def restore(self, state: EbmsState) -> None:
        """Reinstate a previously captured :class:`EbmsState`."""
        self._clusters = {
            cluster.cluster_id: _copy_cluster(cluster) for cluster in state.clusters
        }
        self._next_cluster_id = state.next_cluster_id
        self._events_processed = state.events_processed
        self._merges = state.merges
        self._frames_processed = state.frames_processed
        self._total_visible_clusters = state.total_visible_clusters

    # -- event-driven operation ------------------------------------------------------------------

    def process_events(self, events: np.ndarray) -> None:
        """Feed a time-sorted packet of (NN-filtered) events to the tracker."""
        config = self.config
        for index in range(len(events)):
            x = float(events["x"][index])
            y = float(events["y"][index])
            t = int(events["t"][index])
            self._events_processed += 1

            cluster = self._nearest_cluster(x, y)
            if cluster is None:
                if len(self._clusters) < config.max_clusters:
                    self._seed_cluster(x, y, t)
                continue

            # Mean-shift update of the cluster centre towards the event.
            mix = config.mixing_factor
            distance_x = x - cluster.cx
            distance_y = y - cluster.cy
            cluster.cx += mix * distance_x
            cluster.cy += mix * distance_y
            cluster.spread_x = (1 - mix) * cluster.spread_x + mix * abs(distance_x)
            cluster.spread_y = (1 - mix) * cluster.spread_y + mix * abs(distance_y)
            cluster.event_count += 1
            cluster.last_update_us = t
            if not cluster.visible and cluster.event_count >= config.support_threshold_events:
                cluster.visible = True
            # Sample the position history at a bounded rate so the velocity
            # regression spans a meaningful time window.
            if (
                not cluster.position_history
                or t - cluster.position_history[-1][0] >= config.history_interval_us
            ):
                cluster.position_history.append((t, cluster.cx, cluster.cy))
                while len(cluster.position_history) > config.history_length:
                    cluster.position_history.popleft()

            self._decay_clusters(t)
            self._merge_close_clusters()

    def process_frame(
        self, events: np.ndarray, t_us: int
    ) -> List[TrackObservation]:
        """Feed one frame's events, then report the visible clusters.

        Unlike the frame-based trackers the argument is the frame's raw
        (NN-filtered) event packet rather than region proposals; the shared
        signature lets the evaluation harness drive all trackers the same way.
        """
        self.process_events(events)
        # Clusters that received no events this frame still age out.
        self._decay_clusters(t_us)
        self._frames_processed += 1
        observations: List[TrackObservation] = []
        for cluster in self._clusters.values():
            if not cluster.visible:
                continue
            velocity_px_per_s = cluster.velocity()
            observations.append(
                TrackObservation(
                    track_id=cluster.cluster_id,
                    box=cluster.box(),
                    t_us=t_us,
                    velocity=velocity_px_per_s,
                    state=TrackState.CONFIRMED,
                )
            )
        self._total_visible_clusters += len(observations)
        return observations

    # -- internals -----------------------------------------------------------------------------------

    def _nearest_cluster(self, x: float, y: float) -> Optional[EbmsCluster]:
        """Closest cluster whose capture radius contains the event, if any."""
        best_cluster: Optional[EbmsCluster] = None
        best_distance = self.config.cluster_radius_px
        for cluster in self._clusters.values():
            distance = max(abs(x - cluster.cx), abs(y - cluster.cy))
            if distance <= best_distance:
                best_cluster = cluster
                best_distance = distance
        return best_cluster

    def _seed_cluster(self, x: float, y: float, t: int) -> None:
        """Create a new potential cluster at the event position."""
        cluster = EbmsCluster(
            cluster_id=self._next_cluster_id,
            cx=x,
            cy=y,
            last_update_us=t,
            event_count=1,
        )
        cluster.position_history.append((t, x, y))
        self._clusters[cluster.cluster_id] = cluster
        self._next_cluster_id += 1

    def _decay_clusters(self, now_us: int) -> None:
        """Remove clusters that have not been updated recently."""
        stale = [
            cluster_id
            for cluster_id, cluster in self._clusters.items()
            if now_us - cluster.last_update_us > self.config.decay_time_us
        ]
        for cluster_id in stale:
            del self._clusters[cluster_id]

    def _merge_close_clusters(self) -> None:
        """Merge pairs of clusters whose centres are too close."""
        cluster_ids = list(self._clusters.keys())
        for i in range(len(cluster_ids)):
            for j in range(i + 1, len(cluster_ids)):
                id_i, id_j = cluster_ids[i], cluster_ids[j]
                if id_i not in self._clusters or id_j not in self._clusters:
                    continue
                cluster_i = self._clusters[id_i]
                cluster_j = self._clusters[id_j]
                distance = max(
                    abs(cluster_i.cx - cluster_j.cx), abs(cluster_i.cy - cluster_j.cy)
                )
                if distance >= self.config.merge_distance_px:
                    continue
                # Keep the cluster with more support; absorb the other.
                keep, drop = (
                    (cluster_i, cluster_j)
                    if cluster_i.event_count >= cluster_j.event_count
                    else (cluster_j, cluster_i)
                )
                total = keep.event_count + drop.event_count
                keep.cx = (keep.cx * keep.event_count + drop.cx * drop.event_count) / total
                keep.cy = (keep.cy * keep.event_count + drop.cy * drop.event_count) / total
                keep.event_count = total
                keep.spread_x = max(keep.spread_x, drop.spread_x)
                keep.spread_y = max(keep.spread_y, drop.spread_y)
                keep.visible = keep.visible or drop.visible
                keep.last_update_us = max(keep.last_update_us, drop.last_update_us)
                del self._clusters[drop.cluster_id]
                self._merges += 1
