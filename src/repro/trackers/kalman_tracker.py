"""Multi-object Kalman-filter tracker (the EBBI+KF baseline).

The paper's comparison tracker (Section II-C) runs a constant-velocity
Kalman filter per track with a centroid measurement, fed by the same
EBBI+RPN region proposals as the overlap tracker.  Association between
predicted track centroids and proposals uses IoU with a greedy fallback to
centroid distance, as in the composite-vision tracker the paper cites
(Lin et al., ACCV 2015).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


from repro.core.histogram_rpn import RegionProposal
from repro.trackers.association import greedy_overlap_assignment, unmatched_indices
from repro.trackers.base import TrackerBase, TrackObservation, TrackState
from repro.trackers.kalman import ConstantVelocityKalmanFilter
from repro.utils.geometry import BoundingBox


@dataclass
class KalmanTrackerConfig:
    """Parameters of the multi-object Kalman tracker.

    Parameters
    ----------
    max_tracks:
        Maximum simultaneous tracks (kept equal to the OT's ``NT = 8``).
    min_iou_for_match:
        Minimum IoU between a predicted track box and a proposal for a
        match; below this, a distance-gated fallback match is attempted.
    max_match_distance_px:
        Maximum centroid distance for the fallback match.
    min_track_age_frames:
        Frames before a track is confirmed and reported.
    max_missed_frames:
        Consecutive unmatched frames before the track is dropped.
    size_smoothing:
        Exponential smoothing factor for box size (the KF only estimates the
        centroid; width/height are smoothed separately).
    process_noise, measurement_noise:
        Passed to each track's :class:`ConstantVelocityKalmanFilter`.
    """

    max_tracks: int = 8
    min_iou_for_match: float = 0.1
    max_match_distance_px: float = 30.0
    min_track_age_frames: int = 2
    max_missed_frames: int = 3
    size_smoothing: float = 0.6
    process_noise: float = 1.0
    measurement_noise: float = 2.0

    def __post_init__(self) -> None:
        if self.max_tracks < 1:
            raise ValueError(f"max_tracks must be >= 1, got {self.max_tracks}")
        if not 0.0 <= self.min_iou_for_match <= 1.0:
            raise ValueError("min_iou_for_match must be in [0, 1]")
        if self.max_match_distance_px <= 0:
            raise ValueError("max_match_distance_px must be positive")
        if not 0.0 <= self.size_smoothing <= 1.0:
            raise ValueError("size_smoothing must be in [0, 1]")


@dataclass
class _KalmanTrack:
    """Internal per-track state."""

    track_id: int
    filter: ConstantVelocityKalmanFilter
    width: float
    height: float
    age_frames: int = 0
    missed_frames: int = 0
    hits: int = 1

    def box(self) -> BoundingBox:
        """Current box built from the filter centroid and smoothed size."""
        cx, cy = self.filter.position
        return BoundingBox.from_center(cx, cy, self.width, self.height)


@dataclass(frozen=True)
class _KalmanTrackSnapshot:
    """Picklable capture of one track, filter state included."""

    track_id: int
    filter_state: tuple
    width: float
    height: float
    age_frames: int
    missed_frames: int
    hits: int


@dataclass(frozen=True)
class KalmanTrackerState:
    """Immutable snapshot of a :class:`KalmanFilterTracker`'s full state.

    Produced by :meth:`KalmanFilterTracker.snapshot`, consumed by
    :meth:`KalmanFilterTracker.restore`; the serving layer checkpoints it
    through the tracker-backend protocol.
    """

    tracks: Tuple[_KalmanTrackSnapshot, ...]
    next_track_id: int
    frames_processed: int
    total_active_tracks: int


class KalmanFilterTracker(TrackerBase):
    """Constant-velocity Kalman-filter multi-object tracker."""

    def __init__(self, config: Optional[KalmanTrackerConfig] = None) -> None:
        self.config = config or KalmanTrackerConfig()
        self._tracks: Dict[int, _KalmanTrack] = {}
        self._next_track_id = 1
        self._frames_processed = 0
        self._total_active_tracks = 0

    # -- TrackerBase interface ------------------------------------------------------------

    def reset(self) -> None:
        """Clear all tracks and statistics."""
        self._tracks.clear()
        self._next_track_id = 1
        self._frames_processed = 0
        self._total_active_tracks = 0

    @property
    def num_active_tracks(self) -> int:
        """Number of currently allocated tracks."""
        return len(self._tracks)

    @property
    def mean_active_tracks(self) -> float:
        """Mean number of active tracks per frame."""
        if self._frames_processed == 0:
            return 0.0
        return self._total_active_tracks / self._frames_processed

    def snapshot(self) -> KalmanTrackerState:
        """Capture the complete tracker state (filters deep-copied)."""
        return KalmanTrackerState(
            tracks=tuple(
                _KalmanTrackSnapshot(
                    track_id=track.track_id,
                    filter_state=track.filter.state_snapshot(),
                    width=track.width,
                    height=track.height,
                    age_frames=track.age_frames,
                    missed_frames=track.missed_frames,
                    hits=track.hits,
                )
                for track in self._tracks.values()
            ),
            next_track_id=self._next_track_id,
            frames_processed=self._frames_processed,
            total_active_tracks=self._total_active_tracks,
        )

    def restore(self, state: KalmanTrackerState) -> None:
        """Reinstate a previously captured :class:`KalmanTrackerState`."""
        self._tracks = {}
        for captured in state.tracks:
            kalman_filter = ConstantVelocityKalmanFilter(
                process_noise=self.config.process_noise,
                measurement_noise=self.config.measurement_noise,
            )
            kalman_filter.restore_state(captured.filter_state)
            self._tracks[captured.track_id] = _KalmanTrack(
                track_id=captured.track_id,
                filter=kalman_filter,
                width=captured.width,
                height=captured.height,
                age_frames=captured.age_frames,
                missed_frames=captured.missed_frames,
                hits=captured.hits,
            )
        self._next_track_id = state.next_track_id
        self._frames_processed = state.frames_processed
        self._total_active_tracks = state.total_active_tracks

    def process_frame(
        self, proposals: Sequence[RegionProposal], t_us: int
    ) -> List[TrackObservation]:
        """Predict, associate, update and manage track lifecycles for one frame."""
        self._frames_processed += 1
        proposal_boxes = [p.box for p in proposals]

        # Predict all tracks one frame ahead.
        for track in self._tracks.values():
            track.filter.predict()
        track_ids = list(self._tracks.keys())
        predicted_boxes = [self._tracks[tid].box() for tid in track_ids]

        # Primary association: IoU between predicted boxes and proposals.
        pairs = greedy_overlap_assignment(
            predicted_boxes, proposal_boxes, min_score=self.config.min_iou_for_match
        )
        matched_tracks = {track_ids[i] for i, _ in pairs}
        matched_proposals = {j for _, j in pairs}

        # Fallback association by centroid distance for the remainder.
        for i in unmatched_indices(len(track_ids), pairs, 0):
            best_j, best_distance = None, self.config.max_match_distance_px
            for j in range(len(proposal_boxes)):
                if j in matched_proposals:
                    continue
                distance = predicted_boxes[i].center_distance(proposal_boxes[j])
                if distance < best_distance:
                    best_j, best_distance = j, distance
            if best_j is not None:
                pairs.append((i, best_j))
                matched_tracks.add(track_ids[i])
                matched_proposals.add(best_j)

        # Update matched tracks.
        for i, j in pairs:
            track = self._tracks[track_ids[i]]
            proposal_box = proposal_boxes[j]
            cx, cy = proposal_box.center
            track.filter.update(cx, cy)
            smoothing = self.config.size_smoothing
            track.width = smoothing * track.width + (1 - smoothing) * proposal_box.width
            track.height = smoothing * track.height + (1 - smoothing) * proposal_box.height
            track.missed_frames = 0
            track.hits += 1

        # Age unmatched tracks and drop stale ones.
        for track_id in list(self._tracks.keys()):
            if track_id in matched_tracks:
                continue
            track = self._tracks[track_id]
            track.missed_frames += 1
            if track.missed_frames > self.config.max_missed_frames:
                del self._tracks[track_id]

        # Start new tracks from unmatched proposals.
        for j, proposal_box in enumerate(proposal_boxes):
            if j in matched_proposals:
                continue
            if len(self._tracks) >= self.config.max_tracks:
                break
            self._start_track(proposal_box)

        # Report confirmed tracks.
        observations: List[TrackObservation] = []
        for track in self._tracks.values():
            track.age_frames += 1
            if track.age_frames < self.config.min_track_age_frames:
                continue
            observations.append(
                TrackObservation(
                    track_id=track.track_id,
                    box=track.box(),
                    t_us=t_us,
                    velocity=track.filter.velocity,
                    state=TrackState.CONFIRMED,
                )
            )
        self._total_active_tracks += len(self._tracks)
        return observations

    # -- internals ----------------------------------------------------------------------------

    def _start_track(self, proposal_box: BoundingBox) -> None:
        """Initialise a new Kalman track from a proposal."""
        kalman_filter = ConstantVelocityKalmanFilter(
            process_noise=self.config.process_noise,
            measurement_noise=self.config.measurement_noise,
        )
        cx, cy = proposal_box.center
        kalman_filter.initialise(cx, cy)
        track = _KalmanTrack(
            track_id=self._next_track_id,
            filter=kalman_filter,
            width=proposal_box.width,
            height=proposal_box.height,
        )
        self._tracks[track.track_id] = track
        self._next_track_id += 1
