"""Constant-velocity Kalman filter for a single track.

The comparison tracker in the paper (Section II-C, Eq. (7)) follows a
constant-velocity motion model with a measurement vector containing the
track centroid.  This module implements the standard predict/update
recursion for that model; the multi-object wrapper with data association
lives in :mod:`repro.trackers.kalman_tracker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass
class ConstantVelocityKalmanFilter:
    """Kalman filter with state ``[cx, cy, vx, vy]`` and measurement ``[cx, cy]``.

    Positions are in pixels, velocities in pixels per frame (the filter is
    stepped once per EBBI frame).

    Parameters
    ----------
    process_noise:
        Standard deviation of the per-frame acceleration noise (pixels per
        frame^2).
    measurement_noise:
        Standard deviation of the centroid measurement noise (pixels).
    initial_velocity_uncertainty:
        Initial standard deviation of the velocity estimate.
    """

    process_noise: float = 1.0
    measurement_noise: float = 2.0
    initial_velocity_uncertainty: float = 5.0

    state: np.ndarray = field(init=False, repr=False)
    covariance: np.ndarray = field(init=False, repr=False)
    _initialised: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.process_noise <= 0 or self.measurement_noise <= 0:
            raise ValueError("noise standard deviations must be positive")
        self.state = np.zeros(4)
        self.covariance = np.eye(4)

    # -- model matrices ----------------------------------------------------------------

    @staticmethod
    def transition_matrix() -> np.ndarray:
        """State transition ``F`` for one frame step."""
        return np.array(
            [
                [1.0, 0.0, 1.0, 0.0],
                [0.0, 1.0, 0.0, 1.0],
                [0.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 0.0, 1.0],
            ]
        )

    @staticmethod
    def measurement_matrix() -> np.ndarray:
        """Measurement matrix ``H`` extracting the centroid."""
        return np.array([[1.0, 0.0, 0.0, 0.0], [0.0, 1.0, 0.0, 0.0]])

    def process_noise_covariance(self) -> np.ndarray:
        """Process noise ``Q`` for the constant-velocity model."""
        q = self.process_noise**2
        # Discrete white-noise acceleration model with dt = 1 frame.
        return q * np.array(
            [
                [0.25, 0.0, 0.5, 0.0],
                [0.0, 0.25, 0.0, 0.5],
                [0.5, 0.0, 1.0, 0.0],
                [0.0, 0.5, 0.0, 1.0],
            ]
        )

    def measurement_noise_covariance(self) -> np.ndarray:
        """Measurement noise ``R``."""
        return (self.measurement_noise**2) * np.eye(2)

    # -- filter operations ----------------------------------------------------------------

    def initialise(self, cx: float, cy: float) -> None:
        """Initialise the state from the first centroid measurement."""
        self.state = np.array([cx, cy, 0.0, 0.0])
        self.covariance = np.diag(
            [
                self.measurement_noise**2,
                self.measurement_noise**2,
                self.initial_velocity_uncertainty**2,
                self.initial_velocity_uncertainty**2,
            ]
        )
        self._initialised = True

    @property
    def is_initialised(self) -> bool:
        """``True`` once :meth:`initialise` has been called."""
        return self._initialised

    def predict(self) -> Tuple[float, float]:
        """Advance the state one frame; return the predicted centroid."""
        if not self._initialised:
            raise RuntimeError("filter must be initialised before predict()")
        transition = self.transition_matrix()
        self.state = transition @ self.state
        self.covariance = (
            transition @ self.covariance @ transition.T + self.process_noise_covariance()
        )
        return (float(self.state[0]), float(self.state[1]))

    def update(self, cx: float, cy: float) -> Tuple[float, float]:
        """Fuse a centroid measurement; return the corrected centroid."""
        if not self._initialised:
            raise RuntimeError("filter must be initialised before update()")
        measurement = np.array([cx, cy])
        measurement_matrix = self.measurement_matrix()
        innovation = measurement - measurement_matrix @ self.state
        innovation_covariance = (
            measurement_matrix @ self.covariance @ measurement_matrix.T
            + self.measurement_noise_covariance()
        )
        kalman_gain = (
            self.covariance
            @ measurement_matrix.T
            @ np.linalg.inv(innovation_covariance)
        )
        self.state = self.state + kalman_gain @ innovation
        identity = np.eye(4)
        self.covariance = (identity - kalman_gain @ measurement_matrix) @ self.covariance
        return (float(self.state[0]), float(self.state[1]))

    # -- state capture ----------------------------------------------------------------------

    def state_snapshot(self) -> Tuple[np.ndarray, np.ndarray, bool]:
        """Copy of the full filter state ``(state, covariance, initialised)``."""
        return (self.state.copy(), self.covariance.copy(), self._initialised)

    def restore_state(
        self, snapshot: Tuple[np.ndarray, np.ndarray, bool]
    ) -> None:
        """Reinstate a state captured by :meth:`state_snapshot`."""
        state, covariance, initialised = snapshot
        self.state = np.array(state, dtype=np.float64, copy=True)
        self.covariance = np.array(covariance, dtype=np.float64, copy=True)
        self._initialised = bool(initialised)

    # -- accessors --------------------------------------------------------------------------

    @property
    def position(self) -> Tuple[float, float]:
        """Current centroid estimate."""
        return (float(self.state[0]), float(self.state[1]))

    @property
    def velocity(self) -> Tuple[float, float]:
        """Current velocity estimate in pixels per frame."""
        return (float(self.state[2]), float(self.state[3]))

    def position_uncertainty(self) -> float:
        """Scalar position uncertainty (trace of the positional covariance)."""
        return float(self.covariance[0, 0] + self.covariance[1, 1])
