"""The tracker-backend protocol: one incremental interface for every tracker.

The paper's headline result is comparative — EBBIOT against the EBBI+Kalman
and NN-filt+EBMS baselines (Fig. 4 / Fig. 5) — and the follow-up work
(EBBINNOT, the hybrid tracking+classification framework) iterates on exactly
this tracker-swap axis.  This module defines the abstraction that makes the
swap a one-line configuration change everywhere in the system:

* :class:`TrackerFrame` — the per-window input bundle a pipeline hands to a
  backend: the region proposals (for frame-driven trackers) *and* the raw
  window events (for event-driven trackers such as EBMS).
* :class:`TrackerBackend` — the incremental ``step`` / ``reset`` /
  ``snapshot`` / ``restore`` protocol.  ``step`` consumes one
  :class:`TrackerFrame` and returns the frame's
  :class:`~repro.trackers.base.TrackObservation` list, so the core pipeline,
  the batch runtime and the live serving layer can drive any tracker the
  same way.
* :class:`BackendState` — the opaque, picklable state envelope produced by
  ``snapshot`` and consumed by ``restore``; tagged with the backend name so
  a checkpoint can never be restored into the wrong tracker.

Concrete adapters for the three paper trackers live in
:mod:`repro.trackers.registry` under the names ``"overlap"``, ``"kalman"``
and ``"ebms"``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence

import numpy as np

from repro.trackers.base import TrackObservation


@dataclass(frozen=True)
class TrackerFrame:
    """Everything a tracker backend may want from one EBBI window.

    Attributes
    ----------
    proposals:
        ROE-filtered region proposals of the window (empty when the pipeline
        skipped the RPN because the backend declared
        ``requires_proposals = False``).
    events:
        The window's raw event packet, or ``None`` when the driving pipeline
        did not materialise it (only legal for backends with
        ``requires_events = False``).
    t_start_us, t_end_us:
        Bounds of the accumulation window in microseconds.
    """

    proposals: Sequence
    events: Optional[np.ndarray]
    t_start_us: int
    t_end_us: int

    @property
    def t_mid_us(self) -> int:
        """Midpoint of the window — the timestamp tracks are reported at."""
        return (self.t_start_us + self.t_end_us) // 2


@dataclass(frozen=True)
class BackendState:
    """Opaque snapshot of a tracker backend, tagged with its backend name.

    ``payload`` is whatever the backend needs to resume exactly — for the
    overlap backend the paper's sub-0.5 kB slot table, for the EBMS backend
    the cluster set plus the NN filter's per-pixel timestamp memory.  It is
    picklable, so serving-layer checkpoints can cross process boundaries.
    """

    backend: str
    payload: object


class TrackerBackend(abc.ABC):
    """Incremental tracker interface shared by core, runtime and serving.

    Class attributes
    ----------------
    name:
        Registry name of the backend (``"overlap"``, ``"kalman"``, ...).
    requires_events:
        ``True`` when :meth:`step` needs the window's raw events (the
        event-driven EBMS backend); pipelines must then populate
        :attr:`TrackerFrame.events`.
    requires_proposals:
        ``False`` when the backend ignores region proposals, letting the
        pipeline skip the RPN + ROE stages entirely for that tracker.
    """

    name: ClassVar[str] = "abstract"
    requires_events: ClassVar[bool] = False
    requires_proposals: ClassVar[bool] = True

    @abc.abstractmethod
    def step(self, frame: TrackerFrame) -> List[TrackObservation]:
        """Advance the tracker by one frame window; return its active tracks."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Clear all tracker state and statistics."""

    @abc.abstractmethod
    def snapshot(self) -> BackendState:
        """Capture the complete incremental state (valid at frame boundaries)."""

    @abc.abstractmethod
    def restore(self, state: BackendState) -> None:
        """Reinstate a state captured by :meth:`snapshot`."""

    @property
    @abc.abstractmethod
    def num_active_tracks(self) -> int:
        """Number of currently allocated tracks."""

    @property
    @abc.abstractmethod
    def mean_active_trackers(self) -> float:
        """Mean active tracks per frame (the paper's ``NT`` statistic)."""

    # -- shared helpers -------------------------------------------------------------------

    def _check_state(self, state: BackendState) -> None:
        """Reject snapshots produced by a different backend."""
        if state.backend != self.name:
            raise ValueError(
                f"cannot restore a {state.backend!r} snapshot into a "
                f"{self.name!r} backend"
            )

    def _require_events(self, frame: TrackerFrame) -> np.ndarray:
        """The frame's events, or a clear error if the pipeline withheld them."""
        if frame.events is None:
            raise ValueError(
                f"backend {self.name!r} requires per-window events but the "
                "frame carries none"
            )
        return frame.events
