"""String registry of tracker backends: ``"overlap"``, ``"kalman"``, ``"ebms"``.

Every layer of the system selects its tracker through this registry —
``EbbiotConfig(tracker="kalman")`` is all it takes to run the paper's
EBBI+KF baseline through the core pipeline, the batch runtime fleet and the
live serving layer.  Each adapter wraps one of the repo's trackers behind
the :class:`~repro.trackers.backend.TrackerBackend` protocol:

* :class:`OverlapBackend` (``"overlap"``) — the paper's contribution, the
  overlap tracker of Section II-C (default everywhere; Fig. 4/5 "EBBIOT").
* :class:`KalmanBackend` (``"kalman"``) — the EBBI+KF comparison tracker
  (Fig. 4/5 "EBBI+KF"): the same EBBI + RPN front end feeding a
  constant-velocity Kalman multi-object tracker.
* :class:`EbmsBackend` (``"ebms"``) — the fully event-driven NN-filt+EBMS
  baseline (Fig. 4/5 "NNfilt+EBMS").  It declares
  ``requires_proposals = False`` / ``requires_events = True``: the pipeline
  skips the RPN entirely and instead hands each window's raw events to the
  backend, which runs its own stateful nearest-neighbour filter before the
  mean-shift clusters — the event-driven pipeline of Section II-A.

Third-party backends register with :func:`register_backend`; a factory
receives the full :class:`~repro.core.config.EbbiotConfig` so it can map the
shared knobs (``max_trackers``, lifecycle frames, sensor geometry) onto its
own configuration.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

from repro.events.filters import NearestNeighbourFilter
from repro.trackers.backend import BackendState, TrackerBackend, TrackerFrame
from repro.trackers.base import TrackObservation
from repro.trackers.ebms import EbmsConfig, EbmsTracker
from repro.trackers.kalman_tracker import KalmanFilterTracker, KalmanTrackerConfig

#: A factory builds one backend instance from the shared pipeline config.
BackendFactory = Callable[["EbbiotConfig"], TrackerBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


# -- registry API ----------------------------------------------------------------------


def register_backend(
    name: str, factory: BackendFactory, overwrite: bool = False
) -> None:
    """Register a backend factory under ``name``.

    Raises on duplicate names unless ``overwrite`` is set, so a typo'd
    re-registration fails loudly instead of silently shadowing a backend.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted for stable CLI/docs output."""
    return tuple(sorted(_REGISTRY))


def ensure_backend_name(name: str) -> str:
    """Validate a backend name against the registry; return it unchanged."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown tracker backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    return name


def parse_backend_list(spec: str) -> List[str]:
    """Parse a CLI-style ``NAME[,NAME...]`` backend list and validate it.

    Shared by the runtime/serving CLIs and the shoot-out benchmark so the
    flag grammar and error text cannot drift between them.
    """
    names = [name.strip() for name in spec.split(",") if name.strip()]
    if not names:
        raise ValueError("expected at least one tracker backend name")
    for name in names:
        ensure_backend_name(name)
    return names


def create_backend(
    spec: Union[str, TrackerBackend], config: "EbbiotConfig"
) -> TrackerBackend:
    """Build a backend from a registry name (or pass an instance through).

    Accepting a ready :class:`TrackerBackend` instance lets tests and
    experiments inject custom trackers without registering them globally.
    """
    if isinstance(spec, TrackerBackend):
        return spec
    ensure_backend_name(spec)
    return _REGISTRY[spec](config)


# -- the three paper backends ----------------------------------------------------------


class OverlapBackend(TrackerBackend):
    """The EBBIOT overlap tracker (Section II-C) behind the backend protocol."""

    name = "overlap"
    requires_events = False
    requires_proposals = True

    def __init__(self, config: "EbbiotConfig") -> None:
        # Deferred import: repro.core.overlap_tracker pulls in the core
        # package, which imports this module back through the pipeline.
        from repro.core.overlap_tracker import OverlapTracker, OverlapTrackerConfig

        self.tracker = OverlapTracker(
            OverlapTrackerConfig(
                max_trackers=config.max_trackers,
                overlap_threshold=config.overlap_threshold,
                prediction_weight=config.prediction_weight,
                occlusion_lookahead_frames=config.occlusion_lookahead_frames,
                min_track_age_frames=config.min_track_age_frames,
                max_missed_frames=config.max_missed_frames,
            )
        )

    def step(self, frame: TrackerFrame) -> List[TrackObservation]:
        return self.tracker.process_frame(frame.proposals, frame.t_mid_us)

    def reset(self) -> None:
        self.tracker.reset()

    def snapshot(self) -> BackendState:
        return BackendState(backend=self.name, payload=self.tracker.snapshot())

    def restore(self, state: BackendState) -> None:
        self._check_state(state)
        self.tracker.restore(state.payload)

    @property
    def num_active_tracks(self) -> int:
        return self.tracker.num_active_tracks

    @property
    def mean_active_trackers(self) -> float:
        return self.tracker.mean_active_trackers

    # The overlap tracker's occlusion bookkeeping is part of the paper's
    # evaluation; surface it so callers need not reach into ``.tracker``.

    @property
    def occlusions_detected(self) -> int:
        """Dynamic-occlusion events handled (Section II-C step 5)."""
        return self.tracker.occlusions_detected

    @property
    def merges_performed(self) -> int:
        """Fragmentation merges performed."""
        return self.tracker.merges_performed


class KalmanBackend(TrackerBackend):
    """The EBBI+KF baseline: RPN proposals into a Kalman multi-object tracker."""

    name = "kalman"
    requires_events = False
    requires_proposals = True

    def __init__(self, config: "EbbiotConfig") -> None:
        self.tracker = KalmanFilterTracker(
            KalmanTrackerConfig(
                max_tracks=config.max_trackers,
                min_track_age_frames=config.min_track_age_frames,
                max_missed_frames=config.max_missed_frames,
            )
        )

    def step(self, frame: TrackerFrame) -> List[TrackObservation]:
        return self.tracker.process_frame(frame.proposals, frame.t_mid_us)

    def reset(self) -> None:
        self.tracker.reset()

    def snapshot(self) -> BackendState:
        return BackendState(backend=self.name, payload=self.tracker.snapshot())

    def restore(self, state: BackendState) -> None:
        self._check_state(state)
        self.tracker.restore(state.payload)

    @property
    def num_active_tracks(self) -> int:
        return self.tracker.num_active_tracks

    @property
    def mean_active_trackers(self) -> float:
        return self.tracker.mean_active_tracks


class EbmsBackend(TrackerBackend):
    """The NN-filt+EBMS baseline: event-driven, no EBBI proposals needed.

    The backend owns the stateful nearest-neighbour filter of the
    event-driven pipeline (its per-pixel timestamp memory is exactly the
    ``Bt * A * B`` bits Eq. (2) charges that approach with), so a pipeline
    only has to hand over each window's raw events.
    """

    name = "ebms"
    requires_events = True
    requires_proposals = False

    def __init__(self, config: "EbbiotConfig") -> None:
        self.nn_filter = NearestNeighbourFilter(config.width, config.height)
        self.tracker = EbmsTracker(EbmsConfig(max_clusters=config.max_trackers))

    def step(self, frame: TrackerFrame) -> List[TrackObservation]:
        filtered = self.nn_filter.filter(self._require_events(frame))
        return self.tracker.process_frame(filtered, frame.t_mid_us)

    def reset(self) -> None:
        self.nn_filter.reset()
        self.tracker.reset()

    def snapshot(self) -> BackendState:
        return BackendState(
            backend=self.name,
            payload=(self.tracker.snapshot(), self.nn_filter.state_snapshot()),
        )

    def restore(self, state: BackendState) -> None:
        self._check_state(state)
        tracker_state, nn_state = state.payload
        self.tracker.restore(tracker_state)
        self.nn_filter.restore_state(nn_state)

    @property
    def num_active_tracks(self) -> int:
        return self.tracker.num_active_tracks

    @property
    def mean_active_trackers(self) -> float:
        return self.tracker.mean_visible_clusters


register_backend(OverlapBackend.name, OverlapBackend)
register_backend(KalmanBackend.name, KalmanBackend)
register_backend(EbmsBackend.name, EbmsBackend)
