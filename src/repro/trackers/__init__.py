"""Multi-object trackers: shared track data structures, baselines, backends.

The EBBIOT overlap tracker itself lives in :mod:`repro.core.overlap_tracker`
(it is part of the paper's contribution); this package provides the shared
:class:`TrackObservation` / :class:`TrackerBase` interfaces plus the two
baselines the paper compares against:

* :class:`KalmanFilterTracker` — constant-velocity Kalman filter tracker on
  the EBBI+RPN proposals (the EBBI+KF baseline of Fig. 4 / Fig. 5).
* :class:`EbmsTracker` — event-based mean-shift cluster tracker (Delbruck &
  Lang style), fed by the NN-filtered event stream.

All three trackers are also available behind the uniform
:class:`TrackerBackend` protocol (:mod:`repro.trackers.backend`) through the
string registry of :mod:`repro.trackers.registry` — the names ``"overlap"``,
``"kalman"`` and ``"ebms"`` are what ``EbbiotConfig(tracker=...)`` accepts
throughout the core pipeline, the batch runtime and the live serving layer.
"""

from repro.trackers.association import greedy_overlap_assignment, iou_assignment
from repro.trackers.backend import BackendState, TrackerBackend, TrackerFrame
from repro.trackers.base import TrackerBase, TrackObservation, TrackState
from repro.trackers.ebms import EbmsCluster, EbmsConfig, EbmsState, EbmsTracker
from repro.trackers.kalman import ConstantVelocityKalmanFilter
from repro.trackers.kalman_tracker import (
    KalmanFilterTracker,
    KalmanTrackerConfig,
    KalmanTrackerState,
)
from repro.trackers.registry import (
    EbmsBackend,
    KalmanBackend,
    OverlapBackend,
    available_backends,
    create_backend,
    ensure_backend_name,
    parse_backend_list,
    register_backend,
)

__all__ = [
    "TrackObservation",
    "TrackState",
    "TrackerBase",
    "greedy_overlap_assignment",
    "iou_assignment",
    "ConstantVelocityKalmanFilter",
    "KalmanFilterTracker",
    "KalmanTrackerConfig",
    "KalmanTrackerState",
    "EbmsTracker",
    "EbmsCluster",
    "EbmsConfig",
    "EbmsState",
    "TrackerBackend",
    "TrackerFrame",
    "BackendState",
    "OverlapBackend",
    "KalmanBackend",
    "EbmsBackend",
    "available_backends",
    "create_backend",
    "ensure_backend_name",
    "parse_backend_list",
    "register_backend",
]
