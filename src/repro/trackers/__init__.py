"""Multi-object trackers: shared track data structures and the baselines.

The EBBIOT overlap tracker itself lives in :mod:`repro.core.overlap_tracker`
(it is part of the paper's contribution); this package provides the shared
:class:`TrackObservation` / :class:`TrackerBase` interfaces plus the two
baselines the paper compares against:

* :class:`KalmanFilterTracker` — constant-velocity Kalman filter tracker on
  the EBBI+RPN proposals (the EBBI+KF baseline of Fig. 4 / Fig. 5).
* :class:`EbmsTracker` — event-based mean-shift cluster tracker (Delbruck &
  Lang style), fed by the NN-filtered event stream.
"""

from repro.trackers.association import greedy_overlap_assignment, iou_assignment
from repro.trackers.base import TrackerBase, TrackObservation, TrackState
from repro.trackers.ebms import EbmsCluster, EbmsConfig, EbmsTracker
from repro.trackers.kalman import ConstantVelocityKalmanFilter
from repro.trackers.kalman_tracker import KalmanFilterTracker, KalmanTrackerConfig

__all__ = [
    "TrackObservation",
    "TrackState",
    "TrackerBase",
    "greedy_overlap_assignment",
    "iou_assignment",
    "ConstantVelocityKalmanFilter",
    "KalmanFilterTracker",
    "KalmanTrackerConfig",
    "EbmsTracker",
    "EbmsCluster",
    "EbmsConfig",
]
