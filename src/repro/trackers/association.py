"""Track-to-detection association helpers.

The Kalman-filter baseline and the evaluation harness both need to assign
detections (region proposals or tracker boxes) to existing tracks or
ground-truth boxes.  Two strategies are provided:

* :func:`greedy_overlap_assignment` — repeatedly pick the highest-scoring
  remaining pair; cheap and what an embedded implementation would use.
* :func:`iou_assignment` — optimal one-to-one assignment maximising total
  IoU via scipy's Hungarian solver, used by the evaluation where optimality
  matters more than cost.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.utils.geometry import BoundingBox, boxes_iou

try:  # scipy is an optional accelerator for optimal assignment.
    from scipy.optimize import linear_sum_assignment

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is installed in this environment
    _HAVE_SCIPY = False


def overlap_score_matrix(
    tracks: Sequence[BoundingBox],
    detections: Sequence[BoundingBox],
    score: Callable[[BoundingBox, BoundingBox], float] = boxes_iou,
) -> np.ndarray:
    """Pairwise score matrix, ``shape = (len(tracks), len(detections))``."""
    matrix = np.zeros((len(tracks), len(detections)))
    for i, track_box in enumerate(tracks):
        for j, detection_box in enumerate(detections):
            matrix[i, j] = score(track_box, detection_box)
    return matrix


def greedy_overlap_assignment(
    tracks: Sequence[BoundingBox],
    detections: Sequence[BoundingBox],
    min_score: float = 1e-9,
    score: Callable[[BoundingBox, BoundingBox], float] = boxes_iou,
) -> List[Tuple[int, int]]:
    """Greedy one-to-one assignment by descending score.

    Returns
    -------
    list of (track_index, detection_index)
        Matched pairs with score >= ``min_score``.
    """
    if not tracks or not detections:
        return []
    matrix = overlap_score_matrix(tracks, detections, score)
    pairs: List[Tuple[int, int]] = []
    used_tracks: set = set()
    used_detections: set = set()
    order = np.argsort(matrix, axis=None)[::-1]
    for flat_index in order:
        i, j = np.unravel_index(flat_index, matrix.shape)
        if matrix[i, j] < min_score:
            break
        if i in used_tracks or j in used_detections:
            continue
        pairs.append((int(i), int(j)))
        used_tracks.add(int(i))
        used_detections.add(int(j))
    return pairs


def iou_assignment(
    tracks: Sequence[BoundingBox],
    detections: Sequence[BoundingBox],
    min_iou: float = 1e-9,
) -> List[Tuple[int, int]]:
    """Optimal one-to-one assignment maximising total IoU.

    Falls back to the greedy assignment when scipy is unavailable.
    """
    if not tracks or not detections:
        return []
    if not _HAVE_SCIPY:
        return greedy_overlap_assignment(tracks, detections, min_score=min_iou)
    matrix = overlap_score_matrix(tracks, detections)
    row_indices, col_indices = linear_sum_assignment(-matrix)
    pairs = [
        (int(i), int(j))
        for i, j in zip(row_indices, col_indices)
        if matrix[i, j] >= min_iou
    ]
    return pairs


def unmatched_indices(
    total: int, matched: Sequence[Tuple[int, int]], position: int
) -> List[int]:
    """Indices in ``range(total)`` that do not appear in ``matched``.

    ``position`` selects which element of the pairs to look at (0 for track
    indices, 1 for detection indices).
    """
    used = {pair[position] for pair in matched}
    return [index for index in range(total) if index not in used]
