"""Resource models of the region-proposal stage (Eq. (5)) and the CNN reference.

``C_RPN = A*B + 2*A*B/(s1*s2)`` operations per frame: one pass over the full
frame to build the downsampled image, then one pass over the downsampled
image for each of the two histograms.  ``M_RPN`` stores the downsampled
image and the two histograms at just enough bits per entry.

With (s1, s2) = (6, 3) this evaluates to 48.0 kops/frame; the paper quotes
45.6 kops, which corresponds to charging the histogram pass once rather than
twice (``A*B + A*B/(s1*s2)``).  Both values are exposed so the discrepancy
is visible rather than hidden.

:class:`CnnDetectorReference` is the frame-based comparison point (YOLO-class
detector) used for the paper's ">1000X less memory and computes than frame
based approaches" claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.resources.params import ResourceParams

_BITS_PER_KB = 8 * 1024


@dataclass
class RpnResourceModel:
    """Compute / memory model of the histogram region proposal."""

    params: ResourceParams = field(default_factory=ResourceParams)

    # -- computes -------------------------------------------------------------------

    def downsample_computes(self) -> float:
        """Operations to build the downsampled image: one add per input pixel."""
        return float(self.params.num_pixels)

    def histogram_computes(self) -> float:
        """Operations to build both histograms from the downsampled image."""
        p = self.params
        downsampled_pixels = p.num_pixels / (p.downsample_x * p.downsample_y)
        return 2 * downsampled_pixels

    def computes_per_frame(self) -> float:
        """``C_RPN = A*B + 2*A*B/(s1*s2)`` operations (Eq. (5)); 48.0 kops."""
        return self.downsample_computes() + self.histogram_computes()

    def computes_per_frame_paper_quoted(self) -> float:
        """The 45.6 kops value quoted in the paper's text.

        Corresponds to ``A*B + A*B/(s1*s2)`` — the histogram pass charged
        once.  Kept for reference so the reproduction can report both.
        """
        p = self.params
        return p.num_pixels + p.num_pixels / (p.downsample_x * p.downsample_y)

    # -- memory ----------------------------------------------------------------------

    def downsampled_image_bits(self) -> float:
        """Bits for the downsampled image, ``ceil(log2(s1*s2))`` per entry."""
        p = self.params
        entries = (p.width // p.downsample_x) * (p.height // p.downsample_y)
        bits_per_entry = math.ceil(math.log2(p.downsample_x * p.downsample_y))
        return entries * bits_per_entry

    def histogram_bits(self) -> float:
        """Bits for the X and Y histograms.

        ``H_X`` has ``A/s1`` entries each up to ``B * s1`` (so
        ``ceil(log2(B*s1))`` bits), and symmetrically for ``H_Y``.
        """
        p = self.params
        x_entries = p.width // p.downsample_x
        y_entries = p.height // p.downsample_y
        x_bits = x_entries * math.ceil(math.log2(p.height * p.downsample_x))
        y_bits = y_entries * math.ceil(math.log2(p.width * p.downsample_y))
        return x_bits + y_bits

    def memory_bits(self) -> float:
        """``M_RPN`` in bits (Eq. (5)); ≈ 1.6 kB for the paper's parameters."""
        return self.downsampled_image_bits() + self.histogram_bits()

    def memory_kilobytes(self) -> float:
        """Memory in kilobytes."""
        return self.memory_bits() / _BITS_PER_KB

    def summary(self) -> dict:
        """All model outputs as a dict."""
        return {
            "name": "histogram RPN",
            "computes_per_frame": self.computes_per_frame(),
            "computes_per_frame_paper_quoted": self.computes_per_frame_paper_quoted(),
            "memory_bits": self.memory_bits(),
            "memory_kilobytes": self.memory_kilobytes(),
        }


@dataclass
class CnnDetectorReference:
    """Order-of-magnitude resource figures for a frame-based CNN detector.

    The paper's comparison point is "even the simplest CNN-based object
    detector like YOLO" needing a GPU for 30 fps and over 1 GB of RAM.  The
    defaults below are for Tiny-YOLO-class networks (~5.6 GFLOPs per frame
    at 416x416, ~1 GB working memory) and are intentionally conservative —
    the claimed factor is "> 1000X", and any YOLO-class figure satisfies it.
    """

    flops_per_frame: float = 5.6e9
    memory_bytes: float = 1.0e9

    def computes_per_frame(self) -> float:
        """Operations per frame (FLOPs)."""
        return self.flops_per_frame

    def memory_bits(self) -> float:
        """Working memory in bits."""
        return self.memory_bytes * 8

    def memory_kilobytes(self) -> float:
        """Working memory in kilobytes."""
        return self.memory_bytes / 1024

    def compute_ratio_vs_rpn(self, rpn: RpnResourceModel) -> float:
        """How many times more computes the CNN needs than the histogram RPN."""
        return self.computes_per_frame() / rpn.computes_per_frame()

    def memory_ratio_vs_rpn(self, rpn: RpnResourceModel) -> float:
        """How many times more memory the CNN needs than the histogram RPN."""
        return self.memory_bits() / rpn.memory_bits()
