"""Whole-pipeline resource totals and the Fig. 5 comparison.

Fig. 5 compares total computes per frame and total memory of the EBMS
pipeline (NN-filt + EBMS tracker) and the EBBI+KF pipeline (EBBI + RPN + KF)
against EBBIOT (EBBI + RPN + OT), normalised to EBBIOT.  With the paper's
constants EBBIOT needs roughly 3X fewer computations and 7X less memory
than the event-driven pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.resources.ebbi_model import EbbiResourceModel, NnFilterResourceModel
from repro.resources.params import ResourceParams
from repro.resources.rpn_model import RpnResourceModel
from repro.resources.tracker_models import (
    EbmsResourceModel,
    KalmanResourceModel,
    OverlapTrackerResourceModel,
)

_BITS_PER_KB = 8 * 1024


@dataclass(frozen=True)
class PipelineResources:
    """Total computes / memory of one processing pipeline."""

    name: str
    computes_per_frame: float
    memory_bits: float
    breakdown: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def memory_kilobytes(self) -> float:
        """Total memory in kilobytes."""
        return self.memory_bits / _BITS_PER_KB

    def to_dict(self) -> dict:
        """JSON-serialisable representation."""
        return {
            "name": self.name,
            "computes_per_frame": self.computes_per_frame,
            "memory_bits": self.memory_bits,
            "memory_kilobytes": self.memory_kilobytes,
            "breakdown": self.breakdown,
        }


def _combine(name: str, parts: Dict[str, object]) -> PipelineResources:
    """Sum the computes and memory of a set of stage models."""
    total_computes = 0.0
    total_memory = 0.0
    breakdown = {}
    for stage_name, model in parts.items():
        computes = model.computes_per_frame()
        memory = model.memory_bits()
        total_computes += computes
        total_memory += memory
        breakdown[stage_name] = {
            "computes_per_frame": computes,
            "memory_bits": memory,
        }
    return PipelineResources(
        name=name,
        computes_per_frame=total_computes,
        memory_bits=total_memory,
        breakdown=breakdown,
    )


def ebbiot_pipeline_resources(
    params: Optional[ResourceParams] = None,
) -> PipelineResources:
    """EBBIOT = EBBI + median filter, histogram RPN, overlap tracker."""
    params = params or ResourceParams()
    return _combine(
        "EBBIOT",
        {
            "ebbi": EbbiResourceModel(params),
            "rpn": RpnResourceModel(params),
            "overlap_tracker": OverlapTrackerResourceModel(params),
        },
    )


def ebbi_kf_pipeline_resources(
    params: Optional[ResourceParams] = None,
) -> PipelineResources:
    """EBBI+KF = EBBI + median filter, histogram RPN, Kalman filter tracker."""
    params = params or ResourceParams()
    return _combine(
        "EBBI+KF",
        {
            "ebbi": EbbiResourceModel(params),
            "rpn": RpnResourceModel(params),
            "kalman": KalmanResourceModel(params),
        },
    )


def ebms_pipeline_resources(
    params: Optional[ResourceParams] = None,
) -> PipelineResources:
    """EBMS pipeline = NN-filter + event-based mean-shift tracker."""
    params = params or ResourceParams()
    return _combine(
        "EBMS",
        {
            "nn_filter": NnFilterResourceModel(params),
            "ebms": EbmsResourceModel(params),
        },
    )


def relative_comparison(
    params: Optional[ResourceParams] = None,
) -> List[dict]:
    """The Fig. 5 rows: resources of each pipeline relative to EBBIOT.

    Returns
    -------
    list of dict
        One row per pipeline with absolute totals and the ratios
        ``computes_relative`` / ``memory_relative`` (EBBIOT = 1.0).
    """
    params = params or ResourceParams()
    ebbiot = ebbiot_pipeline_resources(params)
    pipelines = [
        ebbiot,
        ebbi_kf_pipeline_resources(params),
        ebms_pipeline_resources(params),
    ]
    rows = []
    for pipeline in pipelines:
        rows.append(
            {
                "pipeline": pipeline.name,
                "computes_per_frame": pipeline.computes_per_frame,
                "memory_kilobytes": pipeline.memory_kilobytes,
                "computes_relative": pipeline.computes_per_frame / ebbiot.computes_per_frame,
                "memory_relative": pipeline.memory_bits / ebbiot.memory_bits,
            }
        )
    return rows
