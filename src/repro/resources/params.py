"""Shared parameters of the analytic resource models.

Symbols follow the paper's notation table (Section II): ``A x B`` image
resolution, ``Bt`` timestamp bits, ``NT`` trackers, ``tF`` frame duration,
``p`` noise-filter neighbourhood, plus the data-dependent constants used in
Section II-C (``alpha``, ``beta``, ``NF``, ``CL``, ``gamma_merge``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ResourceParams:
    """Parameters feeding the Eq. (1)-(8) resource models.

    Parameters
    ----------
    width, height:
        Sensor resolution ``A`` and ``B`` (240 x 180).
    patch_size:
        Noise-filter neighbourhood ``p`` (3).
    timestamp_bits:
        Bits per stored timestamp ``Bt`` (16).
    active_pixel_fraction:
        ``alpha`` — average fraction of active pixels; the paper uses the
        conservative estimate that objects occupy at most 10 % of the image.
    events_per_active_pixel:
        ``beta`` — average number of times an active pixel fires within one
        frame (>= 1; the paper's numbers correspond to 2).
    downsample_x, downsample_y:
        RPN downsampling factors ``s1`` (6) and ``s2`` (3).
    num_trackers:
        Average number of valid trackers ``NT`` (≈ 2 for the recordings).
    max_trackers:
        Maximum tracker slots (8), used for worst-case memory.
    events_per_frame_filtered:
        ``NF`` — average events per frame at the NN-filter output (≈ 650).
    active_clusters:
        ``CL`` — average number of active EBMS clusters (≈ 2).
    max_clusters:
        ``CLmax`` — maximum EBMS clusters (8).
    merge_probability:
        ``gamma_merge`` — probability of two clusters merging (≈ 0.1).
    """

    width: int = 240
    height: int = 180
    patch_size: int = 3
    timestamp_bits: int = 16
    active_pixel_fraction: float = 0.1
    events_per_active_pixel: float = 2.0
    downsample_x: int = 6
    downsample_y: int = 3
    num_trackers: float = 2.0
    max_trackers: int = 8
    events_per_frame_filtered: float = 650.0
    active_clusters: float = 2.0
    max_clusters: int = 8
    merge_probability: float = 0.1

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("resolution must be positive")
        if self.patch_size < 1 or self.patch_size % 2 == 0:
            raise ValueError(f"patch_size must be a positive odd integer, got {self.patch_size}")
        if self.timestamp_bits <= 0:
            raise ValueError("timestamp_bits must be positive")
        if not 0.0 <= self.active_pixel_fraction <= 1.0:
            raise ValueError("active_pixel_fraction must be in [0, 1]")
        if self.events_per_active_pixel < 1.0:
            raise ValueError("events_per_active_pixel (beta) must be >= 1")
        if self.downsample_x < 1 or self.downsample_y < 1:
            raise ValueError("downsampling factors must be >= 1")
        if self.num_trackers < 0 or self.max_trackers < 1:
            raise ValueError("tracker counts must be non-negative / positive")
        if self.events_per_frame_filtered < 0:
            raise ValueError("events_per_frame_filtered must be non-negative")
        if self.active_clusters < 0 or self.max_clusters < 1:
            raise ValueError("cluster counts must be non-negative / positive")
        if not 0.0 <= self.merge_probability <= 1.0:
            raise ValueError("merge_probability must be in [0, 1]")

    @property
    def num_pixels(self) -> int:
        """``A * B``."""
        return self.width * self.height

    @property
    def events_per_frame_raw(self) -> float:
        """``n = beta * alpha * A * B`` — raw events per frame (Eq. (2))."""
        return (
            self.events_per_active_pixel
            * self.active_pixel_fraction
            * self.num_pixels
        )

    @classmethod
    def paper_defaults(cls) -> "ResourceParams":
        """The parameter values used for the paper's quoted numbers."""
        return cls()

    def with_measured(
        self,
        active_pixel_fraction: float = None,
        events_per_frame_filtered: float = None,
        num_trackers: float = None,
        active_clusters: float = None,
    ) -> "ResourceParams":
        """Copy with data-dependent constants replaced by measured values.

        The benchmark harness calls this with the statistics reported by
        :class:`repro.core.pipeline.EbbiotPipeline` so the resource models
        can be evaluated both with the paper's constants and with values
        measured on the synthetic recordings.
        """
        updates = {}
        if active_pixel_fraction is not None:
            updates["active_pixel_fraction"] = active_pixel_fraction
        if events_per_frame_filtered is not None:
            updates["events_per_frame_filtered"] = events_per_frame_filtered
        if num_trackers is not None:
            updates["num_trackers"] = num_trackers
        if active_clusters is not None:
            updates["active_clusters"] = active_clusters
        return replace(self, **updates)
