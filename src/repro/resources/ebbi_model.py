"""Resource models of the two noise-filtering front ends (Eq. (1) and (2)).

* :class:`EbbiResourceModel` — the EBBIOT front end: accumulate an EBBI and
  median-filter it.  ``C_EBBI ≈ (alpha * p^2 + 2) * A * B`` operations per
  frame and ``M_EBBI = 2 * A * B`` bits (raw + filtered frame).
* :class:`NnFilterResourceModel` — the event-driven front end: NN-filt with
  a per-pixel ``Bt``-bit timestamp memory.
  ``C_NN-filt = (2 * (p^2 - 1) + Bt) * n`` operations per frame and
  ``M_NN-filt = Bt * A * B`` bits.

With the paper's constants these give 125.2 kops vs 276.4 kops per frame and
an 8X memory saving for the EBBI (10.8 kB vs 86.4 kB).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resources.params import ResourceParams

#: Bits per byte, used when reporting kilobytes.
_BITS_PER_KB = 8 * 1024


@dataclass
class EbbiResourceModel:
    """Compute / memory model of EBBI generation + median filtering."""

    params: ResourceParams = field(default_factory=ResourceParams)

    def computes_per_frame(self) -> float:
        """``C_EBBI ≈ (alpha * p^2 + 2) * A * B`` operations (Eq. (1)).

        Per pixel: ``alpha * p^2`` expected counter increments in the patch,
        one comparison against ``floor(p^2 / 2)`` and one memory write for
        the EBBI itself (the paper folds the comparison and write into the
        "+2").
        """
        p = self.params
        return (p.active_pixel_fraction * p.patch_size**2 + 2) * p.num_pixels

    def memory_bits(self) -> float:
        """``M_EBBI = 2 * A * B`` bits: the raw and the filtered frame."""
        return 2 * self.params.num_pixels

    def memory_kilobytes(self) -> float:
        """Memory in kilobytes (10.8 kB for DAVIS240)."""
        return self.memory_bits() / _BITS_PER_KB

    def summary(self) -> dict:
        """All model outputs as a dict (for tables and benchmarks)."""
        return {
            "name": "EBBI + median filter",
            "computes_per_frame": self.computes_per_frame(),
            "memory_bits": self.memory_bits(),
            "memory_kilobytes": self.memory_kilobytes(),
        }


@dataclass
class NnFilterResourceModel:
    """Compute / memory model of the nearest-neighbour event filter."""

    params: ResourceParams = field(default_factory=ResourceParams)

    def events_per_frame(self) -> float:
        """``n = beta * alpha * A * B`` raw events per frame."""
        return self.params.events_per_frame_raw

    def computes_per_event(self) -> float:
        """``2 * (p^2 - 1) + Bt`` operations per incoming event.

        ``p^2 - 1`` comparisons plus ``p^2 - 1`` counter increments over the
        neighbourhood, then one ``Bt``-bit timestamp write.
        """
        p = self.params
        return 2 * (p.patch_size**2 - 1) + p.timestamp_bits

    def computes_per_frame(self) -> float:
        """``C_NN-filt = (2 (p^2 - 1) + Bt) * n`` operations (Eq. (2))."""
        return self.computes_per_event() * self.events_per_frame()

    def memory_bits(self) -> float:
        """``M_NN-filt = Bt * A * B`` bits of per-pixel timestamp storage."""
        return self.params.timestamp_bits * self.params.num_pixels

    def memory_kilobytes(self) -> float:
        """Memory in kilobytes (86.4 kB for DAVIS240 with Bt = 16)."""
        return self.memory_bits() / _BITS_PER_KB

    def memory_saving_vs_ebbi(self) -> float:
        """Ratio ``M_NN-filt / M_EBBI`` — the paper's 8X memory saving."""
        ebbi = EbbiResourceModel(self.params)
        return self.memory_bits() / ebbi.memory_bits()

    def summary(self) -> dict:
        """All model outputs as a dict."""
        return {
            "name": "NN-filter",
            "computes_per_frame": self.computes_per_frame(),
            "memory_bits": self.memory_bits(),
            "memory_kilobytes": self.memory_kilobytes(),
        }
