"""Analytic compute / memory models (Eq. (1)-(8) and Fig. 5).

The paper argues for EBBIOT with closed-form operation counts and memory
footprints rather than measured silicon numbers; this package implements
the same arithmetic so the quoted figures (125.2 kops/frame for the EBBI,
276.4 kops/frame for NN-filt, 45.6 kops/frame for the RPN, ~564 ops/frame
for the OT, 1200 ops/frame for the KF, 252 kops/frame for EBMS, the 8X
memory saving of the EBBI over NN-filt, and the overall 3X compute / 7X
memory advantage of EBBIOT) can be regenerated and unit-tested.
"""

from repro.resources.params import ResourceParams
from repro.resources.ebbi_model import EbbiResourceModel, NnFilterResourceModel
from repro.resources.rpn_model import CnnDetectorReference, RpnResourceModel
from repro.resources.tracker_models import (
    EbmsResourceModel,
    KalmanResourceModel,
    OverlapTrackerResourceModel,
)
from repro.resources.comparison import (
    PipelineResources,
    ebbi_kf_pipeline_resources,
    ebbiot_pipeline_resources,
    ebms_pipeline_resources,
    relative_comparison,
)

__all__ = [
    "ResourceParams",
    "EbbiResourceModel",
    "NnFilterResourceModel",
    "RpnResourceModel",
    "CnnDetectorReference",
    "OverlapTrackerResourceModel",
    "KalmanResourceModel",
    "EbmsResourceModel",
    "PipelineResources",
    "ebbiot_pipeline_resources",
    "ebbi_kf_pipeline_resources",
    "ebms_pipeline_resources",
    "relative_comparison",
]
