"""Resource models of the three trackers (Eq. (6), (7) and (8)).

* :class:`OverlapTrackerResourceModel` — the OT:
  ``C_OT = 134 * NT^2 + gamma_3 N_3 + gamma_4 N_4 + gamma_5 N_5``; with
  ``NT ≈ 2`` and the small step-probability terms this is ≈ 564 ops/frame,
  and its state fits in registers (< 0.5 kB).
* :class:`KalmanResourceModel` — the constant-velocity KF with state and
  measurement vectors of size ``2 * NT``:
  ``C_KF = 4m^3 + 6m^2 n + 4mn^2 + 4n^3 + 3n^2`` = 1200 ops/frame for
  ``NT = 2``; ≈ 1.1 kB of memory.
* :class:`EbmsResourceModel` — event-based mean shift:
  ``C_EBMS = NF * [9 CL^2 + (169 + 16 gamma_merge) CL + 11]`` ≈ 252 kops per
  frame; ``M_EBMS = 408 * CLmax + 56`` storage units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resources.params import ResourceParams

_BITS_PER_KB = 8 * 1024


@dataclass
class OverlapTrackerResourceModel:
    """Compute / memory model of the overlap-based tracker (Eq. (6)).

    Parameters
    ----------
    params:
        Shared resource parameters (``NT`` is the average valid trackers).
    step3_probability, step3_computes:
        ``gamma_3`` / ``N_3`` — seeding a new tracker.
    step4_probability, step4_computes:
        ``gamma_4`` / ``N_4`` — the weighted prediction/proposal update.
    step5_probability, step5_computes:
        ``gamma_5`` / ``N_5`` — occlusion / merge handling.

    The default step terms contribute 28 ops so the total for ``NT = 2``
    matches the paper's ≈ 564 ops/frame.
    """

    params: ResourceParams = field(default_factory=ResourceParams)
    step3_probability: float = 0.10
    step3_computes: float = 100.0
    step4_probability: float = 0.30
    step4_computes: float = 50.0
    step5_probability: float = 0.05
    step5_computes: float = 60.0

    def matching_computes(self) -> float:
        """The dominant ``134 * NT^2`` prediction-and-matching term."""
        return 134.0 * self.params.num_trackers**2

    def step_computes(self) -> float:
        """Expected cost of the data-dependent steps 3-5."""
        return (
            self.step3_probability * self.step3_computes
            + self.step4_probability * self.step4_computes
            + self.step5_probability * self.step5_computes
        )

    def computes_per_frame(self) -> float:
        """``C_OT`` operations per frame (≈ 564 for NT = 2)."""
        return self.matching_computes() + self.step_computes()

    def memory_bits(self) -> float:
        """Tracker state memory in bits.

        Each tracker slot stores position (x, y), size (w, h), velocity
        (vx, vy) and bookkeeping — 8 sixteen-bit registers — for the maximum
        of ``NT_max`` slots.  Well under the paper's < 0.5 kB bound.
        """
        registers_per_tracker = 8
        bits_per_register = 16
        return self.params.max_trackers * registers_per_tracker * bits_per_register

    def memory_kilobytes(self) -> float:
        """Memory in kilobytes."""
        return self.memory_bits() / _BITS_PER_KB

    def summary(self) -> dict:
        """All model outputs as a dict."""
        return {
            "name": "overlap tracker",
            "computes_per_frame": self.computes_per_frame(),
            "memory_bits": self.memory_bits(),
            "memory_kilobytes": self.memory_kilobytes(),
        }


@dataclass
class KalmanResourceModel:
    """Compute / memory model of the Kalman-filter tracker (Eq. (7))."""

    params: ResourceParams = field(default_factory=ResourceParams)

    @property
    def state_size(self) -> float:
        """``n = 2 * NT`` — stacked (x, y) centroids of all tracks."""
        return 2 * self.params.num_trackers

    @property
    def measurement_size(self) -> float:
        """``m = 2 * NT`` — stacked centroid measurements."""
        return 2 * self.params.num_trackers

    def computes_per_frame(self) -> float:
        """``C_KF = 4m^3 + 6m^2 n + 4mn^2 + 4n^3 + 3n^2`` (1200 for NT = 2)."""
        n = self.state_size
        m = self.measurement_size
        return 4 * m**3 + 6 * m**2 * n + 4 * m * n**2 + 4 * n**3 + 3 * n**2

    def memory_bits(self) -> float:
        """KF memory: state vector and covariance matrix at 32-bit precision.

        For ``n = 2 * NT_max = 16`` this is (16 + 16^2) * 32 bits ≈ 1.06 kB,
        matching the paper's ≈ 1.1 kB figure.  The gain and innovation
        matrices can be computed in place and are not charged.
        """
        n = 2 * self.params.max_trackers
        words = n + n * n
        return words * 32

    def memory_kilobytes(self) -> float:
        """Memory in kilobytes."""
        return self.memory_bits() / _BITS_PER_KB

    def summary(self) -> dict:
        """All model outputs as a dict."""
        return {
            "name": "Kalman filter tracker",
            "computes_per_frame": self.computes_per_frame(),
            "memory_bits": self.memory_bits(),
            "memory_kilobytes": self.memory_kilobytes(),
        }


@dataclass
class EbmsResourceModel:
    """Compute / memory model of event-based mean shift (Eq. (8))."""

    params: ResourceParams = field(default_factory=ResourceParams)

    def computes_per_event(self) -> float:
        """``9 CL^2 + (169 + 16 gamma_merge) CL + 11`` operations per event."""
        cl = self.params.active_clusters
        gamma = self.params.merge_probability
        return 9 * cl**2 + (169 + 16 * gamma) * cl + 11

    def computes_per_frame(self) -> float:
        """``C_EBMS = NF * computes_per_event`` (≈ 252 kops for the paper's data)."""
        return self.params.events_per_frame_filtered * self.computes_per_event()

    def memory_storage_units(self) -> float:
        """``M_EBMS = 408 * CLmax + 56`` as written in Eq. (8).

        The paper states the equation gives bits but then quotes the result
        (3320 for ``CLmax = 8``) as "3.32 kB"; we expose the raw value and
        let :meth:`memory_bits` interpret it as bits (the conservative
        reading), noting the unit ambiguity in EXPERIMENTS.md.
        """
        return 408 * self.params.max_clusters + 56

    def memory_bits(self) -> float:
        """EBMS tracker memory in bits (raw Eq. (8) value)."""
        return self.memory_storage_units()

    def memory_kilobytes(self) -> float:
        """Memory in kilobytes."""
        return self.memory_bits() / _BITS_PER_KB

    def summary(self) -> dict:
        """All model outputs as a dict."""
        return {
            "name": "EBMS tracker",
            "computes_per_frame": self.computes_per_frame(),
            "memory_bits": self.memory_bits(),
            "memory_kilobytes": self.memory_kilobytes(),
        }
