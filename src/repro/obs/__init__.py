"""repro.obs — unified observability: metrics, tracing, instrumentation.

One import surface for the three concerns every layer shares:

* :mod:`repro.obs.metrics` — thread-safe Counter/Gauge/Histogram with
  labels, a :class:`MetricsRegistry`, Prometheus text + JSON exporters;
* :mod:`repro.obs.trace` — a bounded :class:`Tracer` exporting Chrome
  trace-event JSON (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.instrument` — the opt-in :class:`Instrumentation`
  handle the pipeline threads through its stages;
* :mod:`repro.obs.logsetup` — shared CLI logging configuration.
"""

from repro.obs.instrument import (
    Instrumentation,
    PIPELINE_STAGES,
    STAGE_SECONDS_METRIC,
)
from repro.obs.logsetup import LOG_LEVELS, add_log_level_argument, logging_setup
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
    sample_value,
)
from repro.obs.trace import (
    Tracer,
    merge_chrome_traces,
    validate_chrome_trace,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "LOG_LEVELS",
    "MetricsRegistry",
    "PIPELINE_STAGES",
    "STAGE_SECONDS_METRIC",
    "Tracer",
    "add_log_level_argument",
    "logging_setup",
    "merge_chrome_traces",
    "parse_prometheus_text",
    "sample_value",
    "validate_chrome_trace",
]
