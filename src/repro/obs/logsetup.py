"""Structured logging setup shared by the CLIs.

``logging_setup("debug")`` configures the root logger with a single
stderr handler and a consistent format; every ``python -m repro.*`` entry
point exposes it as ``--log-level`` (via :func:`add_log_level_argument`).
Library modules just do ``logger = logging.getLogger(__name__)`` and log —
configuration is strictly the entry point's job.
"""

from __future__ import annotations

import argparse
import logging
from typing import Dict

#: CLI-friendly level names.
LOG_LEVELS: Dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

DEFAULT_FORMAT = "%(asctime)s %(levelname)s %(name)s: %(message)s"


def logging_setup(level: str = "info") -> None:
    """Configure root logging to stderr at ``level``.

    Uses ``force=True`` so repeated calls (long-lived processes, test
    suites invoking several ``main()``\\ s) rebind the handler to the
    *current* ``sys.stderr`` rather than a captured stale stream.
    """
    try:
        numeric = LOG_LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r} (choose from {sorted(LOG_LEVELS)})"
        ) from None
    logging.basicConfig(level=numeric, format=DEFAULT_FORMAT, force=True)


def add_log_level_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--log-level`` option to a CLI parser."""
    parser.add_argument(
        "--log-level",
        default="info",
        choices=sorted(LOG_LEVELS),
        help="logging verbosity (default: info)",
    )
