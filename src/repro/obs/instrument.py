"""Opt-in stage instrumentation for the EBBIOT pipeline.

An :class:`Instrumentation` object is the single handle the pipeline (and
anything wrapping it — runtime jobs, serving sessions, bench scenarios)
needs to account per-stage cost.  It composes three optional sinks:

* a local ``stage_seconds``/``stage_calls`` accumulator (always on — this
  is what :class:`~repro.runtime.aggregate.RecordingResult` and the bench
  stage-breakdown scenario report);
* a :class:`~repro.obs.trace.Tracer`, fed one span per stage per sampled
  frame window plus one enclosing ``frame`` span;
* a :class:`~repro.obs.metrics.MetricsRegistry`, fed a
  ``repro_pipeline_stage_seconds_total`` counter labelled by stage (plus
  any caller-supplied labels, e.g. ``sensor`` in the hub).

Sampling (``sample_every=N``) thins the *tracer* output only — a long run
traced at every 10th window stays Perfetto-sized while the seconds
accumulator and metrics remain exact.

The pipeline's zero-cost-when-off contract lives one level up: when no
``Instrumentation`` is attached, :class:`~repro.core.pipeline.EbbiotPipeline`
never calls into this module at all.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

#: Stage names in pipeline order.  ``ebbi`` (event accumulation) and
#: ``median`` (noise filtering) are timed inside the EBBI builder; ``rpn``
#: (histogram region proposals), ``roe`` (region-of-exclusion filtering)
#: and ``tracker`` (backend step) in the pipeline core.  Proposal-free
#: backends (EBMS) only emit ``ebbi``/``median``/``tracker``.
PIPELINE_STAGES: Tuple[str, ...] = ("ebbi", "median", "rpn", "roe", "tracker")

#: Metric name for the cumulative per-stage cost counter.
STAGE_SECONDS_METRIC = "repro_pipeline_stage_seconds_total"


class Instrumentation:
    """Per-pipeline stage accounting with optional trace/metrics sinks.

    Not thread-safe by design: each pipeline (and each serving session)
    owns its instance, matching the pipeline's own single-threaded
    contract.  The tracer and metrics registry it feeds *are* shared and
    thread-safe.
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        labels: Optional[Dict[str, str]] = None,
        sample_every: int = 1,
        stage_metric_name: str = STAGE_SECONDS_METRIC,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.tracer = tracer
        self.metrics = metrics
        self.labels = dict(labels or {})
        self.sample_every = sample_every
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.frames_seen = 0
        self._sampled = tracer is not None and sample_every == 1
        self._stage_counters: Dict[str, object] = {}
        self._stage_family = None
        if metrics is not None:
            labelnames = tuple(sorted(self.labels)) + ("stage",)
            self._stage_family = metrics.counter(
                stage_metric_name,
                "Cumulative wall-clock seconds spent per pipeline stage.",
                labelnames=labelnames,
            )

    def begin_frame(self, frame_index: int) -> None:
        """Mark the start of a frame window; decides tracer sampling."""
        self.frames_seen += 1
        self._sampled = (
            self.tracer is not None and frame_index % self.sample_every == 0
        )

    @contextmanager
    def frame(
        self, frame_index: int, t_start_us: int, t_end_us: int, num_events: int
    ) -> Iterator[None]:
        """Wrap one frame window: sampling decision + enclosing span."""
        self.begin_frame(frame_index)
        if self._sampled:
            with self.tracer.span(
                f"frame[{frame_index}]",
                cat="frame",
                args={
                    "frame_index": frame_index,
                    "t_start_us": int(t_start_us),
                    "t_end_us": int(t_end_us),
                    "num_events": int(num_events),
                },
            ):
                yield
        else:
            yield

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one pipeline stage within the current frame window."""
        start = time.perf_counter()
        try:
            if self._sampled:
                with self.tracer.span(name, cat="stage"):
                    yield
            else:
                yield
        finally:
            elapsed = time.perf_counter() - start
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1
            if self._stage_family is not None:
                counter = self._stage_counters.get(name)
                if counter is None:
                    counter = self._stage_family.labels(**self.labels, stage=name)
                    self._stage_counters[name] = counter
                counter.inc(elapsed)

    def reset(self) -> None:
        """Clear the local accumulators (shared sinks are left alone)."""
        self.stage_seconds.clear()
        self.stage_calls.clear()
        self.frames_seen = 0
        self._sampled = self.tracer is not None and self.sample_every == 1

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy of the per-stage seconds (picklable)."""
        return dict(self.stage_seconds)
